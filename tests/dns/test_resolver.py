"""Tests for the caching recursive resolver (the attack's victim)."""

import numpy as np
import pytest

from repro.dns.dnssec import ZoneSigningKey, sign_zone
from repro.dns.message import DNSMessage, ResponseCode
from repro.dns.nameserver import AuthoritativeNameserver, PoolNameserver
from repro.dns.records import RRType, a_record
from repro.dns.resolver import RecursiveResolver, ResolverConfig
from repro.dns.stub import StubResolver
from repro.dns.zone import Zone
from repro.netsim.addresses import address_range
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator


class Env:
    """A small DNS environment: pool nameserver + resolver + client stub."""

    def __init__(self, resolver_config=None, signed_zone=False):
        self.sim = Simulator(seed=4)
        self.net = Network(self.sim)
        ns_host = self.net.add_host("ns", "198.51.100.10")
        self.pool_addresses = address_range("203.0.113.1", 40)
        self.nameserver = PoolNameserver(
            ns_host, self.pool_addresses, rng=np.random.default_rng(2)
        )
        trust_anchors = {}
        if signed_zone:
            zone = Zone(origin="time.cloudflare.com")
            zone.add(a_record("time.cloudflare.com", "162.159.200.1"))
            key = ZoneSigningKey.generate(zone.origin)
            sign_zone(zone, key)
            signed_host = self.net.add_host("signed-ns", "198.51.100.20")
            self.signed_ns = AuthoritativeNameserver(
                signed_host, zones=[zone], signing_keys={zone.origin: key}
            )
            trust_anchors[zone.origin] = key
        resolver_host = self.net.add_host("resolver", "192.0.2.53")
        zone_map = {"pool.ntp.org": "198.51.100.10"}
        if signed_zone:
            zone_map["time.cloudflare.com"] = "198.51.100.20"
        self.resolver = RecursiveResolver(
            resolver_host,
            self.sim,
            zone_map=zone_map,
            config=resolver_config,
            trust_anchors=trust_anchors,
        )
        client_host = self.net.add_host("client", "192.0.2.10")
        self.stub = StubResolver(client_host, self.sim, "192.0.2.53")

    def resolve(self, name, rd=True, rtype=RRType.A):
        results = []
        self.stub.resolve(name, results.append, rtype=rtype, rd=rd)
        self.sim.run()
        return results[0]


class TestRecursiveResolution:
    def test_resolves_and_answers(self):
        env = Env()
        result = env.resolve("pool.ntp.org")
        assert result.ok
        assert len(result.addresses) == 4
        assert set(result.addresses) <= set(env.pool_addresses)

    def test_answer_cached_and_ttl_decrements(self):
        env = Env()
        first = env.resolve("pool.ntp.org")
        env.sim.run_for(50)
        second = env.resolve("pool.ntp.org")
        assert second.addresses == first.addresses  # from cache, not re-rotated
        assert max(second.ttls()) <= 150 - 50
        assert env.resolver.stats.cache_hits >= 1

    def test_cache_expires_after_ttl(self):
        env = Env()
        env.resolve("pool.ntp.org")
        env.sim.run_for(200)
        env.resolve("pool.ntp.org")
        assert env.resolver.stats.upstream_queries >= 2

    def test_servfail_for_unknown_zone(self):
        env = Env()
        result = env.resolve("unknown.test")
        assert not result.ok
        assert result.rcode is ResponseCode.SERVFAIL

    def test_source_port_randomisation(self):
        env = Env()
        ports = set()
        original_bind = env.resolver.host.bind

        def tracking_bind(port, on_datagram=None):
            socket = original_bind(port, on_datagram)
            if port == 0:
                ports.add(socket.port)
            return socket

        env.resolver.host.bind = tracking_bind
        env.resolve("pool.ntp.org")
        env.sim.run_for(200)
        env.resolve("0.pool.ntp.org")
        assert len(ports) == 2 and len(set(ports)) == 2

    def test_upstream_timeout_leads_to_servfail(self):
        env = Env()
        env.net.host("198.51.100.10").release_port(53)  # nameserver goes silent
        result = env.resolve("pool.ntp.org")
        assert result.timed_out or result.rcode is ResponseCode.SERVFAIL
        assert env.resolver.stats.upstream_timeouts >= 1


class TestChallengeResponseChecks:
    def test_response_with_wrong_txid_rejected(self):
        env = Env()
        # Intercept at the nameserver: make it lie about the TXID.
        original = env.nameserver.build_response

        def wrong_txid(query):
            response = original(query)
            response.txid = (response.txid + 1) & 0xFFFF
            return response

        env.nameserver.build_response = wrong_txid
        result = env.resolve("pool.ntp.org")
        assert not result.ok
        assert env.resolver.stats.rejected_mismatched_responses >= 1

    def test_out_of_bailiwick_records_not_cached(self):
        env = Env()
        original = env.nameserver.build_response

        def with_poison(query):
            response = original(query)
            response.additional.append(a_record("www.bank.example", "6.6.6.6", ttl=3600))
            return response

        env.nameserver.build_response = with_poison
        env.resolve("pool.ntp.org")
        assert env.resolver.cache.lookup("www.bank.example", RRType.A, env.sim.now) is None

    def test_in_bailiwick_records_cached(self):
        env = Env()
        env.resolve("pool.ntp.org")
        assert env.resolver.cached_addresses("pool.ntp.org")


class TestRDZeroHandling:
    def test_rd0_answered_from_cache_only(self):
        env = Env()
        miss = env.resolve("pool.ntp.org", rd=False)
        assert not miss.ok  # nothing cached, resolver must not recurse
        env.resolve("pool.ntp.org", rd=True)
        hit = env.resolve("pool.ntp.org", rd=False)
        assert hit.ok
        assert env.resolver.stats.rd_zero_queries == 2

    def test_rd0_does_not_trigger_upstream_query(self):
        env = Env()
        env.resolve("pool.ntp.org", rd=False)
        assert env.resolver.stats.upstream_queries == 0


class TestDNSSECValidation:
    def test_validating_resolver_accepts_signed_zone(self):
        env = Env(resolver_config=ResolverConfig(validate_dnssec=True), signed_zone=True)
        result = env.resolve("time.cloudflare.com")
        assert result.ok

    def test_validating_resolver_rejects_forged_signed_answer(self):
        env = Env(resolver_config=ResolverConfig(validate_dnssec=True), signed_zone=True)
        original = env.signed_ns.build_response

        def forge(query):
            response = original(query)
            for record in response.answers:
                if record.rtype is RRType.A:
                    record.data = "66.6.6.6"
            return response

        env.signed_ns.build_response = forge
        result = env.resolve("time.cloudflare.com")
        assert not result.ok
        assert env.resolver.stats.validation_failures == 1

    def test_unsigned_zone_not_protected_even_by_validating_resolver(self):
        """pool.ntp.org is unsigned, so validation cannot reject forgeries."""
        env = Env(resolver_config=ResolverConfig(validate_dnssec=True))
        original = env.nameserver.build_response

        def forge(query):
            response = original(query)
            for record in response.answers:
                if record.rtype is RRType.A:
                    record.data = "66.6.6.6"
            return response

        env.nameserver.build_response = forge
        result = env.resolve("pool.ntp.org")
        assert result.ok
        assert "66.6.6.6" in result.addresses


class TestInspectionHelpers:
    def test_is_poisoned(self):
        env = Env()
        env.resolve("pool.ntp.org")
        assert not env.resolver.is_poisoned("pool.ntp.org", {"66.6.6.1"})
        env.resolver.cache.store([a_record("pool.ntp.org", "66.6.6.1", ttl=300)], env.sim.now)
        assert env.resolver.is_poisoned("pool.ntp.org", {"66.6.6.1"})

    def test_resolve_local_uses_cache(self):
        env = Env()
        env.resolve("pool.ntp.org")
        answers = []
        env.resolver.resolve_local("pool.ntp.org", callback=lambda m: answers.append(m))
        env.sim.run()
        assert answers and answers[0].answers
