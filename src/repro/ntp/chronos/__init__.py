"""Chronos-enhanced NTP client (Deutsch et al., NDSS 2018 / IETF draft).

Chronos strengthens NTP against MitM attackers by sampling time from a large
pool of servers and running a Byzantine-tolerant selection over the samples.
The package implements the three pieces the paper's analysis targets:

* :mod:`pool_generation` — the hourly DNS queries over 24 hours that build
  the server pool (the attack's entry point, section VI),
* :mod:`selection` — the sample-filtering algorithm (drop the top and bottom
  thirds, require agreement, panic otherwise), and
* :mod:`client` — the client tying both together on top of the simulator.
"""

from repro.ntp.chronos.pool_generation import ChronosPoolGenerator, PoolGenerationConfig
from repro.ntp.chronos.selection import chronos_select, ChronosSelectionResult
from repro.ntp.chronos.client import ChronosClient, ChronosConfig

__all__ = [
    "ChronosPoolGenerator",
    "PoolGenerationConfig",
    "chronos_select",
    "ChronosSelectionResult",
    "ChronosClient",
    "ChronosConfig",
]
