#!/usr/bin/env python3
"""Reproduce the paper's attack-surface measurements (sections VII and VIII).

Runs, against synthetic populations with the paper's observed marginals:

* the rate-limiting scan of pool NTP servers (section VII-A),
* the nameserver fragmentation / DNSSEC scan (Figure 5, section VII-B),
* the open-resolver cache-snooping study (Table IV),
* the ad-network client-resolver study (Table V), and
* the shared-resolver discovery study (section VIII-B3).

Run with::

    python examples/measure_attack_surface.py
"""

from __future__ import annotations

import numpy as np

from repro.measurement import (
    AdNetworkStudy,
    CacheSnoopingStudy,
    FragmentationScan,
    RateLimitScan,
    SharedResolverStudy,
    format_percentage,
    format_table,
    generate_nameservers,
    generate_open_resolvers,
    generate_pool_nameservers,
    generate_shared_resolvers,
    generate_web_clients,
)
from repro.measurement.frag_scan import fragment_size_cdf
from repro.measurement.population import ResolverPopulationParameters
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.ntp.pool import build_pool_population


def rate_limit_scan() -> None:
    print("== Rate limiting of pool NTP servers (section VII-A) ==")
    simulator = Simulator(seed=3)
    network = Network(simulator)
    pool = build_pool_population(simulator, network, size=300)
    scanner = network.add_host("scanner", "198.18.0.10")
    report = RateLimitScan(scanner, simulator, pool.addresses).run()
    print(f"servers scanned:    {report.servers_scanned}")
    print(f"send KoD:           {format_percentage(report.kod_fraction)}   (paper: 33%)")
    print(f"rate limiting:      {format_percentage(report.rate_limiting_fraction)}   (paper: 38%)\n")


def fragmentation_scan() -> None:
    print("== Nameserver fragmentation scan (Figure 5, section VII-B) ==")
    scan = FragmentationScan(generate_nameservers())
    report = scan.run()
    print(f"fragmenting + unsigned domains: {format_percentage(report.attackable_fraction)} (paper: 7.66%)")
    for size, fraction in fragment_size_cdf(report):
        print(f"  fragments <= {size:>4} bytes: {format_percentage(fraction, 1)}")
    pool_summary = scan.scan_pool_nameservers(generate_pool_nameservers())
    print(f"pool.ntp.org nameservers fragmenting <= 548 B: "
          f"{pool_summary['fragment_below_548']}/{pool_summary['nameservers']} (paper: 16/30), "
          f"DNSSEC-signed: {pool_summary['dnssec_signed']}\n")


def cache_snooping() -> None:
    print("== Open-resolver cache snooping (Table IV) ==")
    resolvers = generate_open_resolvers(ResolverPopulationParameters(size=30_000))
    report = CacheSnoopingStudy(resolvers).run()
    rows = [
        [row.query, format_percentage(row.cached_fraction), row.cached_count, row.not_cached_count]
        for row in report.rows
    ]
    print(format_table(["Query", "Cached", "Cached #", "Not cached #"], rows))
    print(f"verified resolvers: {report.resolvers_verified}, "
          f"fragment acceptance among NTP resolvers: "
          f"{format_percentage(report.fragment_acceptance_among_ntp_resolvers())} (paper: 32%)\n")


def ad_network() -> None:
    print("== Ad-network client resolver study (Table V) ==")
    report = AdNetworkStudy(generate_web_clients()).run()
    rows = []
    for group in ("Asia", "Africa", "Europe", "Northern America", "Latin America",
                  "ALL", "Without Google", "PC", "Mobile,Tablet"):
        row = report.row(group)
        rows.append([group, format_percentage(row.tiny_fraction, 1),
                     format_percentage(row.any_fraction, 1),
                     format_percentage(row.dnssec_fraction, 1), row.total])
    print(format_table(["Group", "Accepts 68 B", "Accepts any size", "Validates DNSSEC", "Total"], rows))
    low, high = report.dnssec_validation_range()
    print(f"DNSSEC validation range across regions: {format_percentage(low)} – {format_percentage(high)} "
          "(paper: 19.14% – 28.94%)\n")


def shared_resolvers() -> None:
    print("== Shared resolver discovery (section VIII-B3) ==")
    report = SharedResolverStudy(generate_shared_resolvers()).run()
    for label, value in report.fractions().items():
        print(f"  {label:15s} {format_percentage(value, 1)}")
    print(f"  triggerable     {format_percentage(report.triggerable_fraction, 1)} (paper: >= 13.8%)")


def main() -> None:
    np.set_printoptions(suppress=True)
    rate_limit_scan()
    fragmentation_scan()
    cache_snooping()
    ad_network()
    shared_resolvers()


if __name__ == "__main__":
    main()
