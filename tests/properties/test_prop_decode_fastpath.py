"""Decode fast-path equivalence: the rework must match the seed byte-for-byte.

The decode fast path (PR 2) replaced the seed's eager slice-per-field DNS
decoder with struct.unpack_from cursors, interned names, lazily materialised
record sections and a decoded-message cache, and the seed's multi-struct NTP
decoder with a single precompiled struct plus unvalidated timestamp
construction.  These property tests pin the new implementations against
*verbatim reference copies of the seed implementations* embedded below
(git 849f001, before the rework), including the name-compression pointer
edge cases, so any divergence — field values, error class, laziness leaking
into observable state — fails loudly.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.errors import MessageError, NameError_
from repro.dns.message import DNSMessage
from repro.dns.names import decode_name, skip_name
from repro.dns.records import RRType, a_record, cname_record, ns_record, soa_record, txt_record
from repro.ntp.errors import NTPPacketError
from repro.ntp.packet import NTPPacket
from repro.ntp.timestamps import NTPTimestamp

# ----------------------------------------------------------------- strategies
octet = st.integers(min_value=0, max_value=255)
ip_addresses = st.builds(lambda a, b, c, d: f"{a}.{b}.{c}.{d}", octet, octet, octet, octet)

labels = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=12
).filter(lambda l: not l.startswith("-"))
names = st.lists(labels, min_size=1, max_size=4).map(".".join)


# ------------------------------------------------- reference (seed) decoders
def seed_decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Verbatim seed name decoder (git 849f001, dns/names.py)."""
    labels_: list[str] = []
    cursor = offset
    jumped = False
    next_offset = offset
    guard = 0
    while True:
        guard += 1
        if guard > 256:
            raise NameError_("compression pointer loop")
        if cursor >= len(data):
            raise NameError_("truncated name")
        length = data[cursor]
        if length & 0xC0 == 0xC0:
            if cursor + 1 >= len(data):
                raise NameError_("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[cursor + 1]
            if not jumped:
                next_offset = cursor + 2
                jumped = True
            cursor = pointer
            continue
        if length == 0:
            if not jumped:
                next_offset = cursor + 1
            break
        label = data[cursor + 1 : cursor + 1 + length]
        if len(label) != length:
            raise NameError_("truncated label")
        labels_.append(label.decode("ascii"))
        cursor += 1 + length
        if not jumped:
            next_offset = cursor
    return ".".join(labels_), next_offset


_SEED_DNS_HEADER = struct.Struct("!HHHHHH")
_SEED_QUESTION_FIXED = struct.Struct("!HH")
_SEED_RR_FIXED = struct.Struct("!HHIH")


def seed_decode_rdata(rtype: RRType, rdata: bytes, message: bytes, rdata_offset: int):
    """Verbatim seed rdata decoder for the types the reproduction uses."""
    from repro.netsim.addresses import int_to_ip

    if rtype in (RRType.A, RRType.AAAA):
        if len(rdata) != 4:
            raise MessageError("A record rdata must be 4 bytes")
        return int_to_ip(int.from_bytes(rdata, "big"))
    if rtype in (RRType.NS, RRType.CNAME):
        name, _ = seed_decode_name(message, rdata_offset)
        return name
    if rtype is RRType.TXT:
        if not rdata:
            return ""
        length = rdata[0]
        return rdata[1 : 1 + length].decode("ascii")
    if rtype is RRType.SOA:
        mname, cursor = seed_decode_name(message, rdata_offset)
        rname, cursor = seed_decode_name(message, cursor)
        consumed = cursor - rdata_offset
        serial, refresh, retry, expire, minimum = struct.unpack(
            "!IIIII", rdata[consumed : consumed + 20]
        )
        return (mname, rname, serial, refresh, retry, expire, minimum)
    return rdata


def seed_decode_message(data: bytes) -> dict:
    """Verbatim seed message decoder, flattened into a comparison dict."""
    from repro.dns.names import normalize_name

    from repro.dns.message import DNSHeaderFlags

    if len(data) < 12:
        raise MessageError("truncated DNS header")
    txid, flags_value, qdcount, ancount, nscount, arcount = _SEED_DNS_HEADER.unpack(
        data[:12]
    )
    # The seed decoded flags eagerly too (raising ValueError on reserved
    # rcodes); DNSHeaderFlags itself is unchanged by the rework.
    flags = DNSHeaderFlags.decode(flags_value)
    cursor = 12
    questions = []
    for _ in range(qdcount):
        name, cursor = seed_decode_name(data, cursor)
        if cursor + 4 > len(data):
            raise MessageError("truncated question")
        rtype, rclass = _SEED_QUESTION_FIXED.unpack(data[cursor : cursor + 4])
        cursor += 4
        questions.append((normalize_name(name), RRType(rtype), rclass))
    sections: list[list[tuple]] = [[], [], []]
    for section, count in zip(sections, (ancount, nscount, arcount)):
        for _ in range(count):
            name, cursor = seed_decode_name(data, cursor)
            if cursor + 10 > len(data):
                raise MessageError("truncated resource record")
            rtype, rclass, ttl, rdlength = _SEED_RR_FIXED.unpack(
                data[cursor : cursor + 10]
            )
            cursor += 10
            rdata = data[cursor : cursor + rdlength]
            if len(rdata) != rdlength:
                raise MessageError("truncated rdata")
            decoded = seed_decode_rdata(RRType(rtype), rdata, data, cursor)
            cursor += rdlength
            section.append(
                (normalize_name(name), RRType(rtype), rclass, ttl, decoded)
            )
    return {
        "txid": txid,
        "flags": flags.encode(),
        "questions": questions,
        "answers": sections[0],
        "authority": sections[1],
        "additional": sections[2],
    }


def flatten_fast(message: DNSMessage) -> dict:
    """The fast decoder's result in the same comparison shape."""
    return {
        "txid": message.txid,
        "flags": message.flags.encode(),
        "questions": [
            (q.name, q.rtype, int(q.rclass)) for q in message.questions
        ],
        "answers": [
            (r.name, r.rtype, int(r.rclass), r.ttl, r.data) for r in message.answers
        ],
        "authority": [
            (r.name, r.rtype, int(r.rclass), r.ttl, r.data) for r in message.authority
        ],
        "additional": [
            (r.name, r.rtype, int(r.rclass), r.ttl, r.data) for r in message.additional
        ],
    }


def seed_decode_ntp(data: bytes) -> dict:
    """Verbatim seed NTP packet decoder (git 849f001, ntp/packet.py)."""
    from repro.netsim.addresses import int_to_ip

    if len(data) < 48:
        raise ValueError(f"NTP packet too short: {len(data)} bytes")
    (
        li_vn_mode,
        stratum,
        poll,
        precision,
        root_delay_raw,
        root_dispersion_raw,
        refid_bytes,
        ref_ts,
        orig_ts,
        recv_ts,
        xmit_ts,
    ) = struct.unpack("!BBbb II 4s 8s 8s 8s 8s", data[:48])
    mode = li_vn_mode & 0x7
    if not 1 <= mode <= 7:
        raise ValueError(f"{mode} is not a valid NTPMode")
    if stratum <= 1:
        reference_id = refid_bytes.rstrip(b"\x00").decode("ascii", errors="replace")
    elif refid_bytes == b"\x00" * 4:
        reference_id = ""
    else:
        reference_id = int_to_ip(int.from_bytes(refid_bytes, "big"))
    return {
        "mode": mode,
        "leap": (li_vn_mode >> 6) & 0x3,
        "version": (li_vn_mode >> 3) & 0x7,
        "stratum": stratum,
        "poll": poll,
        "precision": precision,
        "root_delay": root_delay_raw / (1 << 16),
        "root_dispersion": root_dispersion_raw / (1 << 16),
        "reference_id": reference_id,
        "timestamps": tuple(
            (int.from_bytes(ts[:4], "big"), int.from_bytes(ts[4:], "big"))
            for ts in (ref_ts, orig_ts, recv_ts, xmit_ts)
        ),
    }


# ------------------------------------------------------------ name decoding
class TestDecodeNameEquivalence:
    @given(name_list=st.lists(names, min_size=1, max_size=5))
    @settings(max_examples=300)
    def test_compressed_wire_matches_seed(self, name_list):
        from repro.dns.names import encode_name

        compression: dict[str, int] = {}
        buffer = bytearray(b"\x00" * 12)
        offsets = []
        for name in name_list:
            offsets.append(len(buffer))
            buffer += encode_name(name, compression, len(buffer))
        wire = bytes(buffer)
        for offset in offsets:
            assert decode_name(wire, offset) == seed_decode_name(wire, offset)
            assert skip_name(wire, offset) == seed_decode_name(wire, offset)[1]

    def test_pointer_chain(self):
        # "a.b.example" at 12, then a pointer-only name, then a name whose
        # tail is a pointer to a pointer-containing name.
        wire = bytearray(b"\x00" * 12)
        wire += b"\x01a\x01b\x07example\x00"      # offset 12 (13 bytes)
        wire += b"\xc0\x0c"                        # offset 25: ptr -> 12
        wire += b"\x03www\xc0\x19"                 # offset 27: www + ptr -> 25
        wire = bytes(wire)
        for offset in (12, 25, 27):
            assert decode_name(wire, offset) == seed_decode_name(wire, offset)
            assert skip_name(wire, offset) == seed_decode_name(wire, offset)[1]
        assert decode_name(wire, 27)[0] == "www.a.b.example"

    def test_pointer_loop_raises(self):
        wire = b"\x00" * 12 + b"\xc0\x0c"  # pointer to itself
        with pytest.raises(NameError_):
            decode_name(wire, 12)
        with pytest.raises(NameError_):
            seed_decode_name(wire, 12)
        with pytest.raises(NameError_):
            skip_name(wire, 12)

    def test_truncations_match_seed(self):
        cases = [
            (b"\x03ab", 0),          # truncated label
            (b"\xc0", 0),            # truncated compression pointer
            (b"\x01a", 0),           # no terminator
            (b"", 0),                # empty buffer
            (b"\x05abc", 0),         # label length beyond buffer
        ]
        for wire, offset in cases:
            with pytest.raises(NameError_) as fast_error:
                decode_name(wire, offset)
            with pytest.raises(NameError_) as seed_error:
                seed_decode_name(wire, offset)
            assert str(fast_error.value) == str(seed_error.value)
            with pytest.raises(NameError_):
                skip_name(wire, offset)

    def test_root_name(self):
        wire = b"\x00" * 12 + b"\x00"
        assert decode_name(wire, 12) == seed_decode_name(wire, 12) == ("", 13)


# --------------------------------------------------------- message decoding
def _build_response(qname, txid, addresses, ttl, extra):
    query = DNSMessage.query(qname, txid=txid)
    response = query.make_response(
        answers=[a_record(qname, address, ttl=ttl) for address in addresses]
    )
    if "ns" in extra:
        response.authority.append(ns_record(qname, f"ns1.{qname}"))
        response.additional.append(a_record(f"ns1.{qname}", "198.51.100.7", ttl=600))
    if "cname" in extra:
        response.answers.append(cname_record(f"alias.{qname}", qname))
    if "txt" in extra:
        response.additional.append(txt_record(qname, "padding-text"))
    if "soa" in extra:
        response.authority.append(soa_record(qname, f"ns1.{qname}"))
    return response


message_extras = st.sets(st.sampled_from(["ns", "cname", "txt", "soa"]))


class TestMessageDecodeEquivalence:
    @given(
        qname=names,
        txid=st.integers(min_value=0, max_value=0xFFFF),
        addresses=st.lists(ip_addresses, min_size=1, max_size=6),
        ttl=st.integers(min_value=0, max_value=1_000_000),
        extra=message_extras,
    )
    @settings(max_examples=200)
    def test_lazy_decode_matches_seed(self, qname, txid, addresses, ttl, extra):
        wire = _build_response(qname, txid, addresses, ttl, extra).encode()
        assert flatten_fast(DNSMessage.decode(wire)) == seed_decode_message(wire)

    @given(
        qname=names,
        txid=st.integers(min_value=0, max_value=0xFFFF),
        addresses=st.lists(ip_addresses, min_size=1, max_size=4),
        ttl=st.integers(min_value=0, max_value=1_000_000),
        extra=message_extras,
    )
    @settings(max_examples=200)
    def test_decode_cached_matches_seed_across_txids(
        self, qname, txid, addresses, ttl, extra
    ):
        # The cache key ignores the TXID; replaying the same body under a
        # different TXID must still produce the right TXID and sections.
        wire = _build_response(qname, txid, addresses, ttl, extra).encode()
        assert flatten_fast(DNSMessage.decode_cached(wire)) == seed_decode_message(wire)
        replay = ((txid + 1) & 0xFFFF).to_bytes(2, "big") + wire[2:]
        assert flatten_fast(DNSMessage.decode_cached(replay)) == seed_decode_message(
            replay
        )

    def test_decode_cached_never_shares_txid_dependent_parses(self):
        # Adversarial edge case: a question name that is a compression
        # pointer into the TXID bytes.  The parse depends on the TXID, so
        # the TXID-stripped cache must not share it across replays.
        def crafted(txid: int) -> bytes:
            header = struct.pack("!HHHHHH", txid, 0, 1, 0, 0, 0)
            return header + b"\xc0\x00" + struct.pack("!HH", 1, 1)

        first = DNSMessage.decode_cached(crafted(0x0161))   # TXID bytes: \x01 a
        second = DNSMessage.decode_cached(crafted(0x0162))  # TXID bytes: \x01 b
        assert first.question.name == DNSMessage.decode(crafted(0x0161)).question.name
        assert second.question.name == DNSMessage.decode(crafted(0x0162)).question.name
        assert first.question.name == "a"
        assert second.question.name == "b"

    def test_decode_cached_clones_are_independent(self):
        wire = _build_response("pool.ntp.org", 7, ["203.0.113.5"], 150, {"ns"}).encode()
        first = DNSMessage.decode_cached(wire)
        second = DNSMessage.decode_cached(wire)
        first.answers.append(a_record("pool.ntp.org", "192.0.2.99"))
        first.flags.tc = True
        assert len(second.answers) == 1
        assert not second.flags.tc
        assert len(DNSMessage.decode_cached(wire).answers) == 1

    @given(
        qname=names,
        addresses=st.lists(ip_addresses, min_size=1, max_size=4),
    )
    @settings(max_examples=100)
    def test_decode_encode_round_trip_still_bytewise(self, qname, addresses):
        wire = _build_response(qname, 0x1234, addresses, 150, set()).encode()
        assert DNSMessage.decode(wire).encode() == wire

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=300)
    def test_error_class_parity_on_arbitrary_bytes(self, data):
        try:
            flatten_fast(DNSMessage.decode(data))
            fast_outcome = "ok"
        except Exception as exc:  # noqa: BLE001 - class comparison on purpose
            fast_outcome = type(exc).__name__
        try:
            seed_decode_message(data)
            seed_outcome = "ok"
        except Exception as exc:  # noqa: BLE001
            seed_outcome = type(exc).__name__
        assert fast_outcome == seed_outcome

    def test_truncated_record_sections_raise_at_decode_time(self):
        # Laziness must not defer *truncation* errors: chopping any tail off
        # an encoded response still raises MessageError inside decode().
        wire = _build_response("pool.ntp.org", 1, ["203.0.113.5"], 150, {"ns"}).encode()
        for cut in range(13, len(wire)):
            try:
                DNSMessage.decode(wire[:cut])
            except (MessageError, NameError_):
                continue
            pytest.fail(f"truncation at {cut} did not raise at decode time")


# --------------------------------------------------------------- NTP decoding
def _ntp_wire(li_vn_mode, stratum, body):
    return bytes([li_vn_mode, stratum]) + body


ntp_bodies = st.binary(min_size=46, max_size=46)


class TestNTPDecodeEquivalence:
    @given(
        mode=st.integers(min_value=1, max_value=7),
        leap=st.integers(min_value=0, max_value=3),
        version=st.integers(min_value=0, max_value=7),
        stratum=st.integers(min_value=0, max_value=255),
        body=ntp_bodies,
    )
    @settings(max_examples=300)
    def test_decode_matches_seed(self, mode, leap, version, stratum, body):
        li_vn_mode = (leap << 6) | (version << 3) | mode
        wire = _ntp_wire(li_vn_mode, stratum, body)
        expected = seed_decode_ntp(wire)
        packet = NTPPacket.decode(wire)
        assert int(packet.mode) == expected["mode"]
        assert packet.leap == expected["leap"]
        assert packet.version == expected["version"]
        assert packet.stratum == expected["stratum"]
        assert packet.poll == expected["poll"]
        assert packet.precision == expected["precision"]
        assert packet.root_delay == expected["root_delay"]
        assert packet.root_dispersion == expected["root_dispersion"]
        assert packet.reference_id == expected["reference_id"]
        observed = tuple(
            (ts.seconds, ts.fraction)
            for ts in (
                packet.reference_timestamp,
                packet.origin_timestamp,
                packet.receive_timestamp,
                packet.transmit_timestamp,
            )
        )
        assert observed == expected["timestamps"]

    @given(
        mode=st.integers(min_value=1, max_value=7),
        stratum=st.integers(min_value=0, max_value=255),
        body=ntp_bodies,
    )
    @settings(max_examples=200)
    def test_round_trip_re_encodes_bytewise(self, mode, stratum, body):
        wire = _ntp_wire((4 << 3) | mode, stratum, body)
        packet = NTPPacket.decode(wire)
        try:
            re_encoded = packet.encode()
        except Exception:
            # Strata >= 2 with a non-address refid cannot re-encode; the
            # seed had the same asymmetry.  Decode equivalence is what the
            # test above pins.
            return
        assert re_encoded == wire

    @given(st.binary(min_size=0, max_size=47))
    def test_short_input_raises_typed_error(self, data):
        with pytest.raises(NTPPacketError) as error:
            NTPPacket.decode(data)
        assert isinstance(error.value, ValueError)

    def test_mode_zero_raises_typed_error(self):
        wire = _ntp_wire((4 << 3) | 0, 2, b"\x00" * 46)
        with pytest.raises(NTPPacketError):
            NTPPacket.decode(wire)
        with pytest.raises(ValueError):
            seed_decode_ntp(wire)

    @given(unix_time=st.floats(min_value=0, max_value=2**31, allow_nan=False))
    @settings(max_examples=300)
    def test_client_query_wire_matches_packet_encode(self, unix_time):
        assert NTPPacket.client_query_wire(unix_time) == NTPPacket.client_query(
            unix_time
        ).encode()

    @given(
        seconds=st.integers(min_value=0, max_value=0xFFFFFFFF),
        fraction=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_timestamp_wire_round_trip(self, seconds, fraction):
        ts = NTPTimestamp(seconds=seconds, fraction=fraction)
        assert NTPTimestamp.from_bytes(ts.to_bytes()) == ts
