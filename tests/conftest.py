"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.testbed import TestbedConfig, build_testbed


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def network(sim: Simulator) -> Network:
    """An empty network attached to the simulator fixture."""
    return Network(sim)


@pytest.fixture
def small_testbed():
    """A small, fully wired lab testbed (pool, nameserver, resolver, attacker)."""
    return build_testbed(TestbedConfig(pool_size=24, seed=7))


@pytest.fixture
def predictable_testbed():
    """A testbed whose pool nameserver has a fully predictable response tail."""
    return build_testbed(TestbedConfig(pool_size=24, seed=11, pool_rotation="fixed"))
