"""Tests for the Table III probability model."""

import math

import pytest

from repro.core.probability import (
    PAPER_P_RATE,
    expected_attempts_until_success,
    monte_carlo_scenario1,
    monte_carlo_scenario2,
    probability_scenario1,
    probability_scenario2,
    required_removals,
    table3_rows,
)

#: The values printed in Table III of the paper (percent).
PAPER_TABLE3 = {
    1: (1, 38.0, 38.0),
    2: (2, 14.4, 14.4),
    3: (2, 14.4, 32.4),
    4: (3, 5.5, 15.7),
    5: (3, 5.5, 28.4),
    6: (4, 2.1, 15.3),
    7: (5, 0.8, 7.8),
    8: (6, 0.3, 3.9),
    9: (7, 0.1, 1.8),
}


class TestClosedForms:
    def test_p1_is_geometric(self):
        assert probability_scenario1(0) == 1.0
        assert probability_scenario1(1) == pytest.approx(PAPER_P_RATE)
        assert probability_scenario1(3) == pytest.approx(PAPER_P_RATE ** 3)

    def test_p2_reduces_to_p1_when_all_servers_needed(self):
        for m in range(1, 8):
            assert probability_scenario2(m, m) == pytest.approx(probability_scenario1(m))

    def test_p2_is_binomial_tail(self):
        assert probability_scenario2(4, 0) == pytest.approx(1.0)
        manual = sum(
            math.comb(4, i) * PAPER_P_RATE ** i * (1 - PAPER_P_RATE) ** (4 - i)
            for i in range(2, 5)
        )
        assert probability_scenario2(4, 2) == pytest.approx(manual)

    def test_p2_monotone_in_m_for_fixed_n(self):
        assert probability_scenario2(6, 3) > probability_scenario2(4, 3)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            probability_scenario1(-1)
        with pytest.raises(ValueError):
            probability_scenario2(3, 5)
        with pytest.raises(ValueError):
            required_removals(0)


class TestRequiredRemovals:
    def test_matches_paper_n_column(self):
        for m, (n, _, _) in PAPER_TABLE3.items():
            assert required_removals(m) == n


class TestTable3:
    def test_rows_match_paper_within_rounding(self):
        rows = {row.m: row for row in table3_rows()}
        for m, (n, p1, p2) in PAPER_TABLE3.items():
            assert rows[m].n == n
            assert rows[m].p1 * 100 == pytest.approx(p1, abs=0.06)
            assert rows[m].p2 * 100 == pytest.approx(p2, abs=0.06)

    def test_custom_p_rate(self):
        rows = table3_rows(p_rate=1.0)
        assert all(row.p1 == 1.0 and row.p2 == 1.0 for row in rows)

    def test_p2_always_at_least_p1(self):
        for row in table3_rows():
            assert row.p2 >= row.p1 - 1e-12


class TestMonteCarlo:
    def test_scenario1_agrees_with_closed_form(self):
        for n in (1, 2, 4):
            estimate = monte_carlo_scenario1(n, trials=200_000)
            assert estimate == pytest.approx(probability_scenario1(n), abs=0.005)

    def test_scenario2_agrees_with_closed_form(self):
        for m, n in ((4, 3), (6, 4), (9, 7)):
            estimate = monte_carlo_scenario2(m, n, trials=200_000)
            assert estimate == pytest.approx(probability_scenario2(m, n), abs=0.005)


class TestExpectedAttempts:
    def test_reciprocal(self):
        assert expected_attempts_until_success(0.5) == 2.0
        assert expected_attempts_until_success(0.0) == math.inf

    def test_ntpd_default_needs_a_handful_of_client_instances(self):
        """With P2(6,4) ~= 15%, roughly 1 in 7 default ntpd clients is in a
        vulnerable state at any time."""
        attempts = expected_attempts_until_success(probability_scenario2(6, 4))
        assert 6 < attempts < 7


class TestSharedMatrixMonteCarlo:
    """monte_carlo_table3: one (trials, m) RNG pass reused across all rows."""

    def test_agrees_with_closed_forms_on_every_row(self):
        from repro.core.probability import monte_carlo_table3

        estimates = monte_carlo_table3(trials=200_000)
        for m, (mc_p1, mc_p2) in estimates.items():
            n = required_removals(m)
            assert mc_p1 == pytest.approx(probability_scenario1(n), abs=0.005)
            assert mc_p2 == pytest.approx(probability_scenario2(m, n), abs=0.005)

    def test_covers_requested_rows(self):
        from repro.core.probability import monte_carlo_table3

        assert set(monte_carlo_table3(m_values=[2, 5], trials=1_000)) == {2, 5}
        assert monte_carlo_table3(m_values=[]) == {}

    def test_single_rng_pass_is_deterministic(self):
        import numpy as np

        from repro.core.probability import monte_carlo_table3

        first = monte_carlo_table3(trials=10_000, rng=np.random.default_rng(7))
        second = monte_carlo_table3(trials=10_000, rng=np.random.default_rng(7))
        assert first == second
