"""DNS resource records and rdata encoding.

Records keep a structured ``data`` field (e.g. an address string for A
records) alongside helpers to encode/decode the rdata wire bytes.  Only the
types the reproduction needs are implemented; unknown types round-trip as
opaque bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum

from repro.dns.errors import MessageError
from repro.dns.names import decode_name, encode_name, normalize_name
from repro.netsim.addresses import int_to_ip, ip_to_int


class RRType(IntEnum):
    """Resource record types used by the reproduction."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    TXT = 16
    AAAA = 28
    DNSKEY = 48
    RRSIG = 46
    ANY = 255


class RRClass(IntEnum):
    """Resource record classes (only IN is used)."""

    IN = 1


@dataclass
class ResourceRecord:
    """One DNS resource record.

    ``data`` holds the record's natural Python representation:

    * ``A`` / ``AAAA``: the address as a string,
    * ``NS`` / ``CNAME``: the target name,
    * ``TXT``: the text string,
    * ``SOA``: a ``(mname, rname, serial, refresh, retry, expire, minimum)`` tuple,
    * ``RRSIG``: a ``(covered_type, key_tag, signature_hex)`` tuple,
    * ``DNSKEY``: the key tag as an integer,
    * anything else: raw bytes.
    """

    name: str
    rtype: RRType
    ttl: int
    data: object
    rclass: RRClass = RRClass.IN
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.name = normalize_name(self.name)
        if self.ttl < 0:
            raise MessageError(f"negative TTL on {self.name}")

    @property
    def key(self) -> tuple[str, RRType]:
        """Cache key for this record: (owner name, type)."""
        return (self.name, self.rtype)

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """Return a copy of this record with a different TTL."""
        return ResourceRecord(
            name=self.name,
            rtype=self.rtype,
            ttl=ttl,
            data=self.data,
            rclass=self.rclass,
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------- encoding
    def encode_rdata(self, compression: dict[str, int] | None, offset: int) -> bytes:
        """Encode the rdata portion of this record."""
        if self.rtype in (RRType.A, RRType.AAAA):
            return ip_to_int(str(self.data)).to_bytes(4, "big")
        if self.rtype in (RRType.NS, RRType.CNAME):
            # Names inside rdata are not compressed here to keep decoding
            # independent of the enclosing message (matches common practice
            # for non-well-known types and keeps sizes conservative).
            return encode_name(str(self.data), None, offset)
        if self.rtype is RRType.TXT:
            text = str(self.data).encode("ascii")
            return bytes([len(text)]) + text
        if self.rtype is RRType.SOA:
            mname, rname, serial, refresh, retry, expire, minimum = self.data
            return (
                encode_name(mname, None, offset)
                + encode_name(rname, None, offset)
                + struct.pack("!IIIII", serial, refresh, retry, expire, minimum)
            )
        if self.rtype is RRType.RRSIG:
            covered, key_tag, signature_hex = self.data
            signature = bytes.fromhex(signature_hex)
            return struct.pack("!HH", int(covered), key_tag) + signature
        if self.rtype is RRType.DNSKEY:
            return struct.pack("!H", int(self.data))
        if isinstance(self.data, bytes):
            return self.data
        raise MessageError(f"cannot encode rdata for {self.rtype}")

    @classmethod
    def decode_rdata(
        cls, rtype: RRType, rdata: bytes, message: bytes, rdata_offset: int
    ) -> object:
        """Decode rdata bytes back into the structured representation."""
        if rtype in (RRType.A, RRType.AAAA):
            if len(rdata) != 4:
                raise MessageError("A record rdata must be 4 bytes")
            return int_to_ip(int.from_bytes(rdata, "big"))
        if rtype in (RRType.NS, RRType.CNAME):
            name, _ = decode_name(message, rdata_offset)
            return name
        if rtype is RRType.TXT:
            if not rdata:
                return ""
            length = rdata[0]
            return rdata[1 : 1 + length].decode("ascii")
        if rtype is RRType.SOA:
            mname, cursor = decode_name(message, rdata_offset)
            rname, cursor = decode_name(message, cursor)
            consumed = cursor - rdata_offset
            serial, refresh, retry, expire, minimum = struct.unpack(
                "!IIIII", rdata[consumed : consumed + 20]
            )
            return (mname, rname, serial, refresh, retry, expire, minimum)
        if rtype is RRType.RRSIG:
            covered, key_tag = struct.unpack("!HH", rdata[:4])
            return (RRType(covered), key_tag, rdata[4:].hex())
        if rtype is RRType.DNSKEY:
            return struct.unpack("!H", rdata[:2])[0]
        return rdata


# ----------------------------------------------------------------- factories
def a_record(name: str, address: str, ttl: int = 300) -> ResourceRecord:
    """Create an A record mapping ``name`` to ``address``."""
    return ResourceRecord(name=name, rtype=RRType.A, ttl=ttl, data=address)


def ns_record(name: str, nameserver: str, ttl: int = 86400) -> ResourceRecord:
    """Create an NS record delegating ``name`` to ``nameserver``."""
    return ResourceRecord(name=name, rtype=RRType.NS, ttl=ttl, data=nameserver)


def cname_record(name: str, target: str, ttl: int = 300) -> ResourceRecord:
    """Create a CNAME record aliasing ``name`` to ``target``."""
    return ResourceRecord(name=name, rtype=RRType.CNAME, ttl=ttl, data=target)


def txt_record(name: str, text: str, ttl: int = 300) -> ResourceRecord:
    """Create a TXT record."""
    return ResourceRecord(name=name, rtype=RRType.TXT, ttl=ttl, data=text)


def soa_record(
    name: str,
    mname: str,
    rname: str = "hostmaster.example",
    serial: int = 1,
    refresh: int = 7200,
    retry: int = 3600,
    expire: int = 1209600,
    minimum: int = 300,
    ttl: int = 3600,
) -> ResourceRecord:
    """Create an SOA record for a zone apex."""
    return ResourceRecord(
        name=name,
        rtype=RRType.SOA,
        ttl=ttl,
        data=(mname, rname, serial, refresh, retry, expire, minimum),
    )


def rrsig_record(
    name: str, covered: RRType, key_tag: int, signature_hex: str, ttl: int = 300
) -> ResourceRecord:
    """Create an RRSIG record covering ``covered`` records at ``name``."""
    return ResourceRecord(
        name=name, rtype=RRType.RRSIG, ttl=ttl, data=(covered, key_tag, signature_hex)
    )


def dnskey_record(name: str, key_tag: int, ttl: int = 3600) -> ResourceRecord:
    """Create a DNSKEY record carrying the zone's key tag."""
    return ResourceRecord(name=name, rtype=RRType.DNSKEY, ttl=ttl, data=key_tag)
