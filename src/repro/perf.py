"""Per-stage wall-time counters for the wire-layer hot paths.

The experiment engine and benchmarks need to know *where* an end-to-end run
spends its time — decode, encode, the delivery-pipeline stages, or the
remainder (event dispatch, attack logic, transmit) — so each PR can aim at
the actual bottleneck instead of guessing.  Timing every packet
unconditionally would slow the hot path it is supposed to measure, so the
counters are **off by default**: codec entry points check a single
attribute (``STAGES.enabled``) and skip both ``perf_counter`` calls when
disabled, and the compiled delivery pipelines route through their
uninstrumented flat paths.

Two kinds of sources feed a snapshot:

* codecs call :meth:`StageCounters.add` directly per timed operation, and
* compiled :class:`~repro.netsim.datapath.HostDatapath` objects accumulate
  per-stage delivery time (``defrag``, ``checksum``, ``demux``,
  ``handler``) in slots and register themselves via
  :meth:`StageCounters.attach`; snapshots merge them on demand so the
  per-packet instrumented path writes two floats instead of four dict
  entries.

Enable collection either directly (``STAGES.enable()``) or through
:class:`repro.experiments.runner.ExperimentRunner` with
``collect_stage_stats=True``, which also propagates the setting to worker
processes via the ``REPRO_STAGE_STATS`` environment variable and attaches a
:meth:`StageCounters.snapshot` to each run outcome.
"""

from __future__ import annotations

import weakref
from time import perf_counter
from typing import Any, Mapping, Optional

#: Environment variable the experiment engine uses to switch collection on in
#: worker processes (anything non-empty enables it).
STAGE_STATS_ENV = "REPRO_STAGE_STATS"

#: Stage names grouped into the aggregate buckets reported as shares.
DECODE_STAGES = ("dns_decode", "ntp_decode")
ENCODE_STAGES = ("dns_encode", "ntp_encode")
#: Delivery-pipeline stages (see repro.netsim.datapath).  ``handler`` wall
#: time *contains* the codec calls made inside datagram handlers; shares
#: subtract the codec aggregate so the reported buckets stay disjoint.
PIPELINE_STAGES = ("defrag", "checksum", "demux", "handler")
#: Event-dispatch stages split out of the old ``dispatch_other`` remainder
#: by the burst-execution engine: ``heap`` is the measured heap-pop share
#: of the simulator drain (a lower bound — pushes happen inside callbacks),
#: ``burst_drain`` the delivery-burst bookkeeping (grouping plus the
#: vectorised checksum verify; see :mod:`repro.netsim.burst`), and
#: ``faults`` the per-packet fault-channel decisions on faulted links
#: (zero on every fault-free run; see :mod:`repro.netsim.faults`).
DISPATCH_STAGES = ("heap", "burst_drain", "faults")
#: Driver-side stages split out of the remaining ``dispatch_other`` bucket:
#: scenario/attack-campaign logic that runs *between* deliveries.
#: ``campaign_send`` is the association-removal campaign's spoofed-query
#: crafting + burst hand-off (:class:`repro.core.rate_limit_abuse.
#: AssociationRemover` — arithmetic packet construction, no codec calls, so
#: the bucket never double-counts encode time), and ``progress_check`` the
#: periodic attack-progress polling of
#: :class:`repro.core.run_time.RunTimeAttack`.
DRIVER_STAGES = ("campaign_send", "progress_check")

#: Prune threshold for the attached-source registry (dead weakrefs).
_ATTACH_PRUNE_THRESHOLD = 4096


def stage_shares(
    decode_seconds: float,
    encode_seconds: float,
    wall_time: float,
    pipeline_seconds: Optional[Mapping[str, float]] = None,
) -> dict[str, Any]:
    """The wall-time attribution block shared by snapshots and summaries.

    ``pipeline_seconds`` maps delivery stage names (``defrag``,
    ``checksum``, ``demux``, ``handler``) to accumulated seconds.  Because
    nearly every codec call happens inside a datagram handler, the
    ``handler`` share is reported *net of* the decode/encode aggregate so
    decode + encode + pipeline stages + dispatch_other ≈ 1.  Known bias:
    encode performed *outside* handlers (timer-driven client sends) is
    still subtracted, so ``handler`` reads slightly low and
    ``dispatch_other`` slightly high in encode-heavy sweeps — the buckets
    are an attribution guide, not an exact partition.
    ``dispatch_other`` is the remainder: event-loop dispatch, transmit,
    scheduling and scenario logic outside the delivery pipeline.
    """
    pipeline_seconds = pipeline_seconds or {}
    document: dict[str, Any] = {
        "decode_seconds": round(decode_seconds, 6),
        "encode_seconds": round(encode_seconds, 6),
        "wall_time_seconds": round(wall_time, 6),
    }
    if not wall_time:
        document["shares"] = {
            "decode": 0.0,
            "encode": 0.0,
            "dispatch_other": 0.0,
        }
        return document
    shares: dict[str, float] = {
        "decode": round(decode_seconds / wall_time, 4),
        "encode": round(encode_seconds / wall_time, 4),
    }
    attributed = decode_seconds + encode_seconds
    for stage in PIPELINE_STAGES + DISPATCH_STAGES + DRIVER_STAGES:
        seconds = pipeline_seconds.get(stage, 0.0)
        if stage == "handler":
            # Handlers invoke the codecs; keep the buckets disjoint.
            seconds = max(0.0, seconds - decode_seconds - encode_seconds)
        if seconds:
            shares[stage] = round(seconds / wall_time, 4)
            attributed += seconds
    shares["dispatch_other"] = round(max(0.0, 1.0 - attributed / wall_time), 4)
    document["shares"] = shares
    return document


class StageCounters:
    """Accumulates wall time and call counts per named stage.

    ``add`` is called from codec hot paths only while ``enabled`` is true,
    so the disabled cost is one attribute read per codec call.  Delivery
    datapaths accumulate their stage times locally and are merged at
    snapshot time via the attached-source registry.
    """

    __slots__ = ("enabled", "times", "calls", "_sources", "_pinned")

    def __init__(self) -> None:
        self.enabled = False
        self.times: dict[str, float] = {}
        self.calls: dict[str, int] = {}
        self._sources: list[weakref.ref] = []
        #: Strong references held ONLY for sources attached (or alive) while
        #: collection is enabled: a host/datapath pair is a reference cycle,
        #: so without a pin a cyclic-GC pass between simulation teardown and
        #: snapshot() would silently drop the pipeline stage attribution.
        #: Cleared by reset(), so disabled runs never leak sources.
        self._pinned: list[Any] = []

    def enable(self) -> None:
        """Switch collection on (counters keep accumulating until reset).

        Live already-attached sources are pinned so their accumulators
        survive until the snapshot even if their owners become garbage.
        """
        self.enabled = True
        pinned = {id(source) for source in self._pinned}
        for ref in self._sources:
            source = ref()
            if source is not None and id(source) not in pinned:
                self._pinned.append(source)

    def disable(self) -> None:
        """Switch collection off; accumulated values remain readable."""
        self.enabled = False

    def reset(self) -> None:
        """Zero all counters, direct and attached (collection state unchanged).

        Live attached sources stay registered — their accumulators are
        zeroed in place, so hosts built before a manual ``reset()`` keep
        reporting into subsequent snapshots; dead references and the
        GC pins are dropped (re-pinned while collection is enabled).
        """
        self.times.clear()
        self.calls.clear()
        self._pinned.clear()
        live = []
        for ref in self._sources:
            source = ref()
            if source is not None:
                source.reset_stage_counters()
                live.append(ref)
                if self.enabled:
                    self._pinned.append(source)
        self._sources = live

    def attach(self, source: Any) -> None:
        """Register an object exposing ``collect_into(times, calls)`` and
        ``reset_stage_counters()``.

        Held by weak reference — sources live exactly as long as their
        owners (hosts) — plus a strong pin while collection is enabled so
        the attribution cannot be garbage-collected away before the
        snapshot that reads it.
        """
        sources = self._sources
        if len(sources) > _ATTACH_PRUNE_THRESHOLD:
            self._sources = sources = [ref for ref in sources if ref() is not None]
        sources.append(weakref.ref(source))
        if self.enabled:
            self._pinned.append(source)

    def add(self, stage: str, elapsed: float) -> None:
        """Record one timed call of ``stage``."""
        self.times[stage] = self.times.get(stage, 0.0) + elapsed
        self.calls[stage] = self.calls.get(stage, 0) + 1

    def add_many(self, stage: str, elapsed: float, calls: int) -> None:
        """Record ``calls`` timed operations of ``stage`` in one update.

        Used by sources that accumulate locally over a whole drain (the
        simulator's heap timing, the delivery bursts) and reconcile once.
        """
        self.times[stage] = self.times.get(stage, 0.0) + elapsed
        self.calls[stage] = self.calls.get(stage, 0) + calls

    def merged(self) -> tuple[dict[str, float], dict[str, int]]:
        """Direct counters plus every live attached source, non-destructively."""
        times = dict(self.times)
        calls = dict(self.calls)
        for ref in self._sources:
            source = ref()
            if source is not None:
                source.collect_into(times, calls)
        return times, calls

    # ------------------------------------------------------------- reporting
    def snapshot(self, wall_time: Optional[float] = None) -> dict[str, Any]:
        """A JSON-ready summary of the counters.

        With ``wall_time`` (seconds of the run being attributed), the
        snapshot also reports each bucket's share of the wall clock: the
        decode/encode aggregates, the named delivery-pipeline stages, and
        the ``dispatch_other`` remainder — event-loop dispatch, transmit,
        scheduling, and scenario logic.
        """
        times, calls = self.merged()
        decode = sum(times.get(stage, 0.0) for stage in DECODE_STAGES)
        encode = sum(times.get(stage, 0.0) for stage in ENCODE_STAGES)
        document: dict[str, Any] = {
            "stages": {
                stage: {
                    "seconds": round(times[stage], 6),
                    "calls": calls.get(stage, 0),
                }
                for stage in sorted(times)
            },
            "decode_seconds": round(decode, 6),
            "encode_seconds": round(encode, 6),
        }
        if wall_time is not None and wall_time > 0:
            pipeline = {
                stage: times.get(stage, 0.0)
                for stage in PIPELINE_STAGES + DISPATCH_STAGES + DRIVER_STAGES
            }
            attribution = stage_shares(decode, encode, wall_time, pipeline)
            document["wall_time_seconds"] = attribution["wall_time_seconds"]
            document["shares"] = attribution["shares"]
        return document


#: The process-wide counter instance the codecs consult.
STAGES = StageCounters()

#: Re-exported so codec modules need a single import for the guarded pattern:
#: ``if STAGES.enabled: t0 = perf_counter(); ...; STAGES.add(name, perf_counter() - t0)``.
__all__ = [
    "STAGES",
    "StageCounters",
    "STAGE_STATS_ENV",
    "perf_counter",
    "DECODE_STAGES",
    "ENCODE_STAGES",
    "PIPELINE_STAGES",
    "DISPATCH_STAGES",
    "DRIVER_STAGES",
    "stage_shares",
]
