"""Behavioural models of popular NTP client implementations.

Each class models the *association management* and *DNS lookup* behaviour of
one implementation from Table I of the paper — the behaviours that determine
whether boot-time and run-time attacks apply and how long they take — rather
than porting the original C code.  All share :class:`BaseNTPClient`, which
implements polling, reachability tracking, clock discipline and the DNS
(re-)query machinery; subclasses differ only in their configuration and in a
few hooks (e.g. systemd-timesyncd's cached server list).
"""

from repro.ntp.clients.base import BaseNTPClient, NTPClientConfig, ClientStats
from repro.ntp.clients.ntpd import NtpdClient
from repro.ntp.clients.chrony import ChronyClient
from repro.ntp.clients.openntpd import OpenNTPDClient
from repro.ntp.clients.ntpdate import NtpdateClient
from repro.ntp.clients.systemd import SystemdTimesyncdClient
from repro.ntp.clients.android import AndroidSNTPClient
from repro.ntp.clients.ntpclient import NtpclientClient

#: Registry of client models keyed by the name used in Table I.
CLIENT_REGISTRY = {
    "ntpd": NtpdClient,
    "openntpd": OpenNTPDClient,
    "chrony": ChronyClient,
    "ntpdate": NtpdateClient,
    "android": AndroidSNTPClient,
    "ntpclient": NtpclientClient,
    "systemd-timesyncd": SystemdTimesyncdClient,
}

__all__ = [
    "BaseNTPClient",
    "NTPClientConfig",
    "ClientStats",
    "NtpdClient",
    "ChronyClient",
    "OpenNTPDClient",
    "NtpdateClient",
    "SystemdTimesyncdClient",
    "AndroidSNTPClient",
    "NtpclientClient",
    "CLIENT_REGISTRY",
]
