"""Section VII-B — fragmentation support of the pool.ntp.org nameservers.

Probes the 30 pool nameservers with the PMTUD methodology: 16 of 30 fragment
DNS responses to 548 bytes or below, and none serves DNSSEC for the zone.
Also reports the open-configuration-interface prevalence quoted in section
IV-B2c (5.3 % of pool servers).
"""

from __future__ import annotations

from repro.measurement.frag_scan import FragmentationScan
from repro.measurement.population import generate_pool_nameservers
from repro.measurement.report import format_percentage, format_table
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.ntp.pool import PAPER_OPEN_CONFIG_FRACTION, build_pool_population


def run_scan():
    pool_ns_summary = FragmentationScan([]).scan_pool_nameservers(generate_pool_nameservers())
    simulator = Simulator(seed=29)
    network = Network(simulator)
    pool = build_pool_population(simulator, network, size=600, instantiate_servers=False)
    return pool_ns_summary, pool


def test_sec7b_pool_nameserver_fragmentation(run_once):
    summary, pool = run_once(run_scan)
    print()
    print(
        format_table(
            ["Metric", "Measured", "Paper"],
            [
                ["pool nameservers probed", summary["nameservers"], 30],
                ["fragment to <= 548 bytes", summary["fragment_below_548"], 16],
                ["DNSSEC-signed", summary["dnssec_signed"], 0],
                [
                    "NTP servers with open config interface",
                    format_percentage(pool.open_config_fraction(), 1),
                    "5.3%",
                ],
            ],
            title="Section VII-B — pool.ntp.org nameserver fragmentation support",
        )
    )
    assert summary["nameservers"] == 30
    assert summary["fragment_below_548"] == 16
    assert summary["dnssec_signed"] == 0
    assert abs(pool.open_config_fraction() - PAPER_OPEN_CONFIG_FRACTION) < 0.02
