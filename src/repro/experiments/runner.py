"""Declarative scenario grids executed serially or across processes.

A sweep is declared as a list of :class:`RunSpec` (scenario name plus keyword
parameters) and handed to :class:`ExperimentRunner`.  Each run builds its own
simulator from its own seed, so runs are independent and can execute in any
order on any worker while remaining bit-for-bit reproducible; the runner
returns outcomes in declaration order regardless of completion order.

Only the spec (a string and a tuple of primitives) crosses the process
boundary — workers resolve the scenario function from the registry in
:mod:`repro.experiments.scenarios` by name.  This keeps the engine robust to
the usual pickling pitfalls (lambdas, locally defined classes, bound
methods).

Resilience (the fault-injection PR's second half): sweeps survive the
failures that long population-scale grids actually hit.  Worker crashes
(``BrokenProcessPool``) respawn the pool and requeue the in-flight chunks;
per-run timeouts kill a stalled pool and recover the other chunks; failed
runs can be retried with exponential backoff and *deterministic* jitter
(:class:`RetryPolicy` — the jitter is a pure function of the run label and
attempt number, so resumed sweeps pace identically); every failure carries
a typed ``error_kind`` on its :class:`RunOutcome`; and a sweep can be
*checkpointed* to an append-only JSONL file and later :meth:`resumed
<ExperimentRunner.resume>` — finished specs are skipped and the combined
outcome list is identical to an uninterrupted run (scenarios are pure
functions of their spec, so re-executing the unfinished tail reproduces
exactly what the interrupted run would have produced).
"""

from __future__ import annotations

import json
import os
import platform
import random
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.measurement.report import format_table
from repro.perf import (
    DISPATCH_STAGES,
    PIPELINE_STAGES,
    STAGE_STATS_ENV,
    STAGES,
    stage_shares,
)

#: Default file the benchmark harness persists timings to (repo root).
BENCH_JSON_FILENAME = "BENCH_netsim.json"

#: The typed error taxonomy carried by ``RunOutcome.error_kind``:
#:
#: * ``scenario-error`` — the scenario function raised; deterministic for a
#:   deterministic scenario, so not retried by default.
#: * ``timeout`` — the run (or its chunk — see ``run_timeout``) exceeded its
#:   deadline and the worker was killed.
#: * ``worker-crash`` — the worker process died (OOM kill, segfault,
#:   ``BrokenProcessPool``); every chunk in flight at the moment of the
#:   crash is attributed this kind because the pool cannot say which task
#:   took the process down.
ERROR_KINDS = ("scenario-error", "timeout", "worker-crash")


class CheckpointError(RuntimeError):
    """A sweep checkpoint could not be written, read, or matched to specs."""


@dataclass(frozen=True)
class RetryPolicy:
    """Retry failed runs with exponential backoff and deterministic jitter.

    ``delay(label, attempt)`` is a pure function — the jitter comes from a
    :class:`random.Random` seeded with the run label and attempt number,
    not from global randomness — so a resumed sweep backs off exactly like
    the uninterrupted one would have.  ``retry_on`` selects which
    :data:`ERROR_KINDS` are worth re-executing; the default retries the
    transient kinds (crashes, timeouts) and not deterministic scenario
    errors, which would fail identically every time.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter_fraction: float = 0.1
    retry_on: tuple[str, ...] = ("worker-crash", "timeout")

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}"
            )
        for kind in self.retry_on:
            if kind not in ERROR_KINDS:
                raise ValueError(
                    f"unknown error kind {kind!r}; expected one of {ERROR_KINDS}"
                )

    def should_retry(self, error_kind: Optional[str], attempt: int) -> bool:
        """Whether a failure of ``error_kind`` on ``attempt`` gets another go."""
        return attempt < self.max_attempts and error_kind in self.retry_on

    def delay(self, label: str, attempt: int) -> float:
        """Backoff before re-running ``label`` after failed ``attempt``."""
        backoff = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter_fraction <= 0.0 or backoff <= 0.0:
            return backoff
        unit = random.Random(f"{label}#{attempt}").random()
        return backoff * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))


@dataclass(frozen=True)
class RunSpec:
    """One cell of a scenario grid: a registered scenario plus parameters.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so the
    spec is hashable and its repr is stable — useful as a table row key and
    for deduplication.
    """

    scenario: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, scenario: str, **params: Any) -> "RunSpec":
        """Build a spec from keyword parameters."""
        return cls(scenario=scenario, params=tuple(sorted(params.items())))

    def kwargs(self) -> dict[str, Any]:
        """The parameters as a keyword dict (what the scenario receives)."""
        return dict(self.params)

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``table2[client=ntpd, seed=5]``."""
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.scenario}[{inner}]" if inner else self.scenario


@dataclass
class RunOutcome:
    """The result of executing one :class:`RunSpec`."""

    spec: RunSpec
    result: Any = None
    wall_time: float = 0.0
    error: Optional[str] = None
    #: Per-stage decode/encode wall-time snapshot (see :mod:`repro.perf`);
    #: populated only when stage-stats collection is enabled.
    stage_stats: Optional[dict] = None
    #: One of :data:`ERROR_KINDS` when ``error`` is set, ``None`` otherwise.
    error_kind: Optional[str] = None
    #: Which execution attempt produced this outcome (1 = first try).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True when the run completed without raising."""
        return self.error is None


def make_grid(scenario: str, **axes: Iterable[Any]) -> list[RunSpec]:
    """Cross-product a set of named axes into a list of specs.

    ``make_grid("table2", client=["ntpd", "chrony"], seed=[1, 2])`` yields
    four specs in deterministic (row-major, insertion-ordered) order.
    """
    names = list(axes)
    combos = product(*(list(axes[name]) for name in names))
    return [
        RunSpec.make(scenario, **dict(zip(names, combo))) for combo in combos
    ]


def _execute_chunk(specs: tuple[RunSpec, ...]) -> list[RunOutcome]:
    """Run a contiguous slice of the grid in one worker task.

    Chunked submission amortises the per-task overhead of the process pool
    (pickling, dispatch) and — together with the
    :func:`repro.experiments.warmup.warm_worker_caches` pool initializer —
    means a worker pays the import/intern/memo warm-up once, not once per
    scenario.  Top-level, hence picklable.
    """
    from repro.experiments.warmup import warm_worker_caches

    warm_worker_caches()
    return [_execute(spec) for spec in specs]


def _execute(spec: RunSpec) -> RunOutcome:
    """Run one spec (in the current process).  Top-level, hence picklable.

    Stage-stats collection is keyed off the ``REPRO_STAGE_STATS`` environment
    variable (not a parameter) so the same picklable function works in
    worker processes — the runner sets the variable before creating the
    pool and workers inherit it.
    """
    from repro.experiments.scenarios import get_scenario

    collect_stages = bool(os.environ.get(STAGE_STATS_ENV))
    if collect_stages:
        STAGES.reset()
        STAGES.enable()
    started = time.perf_counter()
    try:
        result = get_scenario(spec.scenario)(**spec.kwargs())
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return RunOutcome(
            spec=spec,
            wall_time=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
            error_kind="scenario-error",
        )
    finally:
        if collect_stages:
            STAGES.disable()
    wall_time = time.perf_counter() - started
    return RunOutcome(
        spec=spec,
        result=result,
        wall_time=wall_time,
        stage_stats=STAGES.snapshot(wall_time) if collect_stages else None,
    )


# --------------------------------------------------------------- checkpoints
def _spec_document(spec: RunSpec) -> dict[str, Any]:
    """The JSON shape a spec takes inside a checkpoint line."""
    return {
        "scenario": spec.scenario,
        "params": [[name, value] for name, value in spec.params],
    }


def _json_normalise(value: Any) -> Any:
    """Round-trip through JSON (tuples → lists etc.) for spec comparison."""
    return json.loads(json.dumps(value))


class _CheckpointWriter:
    """Append-only JSONL sink for completed outcomes.

    One line per finished run, flushed and fsynced immediately so a killed
    sweep loses at most the line being written (a torn final line, which
    the loader tolerates).  Lines are written in *completion* order and
    carry the spec index, so declaration order is reconstructed on load.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            self._repair_torn_tail(path)
            self._handle = open(path, "a", encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(f"cannot open checkpoint {path!r}: {exc}") from exc

    @staticmethod
    def _repair_torn_tail(path: str) -> None:
        """Truncate a partial final line left by a kill mid-write.

        The loader already treats the fragment as not-done (the run will
        re-execute), but appending to it would concatenate the next entry
        onto the fragment and corrupt the file — so drop it first.
        """
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return
        if not data or data.endswith(b"\n"):
            return
        end = data.rfind(b"\n")
        with open(path, "wb") as handle:
            handle.write(data[: end + 1])

    def append(self, index: int, outcome: RunOutcome) -> None:
        entry = {
            "index": index,
            "spec": _spec_document(outcome.spec),
            "result": outcome.result,
            "wall_time": outcome.wall_time,
            "error": outcome.error,
            "error_kind": outcome.error_kind,
            "attempts": outcome.attempts,
        }
        if outcome.stage_stats is not None:
            entry["stage_stats"] = outcome.stage_stats
        try:
            line = json.dumps(entry)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"outcome of {outcome.spec.label} is not JSON-serialisable "
                f"(checkpointed sweeps need JSON-safe scenario results): {exc}"
            ) from exc
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()


def load_checkpoint(path: str, specs: Sequence[RunSpec]) -> dict[int, RunOutcome]:
    """Read a checkpoint back into ``{spec index: RunOutcome}``.

    Validates every line against the sweep it claims to belong to — the
    index must be in range and the recorded spec must equal ``specs[index]``
    (a mismatch means the checkpoint came from a different grid and raises
    :class:`CheckpointError` rather than silently skipping wrong runs).  A
    torn final line (the process was killed mid-write) is ignored; JSON
    floats round-trip exactly, so reloaded results compare bit-identical
    to freshly executed ones.
    """
    done: dict[int, RunOutcome] = {}
    if not os.path.exists(path):
        return done
    expected = [_json_normalise(_spec_document(spec)) for spec in specs]
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for line_number, line in enumerate(lines, start=1):
        text = line.strip()
        if not text:
            continue
        try:
            entry = json.loads(text)
        except json.JSONDecodeError:
            if line_number == len(lines):
                break  # torn tail from a kill mid-write: the run re-executes
            raise CheckpointError(
                f"checkpoint {path!r} line {line_number} is not valid JSON"
            ) from None
        index = entry.get("index")
        if not isinstance(index, int) or not 0 <= index < len(specs):
            raise CheckpointError(
                f"checkpoint {path!r} line {line_number}: index {index!r} "
                f"out of range for a sweep of {len(specs)} specs"
            )
        if entry.get("spec") != expected[index]:
            raise CheckpointError(
                f"checkpoint {path!r} line {line_number}: recorded spec "
                f"{entry.get('spec')!r} does not match {specs[index].label} — "
                "this checkpoint belongs to a different sweep"
            )
        done[index] = RunOutcome(
            spec=specs[index],
            result=entry.get("result"),
            wall_time=entry.get("wall_time", 0.0),
            error=entry.get("error"),
            stage_stats=entry.get("stage_stats"),
            error_kind=entry.get("error_kind"),
            attempts=entry.get("attempts", 1),
        )
    return done


class _ProgressTracker:
    """Throttled completed/total emission shared by run() and the writer."""

    def __init__(
        self,
        callback: Optional[Callable[[int, int], None]],
        interval: float,
        total: int,
        completed: int,
    ) -> None:
        self.callback = callback
        self.interval = interval
        self.total = total
        self.completed = completed
        self._last_time = time.monotonic()
        self._last_reported = -1

    def advance(self, count: int = 1) -> None:
        self.completed += count
        if self.callback is None:
            return
        now = time.monotonic()
        if (
            self.interval <= 0.0
            or now - self._last_time >= self.interval
            or self.completed >= self.total
        ):
            self._last_time = now
            self._last_reported = self.completed
            self.callback(self.completed, self.total)

    def finish(self) -> None:
        """Guarantee a final emission even when the throttle swallowed it."""
        if self.callback is not None and self._last_reported != self.completed:
            self._last_reported = self.completed
            self.callback(self.completed, self.total)


@dataclass(frozen=True)
class _Chunk:
    """A contiguous slice of the grid scheduled as one pool task."""

    items: tuple[tuple[int, RunSpec], ...]  # (declaration index, spec)
    attempt: int = 1

    @property
    def label(self) -> str:
        first = self.items[0][1].label
        if len(self.items) == 1:
            return first
        return f"{first} (+{len(self.items) - 1} more)"


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers and abandon it (stalled or broken)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 - already-dead workers are fine
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001 - broken executors may refuse shutdown
        pass


class ExperimentRunner:
    """Execute scenario sweeps, optionally fanning out across processes.

    Parameters
    ----------
    max_workers:
        ``1`` forces in-process serial execution (no pickling requirements
        at all).  ``None`` uses ``os.cpu_count()``.  Anything larger than 1
        uses a ``ProcessPoolExecutor``; if the pool cannot be created or a
        submission fails to pickle, the runner falls back to serial
        execution rather than failing the sweep.
    collect_stage_stats:
        When true, each run collects the per-stage decode/encode and
        delivery-pipeline wall-time counters of :mod:`repro.perf` and
        attaches a snapshot to its :class:`RunOutcome` (``stage_stats``),
        at the cost of a few ``perf_counter`` calls per codec operation and
        delivered packet.  Timing never feeds the simulation, so results
        remain bit-identical.
    chunk_size:
        Scenarios per worker task when fanning out across processes.
        ``None`` (the default) picks ``ceil(len(specs) / (4 * workers))``
        — large enough to amortise dispatch, small enough to load-balance
        a heterogeneous grid.  ``1`` reproduces the old task-per-scenario
        submission.  Each chunk runs against that worker's warmed caches
        (see :mod:`repro.experiments.warmup`).
    run_timeout:
        Per-run wall-clock budget in seconds, enforced in process mode: a
        chunk of ``k`` runs gets ``k × run_timeout``, and on expiry the
        pool is killed, the stalled chunk fails (or retries) with kind
        ``"timeout"``, the other in-flight chunks are requeued unharmed and
        a fresh pool takes over.  Pass ``chunk_size=1`` for strict per-run
        deadlines.  Serial execution cannot preempt a running scenario, so
        the timeout is not enforced there.
    retry:
        A :class:`RetryPolicy`; ``None`` disables retries.  Failed runs of
        a kind in ``retry_on`` re-execute (scenarios are pure functions of
        their spec, so a retry that succeeds is indistinguishable from a
        first-try success apart from ``RunOutcome.attempts``).
    on_progress:
        ``callback(completed, total)`` invoked as runs finish (also on
        runs replayed from a checkpoint).  Throttled by
        ``progress_interval`` seconds (``0`` emits on every completion); a
        final emission is guaranteed.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        collect_stage_stats: bool = False,
        chunk_size: Optional[int] = None,
        run_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        on_progress: Optional[Callable[[int, int], None]] = None,
        progress_interval: float = 0.0,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if run_timeout is not None and run_timeout <= 0:
            raise ValueError(f"run_timeout must be > 0, got {run_timeout}")
        if progress_interval < 0:
            raise ValueError(f"progress_interval must be >= 0, got {progress_interval}")
        self.max_workers = max_workers
        self.collect_stage_stats = collect_stage_stats
        self.chunk_size = chunk_size
        self.run_timeout = run_timeout
        self.retry = retry
        self.on_progress = on_progress
        self.progress_interval = progress_interval
        #: "serial" or "processes[N] chunks[M]" — how the last sweep ran.
        self.last_execution_mode: str = "serial"

    # ------------------------------------------------------------- execution
    def run(
        self, specs: Sequence[RunSpec], checkpoint: Optional[str] = None
    ) -> list[RunOutcome]:
        """Execute all specs, returning outcomes in declaration order.

        With ``checkpoint`` set, every completed outcome is appended to
        that JSONL file as it finishes; an existing non-empty checkpoint is
        refused (use :meth:`resume` to continue it, or delete the file to
        start over).
        """
        specs = list(specs)
        if (
            checkpoint is not None
            and os.path.exists(checkpoint)
            and os.path.getsize(checkpoint) > 0
        ):
            raise CheckpointError(
                f"checkpoint {checkpoint!r} already holds outcomes; call "
                "resume() to continue the sweep, or remove the file to restart"
            )
        return self._run(specs, checkpoint, {})

    def resume(
        self, specs: Sequence[RunSpec], checkpoint: str
    ) -> list[RunOutcome]:
        """Continue a checkpointed sweep, skipping already-finished specs.

        Outcomes recorded in the checkpoint are loaded back (validated
        against ``specs``); only the unfinished tail executes, appending to
        the same file.  Because scenarios are pure functions of their
        specs, the returned list is identical to what an uninterrupted
        :meth:`run` would have produced.  A missing or empty checkpoint
        degrades to a plain run.
        """
        specs = list(specs)
        done = load_checkpoint(checkpoint, specs)
        return self._run(specs, checkpoint, done)

    def _run(
        self,
        specs: list[RunSpec],
        checkpoint: Optional[str],
        done: dict[int, RunOutcome],
    ) -> list[RunOutcome]:
        previous_env = os.environ.get(STAGE_STATS_ENV)
        if self.collect_stage_stats:
            # Workers inherit the environment, so this propagates through
            # the process pool as well as the serial path.
            os.environ[STAGE_STATS_ENV] = "1"
        writer = _CheckpointWriter(checkpoint) if checkpoint is not None else None
        try:
            results: dict[int, RunOutcome] = dict(done)
            remaining = [
                (index, spec)
                for index, spec in enumerate(specs)
                if index not in results
            ]
            progress = _ProgressTracker(
                self.on_progress, self.progress_interval, len(specs), len(results)
            )
            if self.max_workers == 1 or len(remaining) <= 1:
                self.last_execution_mode = "serial"
                self._run_serial(remaining, results, writer, progress)
            else:
                self._run_pool(remaining, results, writer, progress)
            progress.finish()
            return [results[index] for index in range(len(specs))]
        finally:
            if writer is not None:
                writer.close()
            if self.collect_stage_stats:
                if previous_env is None:
                    os.environ.pop(STAGE_STATS_ENV, None)
                else:
                    os.environ[STAGE_STATS_ENV] = previous_env

    def _record(
        self,
        index: int,
        outcome: RunOutcome,
        results: dict[int, RunOutcome],
        writer: Optional[_CheckpointWriter],
        progress: _ProgressTracker,
    ) -> None:
        results[index] = outcome
        if writer is not None:
            writer.append(index, outcome)
        progress.advance()

    def _execute_with_retry(self, spec: RunSpec) -> RunOutcome:
        """Serial execution with the retry policy applied in-process."""
        attempt = 1
        while True:
            outcome = _execute(spec)
            outcome.attempts = attempt
            if (
                outcome.ok
                or self.retry is None
                or not self.retry.should_retry(outcome.error_kind, attempt)
            ):
                return outcome
            time.sleep(self.retry.delay(spec.label, attempt))
            attempt += 1

    def _run_serial(
        self,
        remaining: list[tuple[int, RunSpec]],
        results: dict[int, RunOutcome],
        writer: Optional[_CheckpointWriter],
        progress: _ProgressTracker,
    ) -> None:
        for index, spec in remaining:
            self._record(index, self._execute_with_retry(spec), results, writer, progress)

    # ------------------------------------------------------------- pool engine
    def _make_pool(self) -> ProcessPoolExecutor:
        from repro.experiments.warmup import warm_worker_caches

        return ProcessPoolExecutor(
            max_workers=self.max_workers, initializer=warm_worker_caches
        )

    def _handle_chunk_failure(
        self,
        chunk: _Chunk,
        kind: str,
        requeue: "deque[_Chunk]",
        results: dict[int, RunOutcome],
        writer: Optional[_CheckpointWriter],
        progress: _ProgressTracker,
    ) -> None:
        """Retry a definitively-failed chunk, or materialise typed outcomes."""
        if self.retry is not None and self.retry.should_retry(kind, chunk.attempt):
            time.sleep(self.retry.delay(chunk.label, chunk.attempt))
            requeue.append(_Chunk(chunk.items, chunk.attempt + 1))
            return
        if kind == "timeout":
            message = (
                f"run exceeded its {self.run_timeout}s deadline "
                "(worker killed, pool respawned)"
            )
        else:
            message = "worker process died (pool respawned)"
        for index, spec in chunk.items:
            self._record(
                index,
                RunOutcome(
                    spec=spec, error=message, error_kind=kind, attempts=chunk.attempt
                ),
                results,
                writer,
                progress,
            )

    def _run_pool(
        self,
        remaining: list[tuple[int, RunSpec]],
        results: dict[int, RunOutcome],
        writer: Optional[_CheckpointWriter],
        progress: _ProgressTracker,
    ) -> None:
        """The resilient pool engine: deadlines, crash recovery, requeue.

        Three queues: ``pending`` holds untouched chunks, ``in_flight``
        maps submitted futures to ``(chunk, deadline)``, and ``quarantine``
        holds chunks that were in flight when a pool broke.  A broken pool
        cannot say which task killed it, so quarantined chunks re-execute
        strictly one at a time — an innocent bystander simply completes,
        while a chunk that breaks a pool it had to itself is the definitive
        culprit and fails (or retries) with kind ``"worker-crash"``.
        """
        try:
            pool = self._make_pool()
        except Exception:  # pool creation failure: degrade gracefully
            self.last_execution_mode = "serial (process pool unavailable)"
            self._run_serial(remaining, results, writer, progress)
            return
        chunks = [_Chunk(tuple(slice_)) for slice_ in self._chunk(remaining)]
        self.last_execution_mode = (
            f"processes[{self.max_workers}] chunks[{len(chunks)}]"
        )
        pending: deque[_Chunk] = deque(chunks)
        quarantine: deque[_Chunk] = deque()
        in_flight: dict[Any, tuple[_Chunk, Optional[float]]] = {}

        def submit(chunk: _Chunk) -> bool:
            """Submit one chunk; False means the pool is already broken."""
            try:
                future = pool.submit(
                    _execute_chunk, tuple(spec for _, spec in chunk.items)
                )
            except BrokenProcessPool:
                quarantine.appendleft(chunk)
                return False
            except Exception:  # unpicklable chunk: run it in the driver
                for index, spec in chunk.items:
                    self._record(
                        index,
                        self._execute_with_retry(spec),
                        results,
                        writer,
                        progress,
                    )
                return True
            deadline = None
            if self.run_timeout is not None:
                deadline = time.monotonic() + self.run_timeout * len(chunk.items)
            in_flight[future] = (chunk, deadline)
            return True

        def recover() -> Optional[ProcessPoolExecutor]:
            """Kill the broken/stalled pool; survivors go to quarantine."""
            _kill_pool(pool)
            for _future, (chunk, _deadline) in reversed(list(in_flight.items())):
                quarantine.appendleft(chunk)
            in_flight.clear()
            return self._respawn(pending, quarantine, results, writer, progress)

        try:
            while pending or quarantine or in_flight:
                pool_broken = False
                if quarantine:
                    # Suspects run solo so a repeat crash has one suspect.
                    if not in_flight:
                        pool_broken = not submit(quarantine.popleft())
                else:
                    while pending and len(in_flight) < self.max_workers:
                        if not submit(pending.popleft()):
                            pool_broken = True
                            break
                if pool_broken:
                    pool = recover()
                    if pool is None:
                        return
                    continue
                if not in_flight:
                    continue
                wait_timeout = None
                if self.run_timeout is not None:
                    now = time.monotonic()
                    deadlines = [
                        deadline
                        for _chunk, deadline in in_flight.values()
                        if deadline is not None
                    ]
                    if deadlines:
                        wait_timeout = max(0.01, min(deadlines) - now)
                completed, _running = wait(
                    set(in_flight), timeout=wait_timeout, return_when=FIRST_COMPLETED
                )
                if not completed:
                    # Deadline sweep: a stalled worker holds its pool
                    # hostage (ProcessPoolExecutor cannot cancel a running
                    # task), so the whole pool is killed; expired chunks
                    # fail or retry as timeouts, the rest are requeued at
                    # their current attempt via the quarantine.
                    now = time.monotonic()
                    expired = {
                        future
                        for future, (_chunk, deadline) in in_flight.items()
                        if deadline is not None and deadline <= now
                    }
                    if not expired:
                        continue
                    for future in expired:
                        chunk, _deadline = in_flight.pop(future)
                        self._handle_chunk_failure(
                            chunk, "timeout", pending, results, writer, progress
                        )
                    pool = recover()
                    if pool is None:
                        return
                    continue
                flight_size = len(in_flight)
                crashed = False
                for future in completed:
                    chunk, _deadline = in_flight.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool:
                        crashed = True
                        if flight_size == 1:
                            # It had the pool to itself: definitive culprit.
                            self._handle_chunk_failure(
                                chunk,
                                "worker-crash",
                                quarantine,
                                results,
                                writer,
                                progress,
                            )
                        else:
                            quarantine.appendleft(chunk)
                    except Exception:  # worker-side dispatch failure
                        crashed = True
                        self._handle_chunk_failure(
                            chunk, "worker-crash", quarantine, results, writer, progress
                        )
                    else:
                        for (index, _spec), outcome in zip(chunk.items, outcomes):
                            outcome.attempts = chunk.attempt
                            self._record(index, outcome, results, writer, progress)
                if crashed:
                    # A broken pool takes every in-flight sibling with it.
                    pool = recover()
                    if pool is None:
                        return
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _respawn(
        self,
        pending: "deque[_Chunk]",
        quarantine: "deque[_Chunk]",
        results: dict[int, RunOutcome],
        writer: Optional[_CheckpointWriter],
        progress: _ProgressTracker,
    ) -> Optional[ProcessPoolExecutor]:
        """A fresh pool after a kill — or serial drain when none can start."""
        try:
            return self._make_pool()
        except Exception:  # noqa: BLE001 - degrade, don't lose the sweep
            self.last_execution_mode = "serial (process pool unavailable)"
            leftovers = [
                (index, spec)
                for chunk in list(quarantine) + list(pending)
                for index, spec in chunk.items
            ]
            quarantine.clear()
            pending.clear()
            self._run_serial(leftovers, results, writer, progress)
            return None


    def _chunk(self, specs: list) -> list[tuple]:
        """Slice the grid into contiguous worker tasks (see ``chunk_size``)."""
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(specs) // (4 * self.max_workers)))
        return [
            tuple(specs[start : start + size]) for start in range(0, len(specs), size)
        ]

    def run_grid(self, scenario: str, **axes: Iterable[Any]) -> list[RunOutcome]:
        """Declare and execute a cross-product grid in one call."""
        return self.run(make_grid(scenario, **axes))


# ------------------------------------------------------------------ reporting
def outcomes_table(
    outcomes: Sequence[RunOutcome],
    columns: Sequence[tuple[str, Callable[[RunOutcome], Any]]],
    title: str = "",
) -> str:
    """Render outcomes with :func:`repro.measurement.report.format_table`.

    ``columns`` is a list of ``(header, extractor)`` pairs; extractors
    receive the :class:`RunOutcome`.
    """
    headers = [header for header, _ in columns]
    rows = [[extract(outcome) for _, extract in columns] for outcome in outcomes]
    return format_table(headers, rows, title=title)


def timings_summary(outcomes: Sequence[RunOutcome]) -> dict[str, Any]:
    """Machine-readable wall-clock summary of a sweep (for the bench JSON).

    When the sweep ran with stage-stats collection, the summary also carries
    ``stage_time_shares``: the sweep-wide decode/encode seconds, the named
    delivery-pipeline stages (``defrag``, ``checksum``, ``demux``,
    ``handler``) and their shares of total wall time, with the remainder
    attributed to ``dispatch_other`` (event-loop dispatch, transmit,
    scheduling, scenario logic).  This is the field future PRs read to find
    the next bottleneck.
    """
    summary: dict[str, Any] = {
        "runs": [
            {
                "label": outcome.spec.label,
                "wall_time_seconds": round(outcome.wall_time, 6),
                "ok": outcome.ok,
            }
            for outcome in outcomes
        ],
        "total_wall_time_seconds": round(
            sum(outcome.wall_time for outcome in outcomes), 6
        ),
    }
    staged = [outcome for outcome in outcomes if outcome.stage_stats]
    if staged:
        total_wall = sum(outcome.wall_time for outcome in staged)
        decode = sum(outcome.stage_stats["decode_seconds"] for outcome in staged)
        encode = sum(outcome.stage_stats["encode_seconds"] for outcome in staged)
        stages: dict[str, dict[str, Any]] = {}
        for outcome in staged:
            for name, stats in outcome.stage_stats["stages"].items():
                merged = stages.setdefault(name, {"seconds": 0.0, "calls": 0})
                merged["seconds"] = round(merged["seconds"] + stats["seconds"], 6)
                merged["calls"] += stats["calls"]
        pipeline = {
            name: stages[name]["seconds"]
            for name in PIPELINE_STAGES + DISPATCH_STAGES
            if name in stages
        }
        summary["stage_time_shares"] = {
            "stages": stages,
            **stage_shares(decode, encode, total_wall, pipeline),
        }
    return summary


def write_bench_json(
    path: str,
    microbenchmarks: Optional[dict[str, Any]] = None,
    experiments: Optional[dict[str, Any]] = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Write (or update) the machine-readable benchmark timings file.

    The file keeps one top-level document; sections passed as ``None`` are
    preserved from the existing file so microbenchmarks and end-to-end
    sweeps can be refreshed independently.
    """
    document: dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            document = {}
    document["schema"] = "repro-bench/1"
    document["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    document["python"] = platform.python_version()
    document["cpu_count"] = os.cpu_count()
    if microbenchmarks is not None:
        document["microbenchmarks"] = microbenchmarks
    if experiments is not None:
        document["experiments"] = experiments
    if extra:
        document.update(extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return document
