"""Tests for the network fabric: delivery, links, captures, injection."""

import pytest

from repro.netsim.capture import PacketCapture
from repro.netsim.errors import NoRouteError
from repro.netsim.network import Link, Network
from repro.netsim.packet import IPProtocol, IPv4Packet
from repro.netsim.simulator import Simulator
from repro.netsim.udp import UDPDatagram, encode_udp


def make_net():
    sim = Simulator(seed=2)
    net = Network(sim, default_latency=0.01)
    a = net.add_host("a", "10.0.0.1")
    b = net.add_host("b", "10.0.0.2")
    return sim, net, a, b


class TestTopology:
    def test_duplicate_address_rejected(self):
        _, net, _, _ = make_net()
        with pytest.raises(NoRouteError):
            net.add_host("dup", "10.0.0.1")

    def test_host_lookup(self):
        _, net, a, _ = make_net()
        assert net.host("10.0.0.1") is a
        assert net.has_host("10.0.0.2")
        assert not net.has_host("10.0.0.99")
        with pytest.raises(NoRouteError):
            net.host("10.0.0.99")

    def test_hosts_listing(self):
        _, net, _, _ = make_net()
        assert len(net.hosts()) == 2


class TestDelivery:
    def test_latency_applied(self):
        sim, net, a, b = make_net()
        net.set_link("10.0.0.1", "10.0.0.2", Link(latency=0.5))
        arrivals = []
        b.bind(53, lambda payload, ip, port: arrivals.append(sim.now))
        a.bind(0).sendto(b"x", "10.0.0.2", 53)
        sim.run()
        assert arrivals == [pytest.approx(0.5)]

    def test_packet_to_unknown_destination_dropped(self):
        sim, net, a, _ = make_net()
        a.bind(0).sendto(b"x", "172.16.0.1", 53)
        sim.run()
        assert net.packets_dropped == 1

    def test_lossy_link_drops_packets(self):
        sim, net, a, b = make_net()
        net.set_link("10.0.0.1", "10.0.0.2", Link(latency=0.01, loss_probability=1.0))
        received = []
        b.bind(53, lambda payload, ip, port: received.append(payload))
        a.bind(0).sendto(b"x", "10.0.0.2", 53)
        sim.run()
        assert received == []
        assert net.packets_dropped == 1

    def test_default_link_used_when_not_overridden(self):
        _, net, _, _ = make_net()
        link = net.link_between("10.0.0.1", "10.0.0.2")
        assert link is net.default_link


class TestCapturesAndInjection:
    def test_capture_records_delivered_packets(self):
        sim, net, a, b = make_net()
        capture = PacketCapture(name="test")
        net.attach_capture(capture)
        b.bind(53)
        a.bind(0).sendto(b"x", "10.0.0.2", 53)
        sim.run()
        assert len(capture) == 1
        assert capture.between("10.0.0.1", "10.0.0.2")[0].packet.dst == "10.0.0.2"

    def test_capture_filter(self):
        sim, net, a, b = make_net()
        capture = PacketCapture(capture_filter=lambda p: p.dst == "10.0.0.99")
        net.attach_capture(capture)
        b.bind(53)
        a.bind(0).sendto(b"x", "10.0.0.2", 53)
        sim.run()
        assert len(capture) == 0

    def test_detach_capture(self):
        sim, net, a, b = make_net()
        capture = PacketCapture()
        net.attach_capture(capture)
        net.detach_capture(capture)
        b.bind(53)
        a.bind(0).sendto(b"x", "10.0.0.2", 53)
        sim.run()
        assert len(capture) == 0

    def test_injected_spoofed_packet_delivered_and_marked(self):
        sim, net, a, b = make_net()
        received = []
        b.bind(53, lambda payload, ip, port: received.append((payload, ip)))
        datagram = UDPDatagram(src_port=53, dst_port=53, payload=b"spoofed")
        payload = encode_udp("10.0.0.1", "10.0.0.2", datagram)
        packet = IPv4Packet(
            src="10.0.0.1", dst="10.0.0.2", protocol=IPProtocol.UDP, payload=payload
        )
        net.inject(packet)
        sim.run()
        # Delivered as if it came from the spoofed source...
        assert received == [(b"spoofed", "10.0.0.1")]
        # ...while ground truth records it was injected.
        assert packet.metadata["spoofed"] is True

    def test_capture_clear(self):
        capture = PacketCapture()
        capture.observe(
            IPv4Packet(src="1.1.1.1", dst="2.2.2.2", protocol=IPProtocol.UDP, payload=b""),
            time=0.0,
        )
        capture.clear()
        assert len(capture) == 0
