"""Tests for zone data."""

import pytest

from repro.dns.records import RRType, a_record, ns_record
from repro.dns.zone import Zone


class TestZone:
    def make_zone(self):
        zone = Zone(origin="pool.ntp.org")
        zone.add(ns_record("pool.ntp.org", "ns1.pool.ntp.org"))
        zone.add(a_record("ns1.pool.ntp.org", "198.51.100.1"))
        zone.add(a_record("0.pool.ntp.org", "203.0.113.1"))
        return zone

    def test_soa_added_automatically(self):
        zone = Zone(origin="example.org")
        assert zone.lookup("example.org", RRType.SOA)

    def test_contains(self):
        zone = self.make_zone()
        assert zone.contains("0.pool.ntp.org")
        assert zone.contains("pool.ntp.org")
        assert not zone.contains("example.org")

    def test_lookup_exact_match(self):
        zone = self.make_zone()
        records = zone.lookup("0.pool.ntp.org", RRType.A)
        assert len(records) == 1 and str(records[0].data) == "203.0.113.1"

    def test_lookup_any(self):
        zone = self.make_zone()
        assert len(zone.lookup("pool.ntp.org", RRType.ANY)) >= 2  # SOA + NS

    def test_lookup_missing(self):
        assert self.make_zone().lookup("9.pool.ntp.org", RRType.A) == []

    def test_add_outside_zone_rejected(self):
        with pytest.raises(ValueError):
            self.make_zone().add(a_record("example.com", "1.2.3.4"))

    def test_names(self):
        names = self.make_zone().names()
        assert "0.pool.ntp.org" in names and "ns1.pool.ntp.org" in names

    def test_origin_normalised(self):
        assert Zone(origin="Pool.NTP.ORG.").origin == "pool.ntp.org"
