"""A deliberately simplified DNSSEC model.

Real DNSSEC uses public-key signatures over canonically ordered rrsets with a
chain of trust from the root.  For the purposes of this reproduction the only
properties that matter are:

* a *signed* zone's rrsets carry RRSIG records that a *validating* resolver
  can check against a trust anchor, and an off-path attacker cannot produce a
  valid signature for records it injects,
* an *unsigned* zone (like ``pool.ntp.org``, the paper found no DNSSEC on any
  of its 30 nameservers) gives a validating resolver nothing to check, so
  validation does not protect its clients, and
* only a minority of resolvers validate at all (19.14 %–28.94 % in the
  paper's ad-network study).

Signatures here are SHA-256 digests keyed by a per-zone secret.  This is not
cryptography — it is a stand-in that preserves exactly the attacker/defender
asymmetry above, because the attacker model never has access to the zone
secret.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.dns.errors import ValidationError
from repro.dns.records import ResourceRecord, RRType, dnskey_record, rrsig_record
from repro.dns.zone import Zone


@dataclass(frozen=True)
class ZoneSigningKey:
    """The signing key for one zone: a key tag plus a secret."""

    zone: str
    key_tag: int
    secret: bytes

    @classmethod
    def generate(cls, zone: str, key_tag: int = 1) -> "ZoneSigningKey":
        """Derive a deterministic key for a zone (reproducible simulations)."""
        secret = hashlib.sha256(f"zsk:{zone}:{key_tag}".encode()).digest()
        return cls(zone=zone, key_tag=key_tag, secret=secret)


def _rrset_digest(key: ZoneSigningKey, records: list[ResourceRecord]) -> str:
    """The keyed digest standing in for an RRSIG signature."""
    hasher = hashlib.sha256()
    hasher.update(key.secret)
    for record in sorted(records, key=lambda r: (r.name, int(r.rtype), str(r.data))):
        hasher.update(record.name.encode())
        hasher.update(int(record.rtype).to_bytes(2, "big"))
        hasher.update(str(record.data).encode())
    return hasher.hexdigest()


def sign_rrset(key: ZoneSigningKey, records: list[ResourceRecord]) -> ResourceRecord:
    """Produce the RRSIG covering one rrset."""
    if not records:
        raise ValidationError("cannot sign an empty rrset")
    first = records[0]
    return rrsig_record(
        name=first.name,
        covered=first.rtype,
        key_tag=key.key_tag,
        signature_hex=_rrset_digest(key, records),
        ttl=first.ttl,
    )


def sign_zone(zone: Zone, key: ZoneSigningKey) -> Zone:
    """Sign every rrset in ``zone`` in place and mark the zone signed."""
    rrsets: dict[tuple[str, RRType], list[ResourceRecord]] = {}
    for record in zone.records:
        if record.rtype in (RRType.RRSIG, RRType.DNSKEY):
            continue
        rrsets.setdefault(record.key, []).append(record)
    signatures = [sign_rrset(key, rrset) for rrset in rrsets.values()]
    zone.records.extend(signatures)
    zone.records.append(dnskey_record(zone.origin, key.key_tag))
    zone.signed = True
    zone.key_tag = key.key_tag
    return zone


def validate_rrset(
    key: ZoneSigningKey,
    records: list[ResourceRecord],
    rrsigs: list[ResourceRecord],
) -> bool:
    """Check that an rrset carries a valid RRSIG under ``key``.

    Returns True when a covering RRSIG with a matching digest exists.  A
    validating resolver treats a False result for a signed zone as bogus and
    refuses to use (or cache) the records.
    """
    if not records:
        return False
    covered_type = records[0].rtype
    expected = _rrset_digest(key, records)
    for rrsig in rrsigs:
        if rrsig.rtype is not RRType.RRSIG:
            continue
        covered, key_tag, signature_hex = rrsig.data
        if covered == covered_type and key_tag == key.key_tag and signature_hex == expected:
            return True
    return False
