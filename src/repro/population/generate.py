"""Pure fleet generation: ``(spec, seed) -> FleetManifest``.

Each generated attribute draws from its **own named stream** — the
population analogue of :meth:`repro.netsim.simulator.Simulator.
spawn_named_rng` — seeded as ``default_rng((seed, *name))``.  Streams are
pure functions of ``(seed, name)``, so generation is deterministic *and*
order-independent: adding a new attribute (or a noise layer) never shifts
the draws of existing ones, and two fleets generated attribute-by-attribute
or client-by-client come out identical.

Degenerate specs consume **no randomness at all**: a single-entry client
mix assigns the type without a draw, ``poll_jitter == 0`` pins every
multiplier to exactly ``1.0``, and a static churn spec pins every join to
``t = 0`` — which is what lets a zero-noise single-client fleet reproduce
the single-victim golden scenario bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.population.spec import NoiseLayer, PopulationSpec

#: Leaves are clamped to at least this long after the client's own join, so
#: a churned client always boots before it stops.
MIN_LIFETIME = 64.0


def _stream(seed: int, name: str) -> np.random.Generator:
    """The named generation stream for one attribute."""
    return np.random.default_rng((seed, *f"population:{name}".encode("utf-8")))


@dataclass(frozen=True)
class ClientManifest:
    """One concrete client realised from a spec."""

    index: int
    client_type: str
    poll_multiplier: float
    initial_clock_offset: float
    join_time: float
    leave_time: Optional[float]
    link_profile: str
    fault_regime: str

    def to_document(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "client_type": self.client_type,
            "poll_multiplier": self.poll_multiplier,
            "initial_clock_offset": self.initial_clock_offset,
            "join_time": self.join_time,
            "leave_time": self.leave_time,
            "link_profile": self.link_profile,
            "fault_regime": self.fault_regime,
        }


@dataclass(frozen=True)
class FleetManifest:
    """The realised fleet: what :mod:`repro.population.fleet` simulates."""

    seed: int
    spec_digest: str
    clients: tuple[ClientManifest, ...]

    @property
    def size(self) -> int:
        return len(self.clients)

    def type_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for client in self.clients:
            counts[client.client_type] = counts.get(client.client_type, 0) + 1
        return counts


def _draw_mix(
    mix: dict[str, float], n: int, stream_seed: int, stream_name: str
) -> list[str]:
    """Assign each of ``n`` clients a category from a weighted mix.

    A single-entry mix assigns directly (no stream consumed), keeping
    degenerate specs draw-free.
    """
    names = list(mix)
    if len(names) == 1:
        return [names[0]] * n
    weights = np.asarray([mix[name] for name in names], dtype=float)
    weights = weights / weights.sum()
    picks = _stream(stream_seed, stream_name).choice(len(names), size=n, p=weights)
    return [names[int(pick)] for pick in picks]


def _noise_draws(layer: NoiseLayer, ordinal: int, seed: int, n: int) -> np.ndarray:
    stream = _stream(seed, f"noise:{layer.attribute}:{ordinal}")
    if layer.kind == "uniform":
        return stream.uniform(-layer.scale, layer.scale, size=n)
    if layer.kind == "normal":
        return stream.normal(0.0, layer.scale, size=n)
    # lognormal: returned as exp(N(0, scale)) - 1 so that "no noise" is 0,
    # matching the additive convention of the other kinds; the poll path
    # re-centres it multiplicatively below.
    return np.exp(stream.normal(0.0, layer.scale, size=n)) - 1.0


def generate_fleet(spec: PopulationSpec, seed: int) -> FleetManifest:
    """Realise ``spec`` into concrete per-client manifests, deterministically."""
    n = spec.size
    types = _draw_mix(spec.effective_client_mix(), n, seed, "client_type")
    links = _draw_mix(dict(spec.link_mix), n, seed, "link_profile")
    faults = _draw_mix(dict(spec.fault_mix), n, seed, "fault_regime")

    if spec.poll_jitter == 0.0:
        multipliers = np.ones(n)
    else:
        multipliers = _stream(seed, "poll_interval").uniform(
            1.0 - spec.poll_jitter, 1.0 + spec.poll_jitter, size=n
        )
    offsets = np.zeros(n)

    churn = spec.churn
    join_times = np.zeros(n)
    if churn.late_join_fraction > 0.0:
        join_stream = _stream(seed, "churn_join")
        late = join_stream.uniform(size=n) < churn.late_join_fraction
        join_times = np.where(
            late, join_stream.uniform(0.0, churn.join_window, size=n), 0.0
        )
    leave_times: Optional[np.ndarray] = None
    if churn.leave_fraction > 0.0:
        leave_stream = _stream(seed, "churn_leave")
        leaves = leave_stream.uniform(size=n) < churn.leave_fraction
        raw = churn.leave_after + leave_stream.uniform(
            0.0, churn.leave_window, size=n
        )
        leave_times = np.where(leaves, raw, np.nan)

    for ordinal, layer in enumerate(spec.noise_layers):
        if layer.scale == 0.0:
            continue
        draws = _noise_draws(layer, ordinal, seed, n)
        if layer.attribute == "poll_interval":
            multipliers = np.maximum(0.05, multipliers * (1.0 + draws))
        elif layer.attribute == "initial_clock_offset":
            offsets = offsets + draws
        else:  # join_time
            join_times = np.maximum(0.0, join_times + draws)

    clients = []
    for index in range(n):
        join = float(join_times[index])
        leave: Optional[float] = None
        if leave_times is not None and not np.isnan(leave_times[index]):
            leave = max(float(leave_times[index]), join + MIN_LIFETIME)
        clients.append(
            ClientManifest(
                index=index,
                client_type=types[index],
                poll_multiplier=float(multipliers[index]),
                initial_clock_offset=float(offsets[index]),
                join_time=join,
                leave_time=leave,
                link_profile=links[index],
                fault_regime=faults[index],
            )
        )
    return FleetManifest(
        seed=seed, spec_digest=spec.digest(), clients=tuple(clients)
    )


__all__ = ["ClientManifest", "FleetManifest", "MIN_LIFETIME", "generate_fleet"]
