"""Exception hierarchy for the NTP substrate.

:class:`NTPPacketError` deliberately subclasses :class:`ValueError`: the seed
implementation raised bare ``ValueError`` from :meth:`NTPPacket.decode`, and
every receive path catches it to drop malformed datagrams.  Subclassing keeps
those semantics while giving callers a typed error to catch explicitly (and
guarantees a truncated buffer can never surface as a raw ``struct.error``).
"""

from __future__ import annotations


class NTPError(Exception):
    """Base class for all NTP errors."""


class NTPPacketError(NTPError, ValueError):
    """An NTP packet could not be decoded (truncated or malformed)."""
