"""The off-path attacker's resources.

The attacker owns:

* a *querying host* from which it sends its own legitimate-looking traffic
  (DNS queries to learn response templates and sample IPIDs, NTP queries to
  probe rate limiting or read a victim's reference id),
* a pool of routable addresses it controls, on which it can stand up
  malicious NTP servers whose clocks carry the desired time shift, and
* the ability to *inject* packets with arbitrary (spoofed) source addresses
  into the network.

What the attacker explicitly does **not** have is visibility into traffic
between other hosts: it never holds a packet capture.  Everything it learns,
it learns from packets addressed to hosts it owns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.netsim.addresses import address_range
from repro.netsim.host import Host
from repro.netsim.network import Network
from repro.netsim.packet import IPv4Packet
from repro.netsim.simulator import Simulator
from repro.ntp.server import NTPServer

#: Time shift applied by the malicious NTP servers in the paper's lab runs.
DEFAULT_TIME_SHIFT = -500.0


@dataclass
class AttackerResources:
    """Static description of what the attacker controls."""

    query_address: str = "66.0.0.1"
    address_pool_start: str = "66.6.6.1"
    address_pool_size: int = 100
    time_shift: float = DEFAULT_TIME_SHIFT
    malicious_ntp_servers: int = 4


@dataclass(slots=True)
class AttackerStats:
    """Counters describing the attack volume (the paper keeps it low).

    Slotted: the spoofing loops bump these once per crafted packet.
    """

    packets_injected: int = 0
    spoofed_fragments_sent: int = 0
    spoofed_ntp_queries_sent: int = 0
    icmp_errors_sent: int = 0
    own_queries_sent: int = 0


class Attacker:
    """An off-path attacker attached to a simulated network."""

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        resources: Optional[AttackerResources] = None,
    ) -> None:
        self.simulator = simulator
        self.network = network
        self.resources = resources or AttackerResources()
        self.stats = AttackerStats()
        self.query_host: Host = network.add_host(
            "attacker-query", self.resources.query_address
        )
        self.address_pool: list[str] = address_range(
            self.resources.address_pool_start, self.resources.address_pool_size
        )
        self.ntp_servers: dict[str, NTPServer] = {}
        for address in self.address_pool[: self.resources.malicious_ntp_servers]:
            host = network.add_host(f"attacker-ntp-{address}", address)
            self.ntp_servers[address] = NTPServer.attacker_server(
                host, simulator, time_shift=self.resources.time_shift
            )

    # ------------------------------------------------------------ addresses
    @property
    def controlled_addresses(self) -> set[str]:
        """Every address the attacker controls (pool + querying host)."""
        return set(self.address_pool) | {self.query_host.ip}

    def ntp_server_addresses(self) -> list[str]:
        """Addresses running a malicious NTP server right now."""
        return list(self.ntp_servers)

    def add_ntp_server(self, address: str) -> NTPServer:
        """Stand up an additional malicious NTP server on a pool address."""
        if address in self.ntp_servers:
            return self.ntp_servers[address]
        if address not in self.address_pool:
            raise ValueError(f"{address} is not in the attacker's address pool")
        host = self.network.add_host(f"attacker-ntp-{address}", address)
        server = NTPServer.attacker_server(
            host, self.simulator, time_shift=self.resources.time_shift
        )
        self.ntp_servers[address] = server
        return server

    def redirect_addresses(self, count: int) -> list[str]:
        """Addresses to place in poisoned DNS records (NTP servers first)."""
        servers = self.ntp_server_addresses()
        if count <= len(servers):
            return servers[:count]
        extra = [a for a in self.address_pool if a not in self.ntp_servers]
        return servers + extra[: count - len(servers)]

    # ------------------------------------------------------------ injection
    def inject(self, packet: IPv4Packet) -> None:
        """Put a (typically source-spoofed) packet on the wire."""
        self.stats.packets_injected += 1
        self.network.inject(packet)

    def inject_batch(self, packets: Iterable[IPv4Packet]) -> None:
        """Put a whole burst of spoofed packets on the wire as one call.

        Event-for-event equivalent to calling :meth:`inject` per packet in
        order (the network's batch path posts one delivery event per packet
        with identical sequence numbers); the attack loops use it to hand
        the simulator an entire spray — e.g. one spoofed fragment per
        candidate IPID — without per-packet call overhead.
        """
        packets = list(packets)
        self.stats.packets_injected += len(packets)
        self.network.inject_batch(packets)

    def inject_burst(self, packets: Iterable[IPv4Packet]) -> None:
        """Put a whole spray on the wire through the burst engine.

        Logically equivalent to :meth:`inject` per packet (order, counters,
        loss draws, delivered bytes), but the same-instant spray costs one
        heap entry and its UDP checksums verify in one vectorised pass —
        see :meth:`repro.netsim.network.Network.transmit_burst`.
        """
        packets = list(packets)
        self.stats.packets_injected += len(packets)
        self.network.inject_burst(packets)

    def owns(self, address: str) -> bool:
        """True when ``address`` is attacker controlled."""
        return address in self.controlled_addresses
