"""Population engine: declarative client fleets and landscape sweeps.

The paper evaluated its attacks against Internet-scale populations —
millions of NTP clients with heterogeneous software, network conditions
and churn — while the repo's original scenarios simulate one victim
against one pool per run.  This package closes that gap as a layer
between the netsim core and the experiment data plane:

* :mod:`repro.population.spec` — frozen, layered :class:`PopulationSpec`
  dataclasses (client-type market shares, poll jitter, churn, link and
  fault mixes, resolver topology, seeded noise layers), loadable from
  TOML or JSON.  Default market shares come from the paper marginals in
  :mod:`repro.measurement.population` — the single source of truth.
* :mod:`repro.population.generate` — a pure function of ``(spec, seed)``
  producing concrete per-client manifests from named RNG streams, so
  generation is deterministic and order-independent.
* :mod:`repro.population.fleet` — runs a whole fleet (thousands of
  clients sharing one network/heap) through the run-time attack, and a
  multi-tenant pack that lets :class:`~repro.experiments.runner.
  ExperimentRunner` batch several small fleets into one worker process.
* :mod:`repro.population.aggregate` — constant-memory streaming
  aggregation (success counts, fixed-bin shift histograms, per-type
  breakdowns) folded into run-store records.
* :mod:`repro.population.landscape` — sweeps attack success over
  population-mix axes into ≥3×3 probability grids through
  ``run_stored``, rendered by :func:`repro.measurement.report.
  landscape_report`.
* :mod:`repro.population.chaos` — declarative fleet-scale fault
  orchestration: :class:`ChaosPlan` correlation groups + phased regimes
  compile purely into per-link fault schedules, and
  :func:`run_chaos_campaign` drives resumable long-horizon campaigns
  through the durable run store.
"""

from repro.population.aggregate import FixedBinHistogram, StreamingAggregate
from repro.population.generate import ClientManifest, FleetManifest, generate_fleet
from repro.population.spec import (
    BUILTIN_LINK_PROFILES,
    ChurnSpec,
    FaultRegimeSpec,
    LinkProfileSpec,
    NoiseLayer,
    PopulationSpec,
    ResolverTopology,
    load_spec,
)

#: Chaos names are exported lazily: importing them eagerly would make
#: ``python -m repro.population.chaos`` re-execute the module runpy is
#: about to run (the double-import RuntimeWarning).
_CHAOS_EXPORTS = (
    "CampaignHorizon",
    "ChaosPhase",
    "ChaosPlan",
    "CorrelationGroup",
    "compile_chaos",
    "load_chaos_plan",
    "resume_chaos_campaign",
    "run_chaos_campaign",
)


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from repro.population import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BUILTIN_LINK_PROFILES",
    "CampaignHorizon",
    "ChaosPhase",
    "ChaosPlan",
    "ChurnSpec",
    "ClientManifest",
    "CorrelationGroup",
    "FaultRegimeSpec",
    "FixedBinHistogram",
    "FleetManifest",
    "LinkProfileSpec",
    "NoiseLayer",
    "PopulationSpec",
    "ResolverTopology",
    "StreamingAggregate",
    "compile_chaos",
    "generate_fleet",
    "load_chaos_plan",
    "load_spec",
    "resume_chaos_campaign",
    "run_chaos_campaign",
]
