"""Microbenchmarks for the netsim fast path: the speedup is measured, not asserted.

Three families of numbers:

* **Event loop** — the fast-path simulator against ``SeedSimulator``, a
  verbatim copy of the seed implementation (``order=True`` dataclass events
  on the heap).  The headline workload is delivery-shaped, because packet
  delivery dominates real experiments: the seed scheduled a fresh closure
  with an f-string label per packet, the fast path posts a bound method plus
  argument (:meth:`repro.netsim.simulator.Simulator.post`).  Two further
  workloads (plain schedule/drain, self-rescheduling timer chains) are
  reported for context.
* **Packets/sec** — full UDP round through the current stack: encode,
  checksum, transmit, deliver, decode.
* **DNS codec ops/sec** — encode/decode of a pool-style response.

``run_micro_benchmarks()`` returns everything as a dict so
``benchmarks/run_benchmarks.py`` can persist it to ``BENCH_netsim.json``.
The pytest gate asserts the ≥3× event-loop speedup target from the fast-path
issue.
"""

from __future__ import annotations

import gc
import heapq
import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.netsim.simulator import Simulator

# --------------------------------------------------------------------------
# Verbatim copy of the seed event loop (git fc48653, src/repro/netsim/
# simulator.py) so the speedup is measured against the real baseline, not a
# strawman.  Only the RNG plumbing is omitted — no workload here draws
# random numbers.
# --------------------------------------------------------------------------


@dataclass(order=True)
class SeedEvent:
    """The seed's heap entry: an order=True dataclass compared in Python."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class SeedSimulator:
    """The seed's event loop, kept bit-for-bit for comparison benchmarks."""

    def __init__(self) -> None:
        self._queue: list[SeedEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback, label: str = "") -> SeedEvent:
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(self, when: float, callback, label: str = "") -> SeedEvent:
        if when < self._now:
            raise ValueError(f"cannot schedule at {when} (now is {self._now})")
        event = SeedEvent(when, next(self._sequence), callback, label)
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> Optional[SeedEvent]:
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self.events_processed += 1
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                break
            if self.step() is not None:
                processed += 1
        if until is not None and not self._queue:
            self._now = max(self._now, until)
        return processed


# ------------------------------------------------------------------ workloads
class _Sink:
    """Stand-in for a Host: the delivery callback target."""

    __slots__ = ("received",)

    def __init__(self) -> None:
        self.received = 0

    def receive(self, packet) -> None:
        self.received += 1


#: Events per timed run.  Large enough to swamp timer resolution, small
#: enough that the whole suite stays in seconds.
EVENTS = 120_000
_DELAYS = [float(i % 97) * 0.001 for i in range(EVENTS)]


@contextmanager
def _no_gc():
    """Disable the cyclic GC inside timed regions.

    Both implementations allocate ~one GC-tracked object per event, so a
    generational collection landing inside one timed run and not the other
    swamps the comparison with noise (observed: ±20% on a loaded box).
    """
    enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if enabled:
            gc.enable()


def _best_of(func, rounds: int = 5) -> float:
    """Best observed rate over ``rounds`` runs (noise-robust maximum)."""
    return max(func() for _ in range(rounds))


def _seed_delivery_events_per_sec() -> float:
    """The seed's per-delivery scheduling: fresh closure + f-string label."""
    sim = SeedSimulator()
    sink = _Sink()
    schedule = sim.schedule
    src, dst = "203.0.113.7", "192.0.2.53"
    with _no_gc():
        started = time.perf_counter()
        for delay in _DELAYS:
            packet = delay  # payload stand-in; a real packet changes both sides equally
            schedule(delay, lambda p=packet: sink.receive(p), label=f"deliver {src}->{dst}")
        sim.run()
        elapsed = time.perf_counter() - started
    assert sink.received == EVENTS
    return EVENTS / elapsed


def _fast_delivery_events_per_sec() -> float:
    """The fast path's per-delivery scheduling: post(bound method, arg)."""
    sim = Simulator(seed=0)
    sink = _Sink()
    post = sim.post
    with _no_gc():
        started = time.perf_counter()
        for delay in _DELAYS:
            post(delay, sink.receive, delay)
        sim.run()
        elapsed = time.perf_counter() - started
    assert sink.received == EVENTS
    return EVENTS / elapsed


def _schedule_drain_events_per_sec(make_simulator) -> float:
    """Plain cancellable schedule of N events, then drain."""
    sim = make_simulator()
    callback = lambda: None  # noqa: E731 - intentionally minimal
    schedule = sim.schedule
    with _no_gc():
        started = time.perf_counter()
        for delay in _DELAYS:
            schedule(delay, callback)
        sim.run()
        return EVENTS / (time.perf_counter() - started)


def _timer_chain_events_per_sec(sim, schedule, timers: int = 10_000) -> float:
    """Self-rescheduling timers: the classic steady-state DES workload."""
    remaining = [EVENTS]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            schedule(1.0, tick)

    with _no_gc():
        started = time.perf_counter()
        for index in range(timers):
            schedule(0.001 * index, tick)
        sim.run()
        return EVENTS / (time.perf_counter() - started)


def event_loop_comparison(rounds: int = 5) -> dict:
    """All event-loop workloads, seed vs fast path, with speedup ratios."""
    seed_delivery = _best_of(_seed_delivery_events_per_sec, rounds)
    fast_delivery = _best_of(_fast_delivery_events_per_sec, rounds)
    seed_drain = _best_of(lambda: _schedule_drain_events_per_sec(SeedSimulator), rounds)
    fast_drain = _best_of(
        lambda: _schedule_drain_events_per_sec(lambda: Simulator(seed=0)), rounds
    )

    def seed_timer() -> float:
        sim = SeedSimulator()
        return _timer_chain_events_per_sec(sim, sim.schedule)

    def fast_timer() -> float:
        sim = Simulator(seed=0)
        return _timer_chain_events_per_sec(sim, sim.post)

    seed_chain = _best_of(seed_timer, rounds)
    fast_chain = _best_of(fast_timer, rounds)
    return {
        "events": EVENTS,
        "delivery": {
            "seed_events_per_sec": round(seed_delivery),
            "fast_events_per_sec": round(fast_delivery),
            "speedup": round(fast_delivery / seed_delivery, 2),
        },
        "schedule_drain": {
            "seed_events_per_sec": round(seed_drain),
            "fast_events_per_sec": round(fast_drain),
            "speedup": round(fast_drain / seed_drain, 2),
        },
        "timer_chain": {
            "seed_events_per_sec": round(seed_chain),
            "fast_events_per_sec": round(fast_chain),
            "speedup": round(fast_chain / seed_chain, 2),
        },
    }


# ------------------------------------------------------------------- packets
def packets_per_sec(count: int = 20_000) -> float:
    """Full UDP rounds through the current stack (encode→deliver→decode)."""
    from repro.netsim.network import Network
    from repro.netsim.udp import UDPDatagram

    sim = Simulator(seed=0)
    network = Network(sim)
    sender = network.add_host("sender", "192.0.2.1")
    receiver = network.add_host("receiver", "192.0.2.2")
    received = []
    receiver.bind(4242, lambda payload, ip, port: received.append(payload))
    payload = b"x" * 48
    started = time.perf_counter()
    for _ in range(count):
        sender.send_udp("192.0.2.2", UDPDatagram(5353, 4242, payload))
        sim.run()
    elapsed = time.perf_counter() - started
    assert len(received) == count
    return count / elapsed


# ------------------------------------------------------------------ pipeline
def pipeline_events_per_sec(count: int = 30_000, trusted: bool = False) -> float:
    """Dispatch-path throughput on the compiled delivery pipeline.

    Measures exactly the transmit → compiled pipeline → handler chain the
    Table II hot loop exercises: per packet one fast-constructed
    ``IPv4Packet``, one ``Network.transmit`` (pipeline-cache hit + heap
    push) and one flat delivery (defrag bookkeeping, checksum verify, port
    demux, handler call).  Payload encode happens once outside the timed
    region — this is the *dispatch* gate, the codec gates are separate.

    With ``trusted=True`` the link uses the opt-in trusted profile
    (checksum verify and unfragmented defrag bookkeeping skipped),
    quantifying what a trust-profiled deployment buys.
    """
    from repro.netsim.datapath import LinkProfile
    from repro.netsim.network import Link, Network
    from repro.netsim.packet import IPv4Packet
    from repro.netsim.udp import UDPDatagram, encode_udp

    sim = Simulator(seed=0)
    network = Network(sim)
    src, dst = "192.0.2.1", "192.0.2.2"
    network.add_host("sender", src)
    receiver = network.add_host("receiver", dst)
    if trusted:
        network.set_link(src, dst, Link(latency=0.01, profile=LinkProfile.trusted()))
    received = [0]

    def on_datagram(payload: bytes, ip: str, port: int) -> None:
        received[0] += 1

    receiver.bind(4242, on_datagram)
    payload = encode_udp(src, dst, UDPDatagram(5353, 4242, b"x" * 48))
    transmit = network.transmit
    udp = IPv4Packet.udp
    with _no_gc():
        started = time.perf_counter()
        for index in range(count):
            transmit(udp(src, dst, payload, index & 0xFFFF))
        sim.run()
        elapsed = time.perf_counter() - started
    assert received[0] == count
    return count / elapsed


# -------------------------------------------------------------------- bursts
def burst_events_per_sec(count: int = 30_000, burst: int = 64) -> float:
    """Coalesced delivery throughput through the burst engine.

    The flood shape of the paper's attacks: sprays of ``burst`` packets
    (one per destination host, same instant) handed to
    ``Network.transmit_burst`` — one heap entry per spray, a fused
    word-sum checksum pre-verify, pre-parsed dispatch into each host's
    datapath.  Packets are crafted once outside the timed region, so the
    number isolates the transmit+drain engine exactly as
    ``pipeline_events_per_sec`` does for the singular path.
    """
    from repro.netsim.network import Network
    from repro.netsim.packet import IPv4Packet
    from repro.netsim.udp import UDPDatagram, encode_udp

    sim = Simulator(seed=0)
    network = Network(sim)
    src = "192.0.2.1"
    network.add_host("sender", src)
    received = [0]

    def on_datagram(payload: bytes, ip: str, port: int) -> None:
        received[0] += 1

    packets = []
    for index in range(burst):
        dst = f"203.0.113.{index + 1}"
        receiver = network.add_host(f"receiver-{index}", dst)
        receiver.bind(4242, on_datagram)
        payload = encode_udp(src, dst, UDPDatagram(5353, 4242, b"x" * 48))
        packets.append(IPv4Packet.udp(src, dst, payload, index & 0xFFFF))

    rounds = max(1, count // burst)
    transmit_burst = network.transmit_burst
    run = sim.run
    with _no_gc():
        started = time.perf_counter()
        for _ in range(rounds):
            transmit_burst(packets)
            run()
        elapsed = time.perf_counter() - started
    assert received[0] == rounds * burst
    return rounds * burst / elapsed


def limiter_burst_ops_per_sec(count: int = 256_000, burst: int = 64) -> float:
    """Bulk rate-limiter accounting: queries/sec through ``consume_burst``.

    One ``consume_burst(source, n, now)`` call per simulated flood burst —
    the closed-form drain fast-forward plus the flat accumulation loop —
    versus the per-query ``check`` tower it replaces (compare
    ``limiter_check_ops_per_sec``).
    """
    from repro.ntp.rate_limit import RateLimiter

    limiter = RateLimiter()
    consume_burst = limiter.consume_burst
    rounds = max(1, count // burst)
    now = 0.0
    started = time.perf_counter()
    for _ in range(rounds):
        now += 1.0
        consume_burst("198.51.100.7", burst, now)
    elapsed = time.perf_counter() - started
    assert limiter.queries_seen == rounds * burst
    return rounds * burst / elapsed


def limiter_check_ops_per_sec(count: int = 64_000) -> float:
    """The singular ``check`` rate, for the burst/singular comparison."""
    from repro.ntp.rate_limit import RateLimiter

    limiter = RateLimiter()
    check = limiter.check
    started = time.perf_counter()
    now = 0.0
    for index in range(count):
        if index & 63 == 0:
            now += 1.0
        check("198.51.100.7", now)
    elapsed = time.perf_counter() - started
    return count / elapsed


# ----------------------------------------------------------------- DNS codec
def _pool_response_bytes():
    from repro.dns.message import DNSMessage
    from repro.dns.records import a_record, ns_record

    query = DNSMessage.query("pool.ntp.org", txid=0x1234)
    response = query.make_response(
        answers=[
            a_record("pool.ntp.org", f"203.0.113.{i}", ttl=150) for i in range(1, 5)
        ]
    )
    response.authority.append(ns_record("pool.ntp.org", "ns1.pool.ntp.org"))
    response.additional.append(a_record("ns1.pool.ntp.org", "198.51.100.1", ttl=86400))
    return response, response.encode()


def dns_encode_ops_per_sec(count: int = 20_000) -> float:
    response, _wire = _pool_response_bytes()
    started = time.perf_counter()
    for _ in range(count):
        response.encode()
    return count / (time.perf_counter() - started)


def dns_decode_ops_per_sec(count: int = 20_000) -> float:
    """The victim-path decode rate: replayed payloads hit the decode cache.

    This is what resolvers and nameservers actually execute per packet
    (:meth:`DNSMessage.decode_cached`): an attacker replaying one response
    body under thousands of TXIDs, or many clients asking the same
    question, re-parse nothing.  The answer section is touched so the
    measured op includes section access, not just the cache lookup.
    """
    from repro.dns.message import DNSMessage

    _response, wire = _pool_response_bytes()
    started = time.perf_counter()
    for _ in range(count):
        message = DNSMessage.decode_cached(wire)
        message.answers
    return count / (time.perf_counter() - started)


def dns_decode_cold_ops_per_sec(count: int = 20_000) -> float:
    """Full parses with no payload reuse: every section materialised."""
    from repro.dns.message import DNSMessage

    _response, wire = _pool_response_bytes()
    started = time.perf_counter()
    for _ in range(count):
        message = DNSMessage.decode(wire)
        message.answers
        message.authority
        message.additional
    return count / (time.perf_counter() - started)


# ----------------------------------------------------------------- NTP codec
def ntp_codec_ops_per_sec(count: int = 20_000) -> tuple[float, float]:
    """Encode and decode rates for the 48-byte NTP packet."""
    from repro.ntp.packet import NTPPacket

    query = NTPPacket.client_query(1_700_000_000.125)
    response = NTPPacket.server_response(
        query, server_time=1_700_000_000.375, stratum=2, reference_id="203.0.113.9"
    )
    started = time.perf_counter()
    for _ in range(count):
        response.encode()
    encode_rate = count / (time.perf_counter() - started)
    wire = response.encode()
    started = time.perf_counter()
    for _ in range(count):
        NTPPacket.decode(wire)
    decode_rate = count / (time.perf_counter() - started)
    return encode_rate, decode_rate


def run_micro_benchmarks(rounds: int = 5) -> dict:
    """Run the whole microbenchmark suite; used by run_benchmarks.py.

    Every metric is a best-of-``rounds`` maximum: these numbers feed the
    20% regression gate, and a single CPU-contention burst during a
    one-shot measurement reads as a regression that never happened.
    """
    ntp_pairs = [ntp_codec_ops_per_sec() for _ in range(rounds)]
    ntp_encode = max(pair[0] for pair in ntp_pairs)
    ntp_decode = max(pair[1] for pair in ntp_pairs)
    return {
        "event_loop": event_loop_comparison(rounds=rounds),
        "packets_per_sec": round(_best_of(packets_per_sec, rounds)),
        "pipeline_events_per_sec": round(
            _best_of(pipeline_events_per_sec, rounds)
        ),
        "pipeline_trusted_events_per_sec": round(
            _best_of(lambda: pipeline_events_per_sec(trusted=True), rounds)
        ),
        "burst_events_per_sec": round(_best_of(burst_events_per_sec, rounds)),
        "limiter_burst_ops_per_sec": round(
            _best_of(limiter_burst_ops_per_sec, rounds)
        ),
        "limiter_check_ops_per_sec": round(
            _best_of(limiter_check_ops_per_sec, rounds)
        ),
        "dns_encode_ops_per_sec": round(_best_of(dns_encode_ops_per_sec, rounds)),
        "dns_decode_ops_per_sec": round(_best_of(dns_decode_ops_per_sec, rounds)),
        "dns_decode_cold_ops_per_sec": round(
            _best_of(dns_decode_cold_ops_per_sec, rounds)
        ),
        "ntp_encode_ops_per_sec": round(ntp_encode),
        "ntp_decode_ops_per_sec": round(ntp_decode),
    }


# -------------------------------------------------------------------- pytest
def test_event_loop_speedup_at_least_3x():
    """The fast-path issue's acceptance gate, on the delivery workload."""
    comparison = event_loop_comparison(rounds=5)
    delivery = comparison["delivery"]
    print()
    print(
        f"event loop (delivery): seed {delivery['seed_events_per_sec']:,}/s, "
        f"fast {delivery['fast_events_per_sec']:,}/s, "
        f"speedup {delivery['speedup']}x"
    )
    print(f"schedule/drain: {comparison['schedule_drain']}")
    print(f"timer chain:    {comparison['timer_chain']}")
    assert delivery["speedup"] >= 3.0, comparison


def test_packet_and_dns_throughput_sane():
    """Absolute floors, generous enough to be noise-proof on slow CI."""
    assert packets_per_sec(count=5_000) > 5_000
    assert dns_encode_ops_per_sec(count=5_000) > 5_000
    assert dns_decode_ops_per_sec(count=5_000) > 5_000
    assert dns_decode_cold_ops_per_sec(count=5_000) > 5_000


def test_pipeline_dispatch_floor():
    """Absolute floor for the compiled dispatch path (typical: ~275k/s).

    Deliberately far below the typical rate so the gate is noise-proof on
    slow CI; the 20%-regression gate in ``check_regression.py`` (against
    the committed ``pipeline_events_per_sec``) is the tight check.
    """
    assert pipeline_events_per_sec(count=10_000) > 100_000


def test_trusted_profile_not_slower_than_default():
    """The trusted link profile strictly removes per-packet work.

    Typical separation is ~1.3×; the asserted margin is small because both
    rates are measured back-to-back and only a gross inversion would
    indicate the trusted path regressed.
    """
    default_rate = _best_of(lambda: pipeline_events_per_sec(count=10_000), 3)
    trusted_rate = _best_of(
        lambda: pipeline_events_per_sec(count=10_000, trusted=True), 3
    )
    assert trusted_rate > default_rate * 1.05, (trusted_rate, default_rate)


def test_dns_decode_fast_path_at_least_3x_pr1_baseline():
    """The decode fast-path issue's acceptance gate.

    PR 1's committed baseline measured ~24k decode ops/s; the issue requires
    >= 3x on the victim path.  The asserted floor (72k) deliberately matches
    the issue text rather than the much higher typical cache-hit rate, so
    the gate stays noise-proof on slow CI.
    """
    assert dns_decode_ops_per_sec(count=10_000) >= 72_000


def test_burst_delivery_floor():
    """Absolute floor for the coalesced burst path (typical: ~450k/s).

    Noise-proof by design; the 20%-regression gate against the committed
    ``burst_events_per_sec`` is the tight check.
    """
    assert burst_events_per_sec(count=10_000) > 120_000


def test_burst_delivery_not_slower_than_singular_dispatch():
    """The burst engine must beat per-packet transmit on the spray shape.

    Both rates are measured back-to-back on the same workload scale, so
    only a gross inversion — the burst path regressing below the singular
    pipeline — fails this; typical separation is ≥1.3×.
    """
    singular = _best_of(lambda: pipeline_events_per_sec(count=10_000), 3)
    burst = _best_of(lambda: burst_events_per_sec(count=10_000), 3)
    assert burst > singular, (burst, singular)


def test_limiter_burst_floor():
    """consume_burst bulk accounting floor (typical: tens of millions/s)."""
    assert limiter_burst_ops_per_sec(count=64_000) > 2_000_000


def test_limiter_burst_faster_than_sequential_checks():
    """The whole point of consume_burst: cheaper than n check() calls."""
    sequential = _best_of(lambda: limiter_check_ops_per_sec(count=32_000), 3)
    bulk = _best_of(lambda: limiter_burst_ops_per_sec(count=32_000), 3)
    assert bulk > sequential * 2.0, (bulk, sequential)


if __name__ == "__main__":
    # ``make bench-burst``: just the burst-engine numbers, quickly.
    import json

    print(
        json.dumps(
            {
                "burst_events_per_sec": round(_best_of(burst_events_per_sec, 3)),
                "pipeline_events_per_sec": round(
                    _best_of(pipeline_events_per_sec, 3)
                ),
                "limiter_burst_ops_per_sec": round(
                    _best_of(limiter_burst_ops_per_sec, 3)
                ),
                "limiter_check_ops_per_sec": round(
                    _best_of(limiter_check_ops_per_sec, 3)
                ),
            },
            indent=2,
        )
    )
