"""A ready-made lab testbed mirroring the paper's evaluation setup.

Most experiments need the same cast of characters: a simulator, a network, a
synthetic ``pool.ntp.org`` population, the pool's authoritative nameserver, a
victim recursive resolver, an off-path attacker and one or more victim NTP
clients.  :class:`LabTestbed` wires those together with sensible defaults so
examples, tests and benchmarks stay short and consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Type

from repro.core.attacker import Attacker, AttackerResources
from repro.dns.nameserver import PoolNameserver
from repro.dns.resolver import RecursiveResolver, ResolverConfig
from repro.netsim.host import OSProfile
from repro.netsim.ipid import GlobalCounterIPID
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.ntp.chronos.client import ChronosClient, ChronosConfig
from repro.ntp.clients.base import BaseNTPClient, NTPClientConfig
from repro.ntp.pool import PoolPopulation, build_pool_population

#: Addresses used by the standard testbed.
NAMESERVER_IP = "198.51.100.10"
RESOLVER_IP = "192.0.2.53"
VICTIM_BASE_IP = "192.0.2.100"
POOL_BASE_IP = "203.0.113.1"


@dataclass
class TestbedConfig:
    """Parameters of the standard lab testbed."""

    # Not a test class, despite the name (silences pytest collection).
    __test__ = False

    seed: int = 42
    pool_size: int = 64
    pool_rate_limit_fraction: float = 1.0
    #: "random" reproduces the real pool's rotation; "fixed" gives the
    #: predictable response tail the fragmentation attack needs to succeed
    #: deterministically (see the rotation ablation benchmark).
    pool_rotation: str = "random"
    resolver_validates_dnssec: bool = False
    resolver_drops_fragments: bool = False
    attacker_time_shift: float = -500.0
    attacker_address_pool_size: int = 100
    attacker_ntp_servers: int = 4
    link_latency: float = 0.01


@dataclass
class LabTestbed:
    """The assembled testbed (build with :func:`build_testbed`)."""

    config: TestbedConfig
    simulator: Simulator
    network: Network
    pool: PoolPopulation
    pool_nameserver: PoolNameserver
    resolver: RecursiveResolver
    attacker: Attacker
    clients: list[BaseNTPClient] = field(default_factory=list)
    _next_victim_index: int = 0

    # ------------------------------------------------------------- clients
    def add_client(
        self,
        client_class: Type[BaseNTPClient],
        config: Optional[NTPClientConfig] = None,
        initial_clock_offset: float = 0.0,
        start: bool = False,
    ) -> BaseNTPClient:
        """Attach a victim NTP client of the given implementation model."""
        self._next_victim_index += 1
        ip_tail = 100 + self._next_victim_index
        host = self.network.add_host(
            f"victim-{self._next_victim_index}", f"192.0.2.{ip_tail}"
        )
        client = client_class(
            host,
            self.simulator,
            self.resolver.ip,
            config=config,
            initial_clock_offset=initial_clock_offset,
        )
        self.clients.append(client)
        if start:
            client.start()
        return client

    def add_chronos_client(
        self,
        config: Optional[ChronosConfig] = None,
        initial_clock_offset: float = 0.0,
    ) -> ChronosClient:
        """Attach a Chronos-enhanced client."""
        self._next_victim_index += 1
        ip_tail = 100 + self._next_victim_index
        host = self.network.add_host(
            f"chronos-{self._next_victim_index}", f"192.0.2.{ip_tail}"
        )
        return ChronosClient(
            host,
            self.simulator,
            self.resolver.ip,
            config=config,
            initial_clock_offset=initial_clock_offset,
        )

    # ----------------------------------------------------------- shortcuts
    def run_for(self, seconds: float) -> None:
        """Advance the simulation."""
        self.simulator.run_for(seconds)

    def resolver_poisoned(self, qname: str = "pool.ntp.org") -> bool:
        """Ground truth: does the resolver cache map ``qname`` to the attacker?"""
        return self.resolver.is_poisoned(qname, self.attacker.controlled_addresses)


def build_testbed(config: Optional[TestbedConfig] = None) -> LabTestbed:
    """Assemble the standard lab testbed."""
    config = config or TestbedConfig()
    simulator = Simulator(seed=config.seed)
    network = Network(simulator, default_latency=config.link_latency)

    pool = build_pool_population(
        simulator,
        network,
        size=config.pool_size,
        rate_limit_fraction=config.pool_rate_limit_fraction,
        base_address=POOL_BASE_IP,
    )
    nameserver_host = network.add_host(
        "pool-nameserver", NAMESERVER_IP, ipid_allocator=GlobalCounterIPID()
    )
    pool_nameserver = PoolNameserver(
        nameserver_host,
        pool.addresses,
        rotation=config.pool_rotation,
        rng=simulator.spawn_rng(),
    )

    resolver_profile = (
        OSProfile.fragment_filtering() if config.resolver_drops_fragments else OSProfile.linux()
    )
    resolver_host = network.add_host("resolver", RESOLVER_IP, profile=resolver_profile)
    resolver = RecursiveResolver(
        resolver_host,
        simulator,
        zone_map={"pool.ntp.org": NAMESERVER_IP},
        config=ResolverConfig(validate_dnssec=config.resolver_validates_dnssec),
    )

    attacker = Attacker(
        simulator,
        network,
        AttackerResources(
            time_shift=config.attacker_time_shift,
            address_pool_size=config.attacker_address_pool_size,
            malicious_ntp_servers=config.attacker_ntp_servers,
        ),
    )
    return LabTestbed(
        config=config,
        simulator=simulator,
        network=network,
        pool=pool,
        pool_nameserver=pool_nameserver,
        resolver=resolver,
        attacker=attacker,
    )
