"""Tests for the full Chronos client."""

import pytest

from repro.ntp.chronos.client import ChronosConfig
from repro.ntp.chronos.pool_generation import PoolGenerationConfig


def fast_chronos_config(**overrides) -> ChronosConfig:
    """A Chronos configuration with a compressed pool-generation period."""
    defaults = dict(
        pool_generation=PoolGenerationConfig(lookup_interval=300.0, total_lookups=6),
        servers_per_round=9,
        poll_interval=120.0,
    )
    defaults.update(overrides)
    return ChronosConfig(**defaults)


class TestHonestOperation:
    def test_pool_generation_then_polling(self, small_testbed):
        client = small_testbed.add_chronos_client(config=fast_chronos_config())
        client.start()
        small_testbed.run_for(6 * 300 + 600)
        assert client.pool()
        assert client.stats.rounds >= 1
        assert client.stats.samples_collected > 0

    def test_clock_stays_correct_with_honest_pool(self, small_testbed):
        client = small_testbed.add_chronos_client(
            config=fast_chronos_config(), initial_clock_offset=0.0
        )
        client.start()
        small_testbed.run_for(6 * 300 + 1200)
        assert abs(client.clock_error()) < 0.5

    def test_rounds_accepted_with_honest_servers(self, small_testbed):
        client = small_testbed.add_chronos_client(config=fast_chronos_config())
        client.start()
        small_testbed.run_for(6 * 300 + 1200)
        assert client.stats.accepted_rounds >= 1
        assert client.stats.panic_rounds == 0

    def test_early_polling_against_partial_pool(self, small_testbed):
        client = small_testbed.add_chronos_client(config=fast_chronos_config())
        client.start(start_polling_after=400.0)
        small_testbed.run_for(1000)
        assert client.stats.rounds >= 1


class TestUnderAttack:
    def test_minority_attacker_servers_ignored(self, small_testbed):
        """Even if some attacker servers sneak into the pool, Chronos holds."""
        client = small_testbed.add_chronos_client(config=fast_chronos_config())
        client.start()
        small_testbed.run_for(6 * 300 + 100)
        # Force a small number of attacker addresses into the generated pool.
        for address in small_testbed.attacker.ntp_server_addresses()[:2]:
            client.pool_generator.state.addresses.add(address)
        small_testbed.run_for(1200)
        assert abs(client.clock_error()) < 0.5

    def test_attacker_majority_shifts_clock(self, small_testbed):
        """Ground truth for the attack: > 2/3 attacker pool => shifted clock."""
        for address in small_testbed.attacker.address_pool[:40]:
            if address not in small_testbed.attacker.ntp_servers:
                small_testbed.attacker.add_ntp_server(address)
        client = small_testbed.add_chronos_client(config=fast_chronos_config())
        client.start()
        small_testbed.run_for(6 * 300 + 100)
        client.pool_generator.state.addresses.clear()
        client.pool_generator.state.addresses.update(
            small_testbed.attacker.ntp_server_addresses()[:30]
        )
        small_testbed.run_for(2400)
        assert client.clock_error() == pytest.approx(-500.0, abs=5.0)
        assert client.stats.panic_rounds >= 1
