"""Removing NTP associations by abusing server-side rate limiting (section IV-B2).

NTP servers identify clients by source IP address only, so an off-path
attacker can impersonate the victim client towards any server simply by
spoofing the source address of mode 3 queries.  Sending such queries faster
than the server's rate-limit budget pushes the *victim* into the limited
state: the server stops answering the victim's own (slow, legitimate) polls,
the victim's reachability register for that server drains, and the client
eventually declares the association dead and goes back to DNS for a
replacement — straight into the poisoned cache.

Compared to a denial-of-service attack on the server this needs a trickle of
packets (one spoofed query every couple of seconds per server) and harms
nobody else: the server keeps serving all other clients.

The send loop is a simulator hot path — tens of thousands of spoofed
queries per campaign — so the packets are crafted without the generic
UDP-encode tower: the mode 3 wire payload and its checksum word sum are
memoised per burst instant (every active campaign fires at the same
simulated time), and the per-server checksum is assembled arithmetically
from cached address word sums.  The crafted bytes are pinned
byte-identical to ``encode_udp`` by property tests.

Two scheduling shapes are supported:

* **per-campaign** (default): each campaign reschedules its own
  fire-and-forget event, exactly like the original implementation — the
  golden fixed-seed runs use this shape, so event counts stay pinned.
* **batched rounds** (``batched=True``): one event per round hands the
  whole burst (one spoofed query per active campaign) to
  :meth:`~repro.netsim.network.Network.transmit_batch`.  For campaigns
  started together (the scenario-P1 shape, ``target_many`` at one
  instant) server-side outcomes match per-campaign scheduling exactly;
  a campaign started *mid-interval* is folded onto the shared round
  grid, so its first gap is shorter than ``query_interval`` — faster
  than per-campaign mode, never slower, but not query-for-query
  identical.  The event-loop shape also differs (one event per round
  instead of one per campaign), which is why batching is opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush
from typing import Optional

from repro.core.attacker import Attacker
from repro.netsim.packet import IPv4Packet
from repro.netsim.simulator import Simulator
from repro.netsim.udp import (
    UDP_HEADER_LEN,
    _UDP_HEADER,
    _address_word_sum,
    payload_word_sum,
)
from repro.ntp.packet import NTPPacket, NTP_PORT

#: UDP length field of a spoofed mode 3 query (8-byte header + 48-byte NTP).
_QUERY_UDP_LENGTH = UDP_HEADER_LEN + 48
_PACK_UDP_HEADER = _UDP_HEADER.pack


@dataclass(slots=True)
class RemovalCampaign:
    """State of the spoofing campaign against one (victim, server) pair."""

    server_ip: str
    victim_ip: str
    started_at: float
    queries_sent: int = 0
    active: bool = True
    #: Cached checksum word sum of ``server_ip`` (filled in by the remover
    #: so the per-query path skips even the memoised address lookup).
    server_sum: int = 0


@dataclass(slots=True)
class RemoverStats:
    """Aggregate counters for the association-removal activity."""

    campaigns_started: int = 0
    campaigns_stopped: int = 0
    spoofed_queries_sent: int = 0


class AssociationRemover:
    """Keeps chosen NTP servers rate-limiting the victim client.

    Parameters
    ----------
    query_interval:
        Interval between spoofed queries per server.  It must stay below the
        server's average-interval budget (8 s for the reference
        implementation) so the victim remains limited; the default of 2 s
        keeps the overall attack volume at a fraction of a packet per second
        per server.
    batched:
        Opt into batched rounds: one simulator event per interval sends the
        whole burst of spoofed queries (one per active campaign) through
        :meth:`~repro.netsim.network.Network.transmit_batch`.  Identical
        server-side effect for campaigns started together; staggered
        starts are folded onto the shared round grid (see module doc).
    """

    def __init__(
        self,
        attacker: Attacker,
        simulator: Simulator,
        victim_ip: str,
        query_interval: float = 2.0,
        batched: bool = False,
    ) -> None:
        if query_interval < 0:
            # Validated here because the send loop schedules with an inlined
            # Simulator.post, skipping post()'s own causality check.
            raise ValueError(f"query_interval must be >= 0, got {query_interval}")
        self.attacker = attacker
        self.simulator = simulator
        self.victim_ip = victim_ip
        self.query_interval = query_interval
        self.batched = batched
        self.stats = RemoverStats()
        self.campaigns: dict[str, RemovalCampaign] = {}
        #: Hot-loop handles resolved once (the send loop runs per query).
        self._network = attacker.network
        self._attacker_stats = attacker.stats
        #: Burst-instant memo: every active campaign fires at the same
        #: simulated time, so the mode 3 payload (which embeds the transmit
        #: timestamp) and its checksum word sum are computed once per burst.
        self._wire_time: Optional[float] = None
        self._wire: bytes = b""
        self._wire_sum = 0
        self._victim_sum = _address_word_sum(victim_ip)
        self._round_scheduled = False

    # -------------------------------------------------------------- control
    def target(self, server_ip: str) -> RemovalCampaign:
        """Start (or return the existing) campaign against one server."""
        if server_ip in self.campaigns and self.campaigns[server_ip].active:
            return self.campaigns[server_ip]
        campaign = RemovalCampaign(
            server_ip=server_ip,
            victim_ip=self.victim_ip,
            started_at=self.simulator.now,
            server_sum=_address_word_sum(server_ip),
        )
        self.campaigns[server_ip] = campaign
        self.stats.campaigns_started += 1
        if self.batched:
            self._send_round_for([campaign])
            if not self._round_scheduled:
                self._round_scheduled = True
                self.simulator.post(self.query_interval, self._send_round)
        else:
            self._send_spoofed_query(campaign)
        return campaign

    def target_many(self, server_ips: list[str]) -> list[RemovalCampaign]:
        """Start campaigns against a whole list of servers (scenario P1)."""
        return [self.target(ip) for ip in server_ips]

    def stop(self, server_ip: Optional[str] = None) -> None:
        """Stop one campaign, or all campaigns."""
        targets = [server_ip] if server_ip else list(self.campaigns)
        for ip in targets:
            campaign = self.campaigns.get(ip)
            if campaign is not None and campaign.active:
                campaign.active = False
                self.stats.campaigns_stopped += 1

    def active_targets(self) -> list[str]:
        """Servers currently being kept in the rate-limited state."""
        return [ip for ip, campaign in self.campaigns.items() if campaign.active]

    # ------------------------------------------------------------- spoofing
    def _query_payload(self, now: float) -> None:
        """Refresh the per-burst mode 3 wire payload memo for time ``now``."""
        wire = NTPPacket.client_query_wire(now)
        self._wire = wire
        self._wire_sum = payload_word_sum(wire)
        self._wire_time = now

    def _craft_query(self, campaign: RemovalCampaign) -> IPv4Packet:
        """One spoofed query packet, byte-identical to the encode_udp path.

        The checksum is assembled from the per-burst payload sum and the
        campaign's cached address sum; the fold deliberately inlines
        :func:`repro.netsim.udp.udp_checksum_from_sums` (the call frame is
        measurable over tens of thousands of queries).  Drift between this
        copy and the helper is caught by
        ``test_prop_batch_delivery.test_spoofed_query_crafting_matches_encode_udp``,
        which pins this method's output byte-identical to the generic
        ``encode_udp`` tower.
        """
        folded = (
            self._victim_sum
            + campaign.server_sum
            + 17
            + _QUERY_UDP_LENGTH
            + _QUERY_UDP_LENGTH
            + NTP_PORT
            + NTP_PORT
            + self._wire_sum
        ) % 0xFFFF
        checksum = ~(folded if folded else 0xFFFF) & 0xFFFF
        payload = (
            _PACK_UDP_HEADER(
                NTP_PORT, NTP_PORT, _QUERY_UDP_LENGTH, checksum if checksum else 0xFFFF
            )
            + self._wire
        )
        return IPv4Packet.udp(
            self.victim_ip, campaign.server_ip, payload, campaign.queries_sent & 0xFFFF
        )

    def _send_spoofed_query(self, campaign: RemovalCampaign) -> None:
        if not campaign.active:
            return
        simulator = self.simulator
        now = simulator._now  # slot read; this loop fires tens of thousands of times
        if now != self._wire_time:
            self._query_payload(now)
        packet = self._craft_query(campaign)
        campaign.queries_sent += 1
        self.stats.spoofed_queries_sent += 1
        stats = self._attacker_stats
        stats.spoofed_ntp_queries_sent += 1
        # Inlined Attacker.inject/Network.inject: the spoofed tag is set on
        # a metadata dict this loop just created, so setdefault is a plain
        # store, and the packet goes straight to transmit.
        stats.packets_injected += 1
        packet.metadata["spoofed"] = True
        self._network.transmit(packet)
        # Fire-and-forget rescheduling, an inlined Simulator.post: this loop
        # sends tens of thousands of queries per campaign and never cancels
        # one, so it pushes the anonymous heap entry directly — no closure,
        # no label, no call frame.
        sequence = simulator._sequence
        simulator._sequence = sequence + 1
        heappush(
            simulator._queue,
            (now + self.query_interval, sequence, self._send_spoofed_query, campaign),
        )

    # ------------------------------------------------------- batched rounds
    def _send_round(self) -> None:
        """One batched round: a burst of queries for every active campaign."""
        active = [c for c in self.campaigns.values() if c.active]
        if not active:
            self._round_scheduled = False
            return
        self._send_round_for(active)
        self.simulator.post(self.query_interval, self._send_round)

    def _send_round_for(self, campaigns: list[RemovalCampaign]) -> None:
        now = self.simulator.now
        if now != self._wire_time:
            self._query_payload(now)
        packets = []
        for campaign in campaigns:
            packets.append(self._craft_query(campaign))
            campaign.queries_sent += 1
        count = len(packets)
        self.stats.spoofed_queries_sent += count
        self.attacker.stats.spoofed_ntp_queries_sent += count
        self.attacker.inject_batch(packets)
