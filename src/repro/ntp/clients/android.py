"""Model of the Android platform SNTP client (``NtpTrustedTime``).

Android's built-in client performs a *fresh hostname resolution for every
synchronisation attempt* (the platform code always calls the SNTP client
with a hostname), so every NTP query is preceded by a DNS lookup unless a
local cache answers it.  That makes the client attackable whenever the
poisoned record is in the resolver's cache — effectively a recurring
boot-time attack (paper section V-A2).  The paper could not test physical
devices (all used the mobile network for time), so this model follows the
platform source code's behaviour.
"""

from __future__ import annotations

from repro.ntp.association import AssociationState
from repro.ntp.clients.base import BaseNTPClient, NTPClientConfig


class AndroidSNTPClient(BaseNTPClient):
    """The Android SNTP behavioural model (DNS lookup on every sync)."""

    client_name = "android"
    pool_usage_share = 0.140
    supports_boot_time_attack = True
    supports_runtime_attack = True

    @classmethod
    def default_config(cls) -> NTPClientConfig:
        return NTPClientConfig(
            pool_domains=["2.android.pool.ntp.org"],
            desired_associations=1,
            min_associations=1,
            max_associations=1,
            poll_interval=3600.0,
            unreachable_after=3,
            runtime_dns=True,
            sntp=True,
            step_threshold=0.0,
            step_delay=0.0,
            min_step_samples=1,
            boot_step_immediately=True,
            act_as_server=False,
        )

    def _poll_round(self) -> None:
        if not self.started:
            return
        # Android resolves the hostname before every sync; the association
        # set is rebuilt from whatever the resolver answers.
        for association in self.associations.values():
            if association.state is AssociationState.ACTIVE:
                association.state = AssociationState.REMOVED
        self.trigger_runtime_dns()
        self.simulator.schedule(1.0, self._poll_current, label=f"{self.name} sync")
        self._schedule_poll()

    def _poll_current(self) -> None:
        for association in self._poll_targets():
            self._send_poll(association)

    def trigger_runtime_dns(self) -> None:
        # Android's lookups are part of its normal sync cycle, so they do not
        # require the "fell below minimum" condition of the base class.
        for domain in self._runtime_lookup_domains():
            self.stats.runtime_dns_lookups += 1
            self.stub.resolve(
                domain, lambda result, d=domain: self._on_dns_result(result, d, boot=False)
            )
