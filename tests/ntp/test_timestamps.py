"""Tests for NTP timestamp conversion."""

import pytest

from repro.ntp.timestamps import NTP_UNIX_EPOCH_DELTA, NTPTimestamp


class TestConversion:
    def test_unix_round_trip(self):
        ts = NTPTimestamp.from_unix(1_600_000_000.125)
        assert ts.to_unix() == pytest.approx(1_600_000_000.125, abs=1e-6)

    def test_epoch_delta(self):
        assert NTPTimestamp.from_unix(0.0).seconds == NTP_UNIX_EPOCH_DELTA

    def test_fraction_resolution(self):
        ts = NTPTimestamp.from_unix(1.000000001)
        assert ts.to_unix() == pytest.approx(1.0, abs=1e-6)

    def test_zero(self):
        assert NTPTimestamp.zero().is_zero()
        assert not NTPTimestamp.from_unix(100.0).is_zero()


class TestWireFormat:
    def test_byte_round_trip(self):
        ts = NTPTimestamp.from_unix(1_700_000_000.5)
        assert NTPTimestamp.from_bytes(ts.to_bytes()) == ts

    def test_byte_length(self):
        assert len(NTPTimestamp.from_unix(1.0).to_bytes()) == 8

    def test_from_bytes_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            NTPTimestamp.from_bytes(b"\x00" * 7)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            NTPTimestamp(seconds=-1, fraction=0)
        with pytest.raises(ValueError):
            NTPTimestamp(seconds=0, fraction=1 << 32)


class TestArithmetic:
    def test_difference_in_seconds(self):
        a = NTPTimestamp.from_unix(1000.0)
        b = NTPTimestamp.from_unix(1500.25)
        assert b - a == pytest.approx(500.25, abs=1e-6)

    def test_negative_difference(self):
        a = NTPTimestamp.from_unix(1000.0)
        b = NTPTimestamp.from_unix(500.0)
        assert b - a == pytest.approx(-500.0, abs=1e-6)

    def test_ordering(self):
        assert NTPTimestamp.from_unix(1.0) < NTPTimestamp.from_unix(2.0)
