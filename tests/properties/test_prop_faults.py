"""Chaos property suite: the laws the fault-injection layer must obey.

Marked ``chaos`` (``make chaos`` runs just this suite; ``make test`` runs it
with everything else).  Four families of law:

* **Zero-fault bit-identity.**  Attaching an inert plan (every component
  zero-rate) leaves every observable — heap sequence numbers, loss draws,
  captures, per-host counters — bit-identical to a world that never heard
  of faults.  This is the graceful-degradation guarantee: fault support is
  free until a fault can actually fire.
* **Burst/singular equivalence.**  A faulted pair falls off the coalesced
  fast path onto the slow path, but ``transmit_burst`` must still be
  event-for-event equivalent to N singular ``transmit`` calls under the
  same seed — fault draws included.
* **Conservation.**  Under arbitrary seeded fault regimes: every packet
  transmitted is either fault-dropped or captured (duplicates add, never
  multiply); every capture-observed corrupted delivery is rejected by the
  *real* checksum verify as a derived ``udp_checksum_failures``; every
  delivery is either verified or rejected.  And the simulation terminates
  — fault channels never create self-amplifying traffic.
* **Strictness.**  The whole regime runs under ``Simulator(strict=True)``
  invariant guards without tripping them.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenarios import chaos_link_faults
from repro.netsim import (
    Corruption,
    Duplication,
    GilbertElliott,
    LatencySpike,
    Partition,
    ReorderJitter,
)
from repro.netsim.packet import IPv4Packet

from tests.properties.test_prop_batch_delivery import (
    HOST_IPS,
    build_packets,
    build_world,
    observable_state,
    sends,
)

pytestmark = pytest.mark.chaos


INERT_COMPONENTS = (
    Corruption(0.0),
    Duplication(0.0),
    ReorderJitter(0.0),
    ReorderJitter(0.5, max_delay=0.0),
    GilbertElliott(),  # defaults cannot drop: p_enter_bad=0, loss_good=0
    Partition(start=5.0, duration=0.0),
    LatencySpike(start=1.0, duration=3.0, extra=0.0),
)

#: A moderately nasty active plan used by the equivalence properties.
ACTIVE_COMPONENTS = (
    GilbertElliott(p_enter_bad=0.2, p_exit_bad=0.4, loss_bad=0.6),
    Corruption(0.25),
    Duplication(0.2, max_delay=0.003),
    ReorderJitter(0.25, max_delay=0.004),
    Partition(start=0.015, duration=0.01),
    LatencySpike(start=0.03, duration=0.01, extra=0.002),
)


class TestZeroFaultBitIdentity:
    @given(st.lists(sends, min_size=1, max_size=25), st.sampled_from([0.0, 0.35]))
    @settings(max_examples=40, deadline=None)
    def test_inert_plan_changes_nothing(self, plan, loss):
        sim_a, net_a, recv_a, cap_a = build_world(loss)
        sim_b, net_b, recv_b, cap_b = build_world(loss)
        composed = net_b.set_link_faults(
            HOST_IPS[0], HOST_IPS[1], *INERT_COMPONENTS
        )
        assert composed.is_inert
        for packet, spoof in build_packets(plan):
            copy = packet.copy()
            (net_a.inject if spoof else net_a.transmit)(packet)
            (net_b.inject if spoof else net_b.transmit)(copy)
        sim_a.run()
        sim_b.run()
        state_a = observable_state(sim_a, net_a, recv_a, cap_a, net_a.hosts)
        state_b = observable_state(sim_b, net_b, recv_b, cap_b, net_b.hosts)
        assert state_a == state_b
        assert net_b.fault_stats().packets == 0  # no channel ever built

    def test_inert_plan_keeps_compiled_fast_paths(self):
        _, network, _, _ = build_world(0.0)
        network.set_link_faults(HOST_IPS[0], HOST_IPS[1], *INERT_COMPONENTS)
        pipeline = network.pipeline_for(HOST_IPS[0], HOST_IPS[1])
        assert pipeline.faults is None
        assert pipeline.burst_parse


class TestFaultedBurstEquivalence:
    @given(st.lists(sends, min_size=1, max_size=25), st.sampled_from([0.0, 0.35]))
    @settings(max_examples=40, deadline=None)
    def test_burst_equivalent_to_singles_under_faults(self, plan, loss):
        def faulted_world():
            simulator, network, received, capture = build_world(loss)
            network.set_link_faults(HOST_IPS[0], HOST_IPS[1], *ACTIVE_COMPONENTS)
            network.set_link_faults(HOST_IPS[0], HOST_IPS[2], Corruption(0.3))
            return simulator, network, received, capture

        sim_a, net_a, recv_a, cap_a = faulted_world()
        for packet, spoof in build_packets(plan):
            if spoof:
                net_a.inject(packet)
            else:
                net_a.transmit(packet)
        sim_a.run()
        state_a = observable_state(sim_a, net_a, recv_a, cap_a, net_a.hosts)

        sim_b, net_b, recv_b, cap_b = faulted_world()
        pending: list[IPv4Packet] = []
        pending_spoof: bool | None = None

        def flush():
            nonlocal pending, pending_spoof
            if not pending:
                return
            if pending_spoof:
                net_b.inject_burst(pending)
            else:
                net_b.transmit_burst(pending)
            pending = []
            pending_spoof = None

        for packet, spoof in build_packets(plan):
            if pending_spoof is not None and spoof != pending_spoof:
                flush()
            pending.append(packet.copy())
            pending_spoof = spoof
        flush()
        sim_b.run()
        state_b = observable_state(sim_b, net_b, recv_b, cap_b, net_b.hosts)

        assert state_a == state_b
        assert (
            net_a.fault_stats() == net_b.fault_stats()
        )


class TestConservationLaws:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        corruption=st.sampled_from([0.0, 0.1, 0.5]),
        duplication=st.sampled_from([0.0, 0.15, 1.0]),
        p_enter_bad=st.sampled_from([0.0, 0.1, 0.4]),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_packet_accounted_for(
        self, seed, corruption, duplication, p_enter_bad
    ):
        # strict=True: the whole regime runs under the invariant guards.
        result = chaos_link_faults(
            seed=seed,
            packets=120,
            corruption=corruption,
            duplication=duplication,
            p_enter_bad=p_enter_bad,
            strict=True,
        )
        # Termination is implied by returning at all; the clock must have
        # reached at least the last send.
        assert result["final_time"] >= 119 * 0.25
        # Law 1: transmitted = fault-dropped + captured - duplicated.
        assert (
            result["captured"]
            == result["transmitted"] - result["fault_dropped"] + result["duplicated"]
        )
        # Law 2: corruption is caught by the real checksum verify — every
        # capture-observed corrupted delivery is a derived failure, and
        # nothing else fails.
        assert result["checksum_failures"] == result["corrupted_deliveries"]
        # Law 3: every delivery is either verified or rejected.
        assert (
            result["delivered"] + result["checksum_failures"] == result["captured"]
        )

    def test_determinism_same_seed_same_everything(self):
        a = chaos_link_faults(seed=42, packets=150)
        b = chaos_link_faults(seed=42, packets=150)
        assert a == b

    def test_certain_corruption_rejects_every_delivery(self):
        result = chaos_link_faults(
            seed=1,
            packets=80,
            corruption=1.0,
            duplication=0.0,
            p_enter_bad=0.0,
            reorder=0.0,
            partition_duration=0.0,
        )
        assert result["delivered"] == 0
        assert result["checksum_failures"] == 80
        assert result["captured"] == 80
        assert result["fault_dropped"] == 0

    def test_partition_heals(self):
        # Sends land every 0.25s; the partition blackholes [2.0, 4.0).
        result = chaos_link_faults(
            seed=0,
            packets=40,
            corruption=0.0,
            duplication=0.0,
            p_enter_bad=0.0,
            reorder=0.0,
            partition_start=2.0,
            partition_duration=2.0,
        )
        assert result["partition_dropped"] == 8  # sends at 2.0 .. 3.75
        assert result["delivered"] == 32


class TestTrustedFabricInteraction:
    def test_trusted_link_delivers_corruption(self):
        """Trust means trusting the fabric: no verify, damage delivered."""
        from repro.netsim import Network, PacketCapture, Simulator

        simulator = Simulator(seed=3, strict=True)
        network = Network(simulator)
        network.add_host("a", "10.0.0.1")
        receiver = network.add_host("b", "10.0.0.2")
        delivered = []
        receiver.bind(
            53, on_datagram=lambda payload, src, port: delivered.append(payload)
        )
        network.set_link_faults("10.0.0.1", "10.0.0.2", Corruption(1.0))
        network.trust_link("10.0.0.1", "10.0.0.2")  # must keep the faults
        capture = PacketCapture()
        network.attach_capture(capture)
        source = network.host("10.0.0.1").bind(0)
        for index in range(10):
            source.sendto(b"payload-%02d" % index, "10.0.0.2", 53)
        simulator.run()
        assert len(delivered) == 10
        assert receiver.stats.udp_checksum_failures == 0
        # Every delivery really was corrupted — and got through.
        assert all(
            captured.packet.metadata.get("corrupted") for captured in capture.packets
        )
        assert sorted(delivered) != sorted(
            b"payload-%02d" % index for index in range(10)
        )
