"""UDP checksum fixing for replaced second fragments (paper section III-3).

The UDP checksum of the whole datagram travels in the first fragment, which
the off-path attacker does not touch.  The receiver verifies the checksum
over the *reassembled* datagram, so a spoofed second fragment passes exactly
when its ones'-complement sum equals the sum of the fragment it replaces::

    sum1(f2') == sum1(f2)

With knowledge of the original second fragment ``f2`` (learnable by querying
the nameserver directly, for responses with a predictable tail) the attacker
computes the sum difference introduced by its modifications and cancels it by
adjusting an "unimportant" 16-bit word — in this implementation the low half
of a TTL field of a record the attacker itself placed in the fragment.
"""

from __future__ import annotations

from repro.netsim.checksum import ones_complement_sum, sub_ones_complement


def checksum_correction(original_fragment: bytes, modified_fragment: bytes) -> int:
    """The 16-bit value that must be subtracted from the modified fragment.

    Returns ``sum1(modified) - sum1(original)`` in ones'-complement
    arithmetic; subtracting this from any 16-bit word of the modified
    fragment makes the two sums equal.  Ones'-complement arithmetic has two
    representations of zero (0x0000 and 0xFFFF); the result is normalised to
    0x0000 so "no correction needed" is unambiguous.
    """
    correction = sub_ones_complement(
        ones_complement_sum(modified_fragment), ones_complement_sum(original_fragment)
    )
    return 0 if correction == 0xFFFF else correction


def apply_correction(fragment: bytes, offset: int, correction: int) -> bytes:
    """Subtract ``correction`` from the 16-bit word at ``offset``.

    ``offset`` must be even (16-bit aligned with respect to the datagram —
    fragment payloads always start on an 8-byte boundary, so alignment within
    the fragment equals alignment within the datagram) and inside the
    fragment.
    """
    if offset % 2 != 0:
        raise ValueError(f"correction offset must be 16-bit aligned, got {offset}")
    if not 0 <= offset <= len(fragment) - 2:
        raise ValueError(f"correction offset {offset} outside fragment")
    current = (fragment[offset] << 8) | fragment[offset + 1]
    adjusted = sub_ones_complement(current, correction)
    patched = bytearray(fragment)
    patched[offset] = adjusted >> 8
    patched[offset + 1] = adjusted & 0xFF
    return bytes(patched)


def craft_matching_fragment(
    original_fragment: bytes,
    desired_fragment: bytes,
    adjustable_offsets: list[int],
) -> bytes:
    """Return ``desired_fragment`` patched so its sum matches the original's.

    ``adjustable_offsets`` lists byte offsets (within the fragment) of 16-bit
    words whose value the attacker does not care about; the first usable one
    absorbs the correction.  Raises ``ValueError`` when the two fragments
    differ in length (fragment replacement must preserve the total datagram
    length, otherwise the UDP length check in the first fragment fails) or
    when no aligned adjustable word is available.
    """
    if len(original_fragment) != len(desired_fragment):
        raise ValueError(
            "replacement fragment must have the same length as the original "
            f"({len(desired_fragment)} != {len(original_fragment)})"
        )
    correction = checksum_correction(original_fragment, desired_fragment)
    if correction == 0:
        return bytes(desired_fragment)
    for offset in adjustable_offsets:
        if offset % 2 == 0 and 0 <= offset <= len(desired_fragment) - 2:
            return apply_correction(desired_fragment, offset, correction)
    raise ValueError("no 16-bit aligned adjustable word available for checksum fixing")


def sums_match(original_fragment: bytes, crafted_fragment: bytes) -> bool:
    """Verification helper: True when the two fragments have equivalent sums.

    Ones'-complement arithmetic has two representations of zero (0x0000 and
    0xFFFF) that behave identically under further addition, so a crafted
    fragment whose sum differs from the original's only by "negative zero"
    still leaves the overall UDP checksum valid.
    """
    first = ones_complement_sum(original_fragment)
    second = ones_complement_sum(crafted_fragment)
    return first == second or {first, second} == {0x0000, 0xFFFF}
