"""The lab-internal fabric scenario: trust changes speed, not outcomes.

``table2_trusted_fabric`` runs the fixed-seed Table II cell with
``LinkProfile.trusted()`` on every victim↔upstream link.  Trust only skips
per-packet verification work for well-formed traffic, so the scenario must
reproduce the golden run's results exactly — same attack duration, same
clock shift to the last bit, same event and packet counts.
"""

from __future__ import annotations

from repro.experiments import ExperimentRunner, RunSpec

from tests.integration.test_determinism import GOLDEN


class TestTrustedFabricScenario:
    def test_results_match_the_golden_run_bit_for_bit(self):
        outcome = ExperimentRunner(max_workers=1).run(
            [RunSpec.make("table2_trusted_fabric", client="ntpd", attack="P1", seed=5)]
        )[0]
        assert outcome.ok, outcome.error
        for key, expected in GOLDEN.items():
            assert outcome.result[key] == expected, (
                key,
                outcome.result[key],
                expected,
            )
        assert outcome.result["label"] == "ntpd+trusted-fabric"
