"""Tests for the report formatting helpers."""

from repro.measurement.report import format_percentage, format_table


class TestFormatPercentage:
    def test_basic(self):
        assert format_percentage(0.694) == "69.40%"

    def test_decimals(self):
        assert format_percentage(0.12345, decimals=1) == "12.3%"

    def test_zero_and_one(self):
        assert format_percentage(0.0) == "0.00%"
        assert format_percentage(1.0) == "100.00%"


class TestFormatTable:
    def test_contains_headers_rows_and_title(self):
        text = format_table(
            ["Client", "Duration"],
            [["ntpd", "17 min"], ["chrony", "57 min"]],
            title="Table II",
        )
        lines = text.splitlines()
        assert lines[0] == "Table II"
        assert "Client" in lines[1] and "Duration" in lines[1]
        assert any("ntpd" in line for line in lines)
        assert any("chrony" in line for line in lines)

    def test_columns_aligned(self):
        text = format_table(["a", "b"], [["xxxxx", "1"], ["y", "22"]])
        data_lines = text.splitlines()[2:]
        positions = {line.index(line.split()[-1]) for line in data_lines}
        assert len(positions) == 1

    def test_handles_non_string_cells(self):
        text = format_table(["n", "value"], [[1, 0.5], [2, None]])
        assert "None" in text and "0.5" in text


class TestSweepReport:
    MANIFEST = {
        "sweep_id": "s1",
        "name": "table2",
        "status": "complete",
        "created_at": "2026-08-08T00:00:00",
        "git_revision": "abc123",
    }

    def test_renders_manifest_and_runs(self):
        from repro.measurement.report import sweep_report

        records = [
            {
                "index": 0,
                "spec": {"scenario": "table2_runtime_attack", "params": []},
                "result": {"ok": True},
                "wall_time": 1.25,
                "error": None,
                "error_kind": None,
            },
            {
                "index": 1,
                "spec": {"scenario": "table2_runtime_attack", "params": []},
                "result": None,
                "wall_time": 0.5,
                "error": "worker process died (pool respawned)",
                "error_kind": "worker-crash",
            },
        ]
        text = sweep_report(self.MANIFEST, records)
        assert "sweep s1 (table2)" in text
        assert "status: complete" in text
        assert "2 recorded, 1 failed" in text
        assert "worker-crash" in text
        assert "1.250s" in text

    def test_later_records_win_and_loose_records_counted(self):
        from repro.measurement.report import sweep_report

        spec = {"scenario": "x", "params": []}
        records = [
            {"index": 0, "spec": spec, "error": "boom", "error_kind": "timeout"},
            {"index": 0, "spec": spec, "error": None, "error_kind": None},
            {"kind": "bench-sample", "metrics": {"m": 1.0}},
        ]
        text = sweep_report(self.MANIFEST, records)
        assert "1 recorded, 0 failed, 1 metric sample(s)" in text

    def test_empty_sweep_renders_header_only(self):
        from repro.measurement.report import sweep_report

        text = sweep_report(self.MANIFEST, [])
        assert "0 recorded" in text


class TestTrendReport:
    def test_history_summary_with_fresh_column(self):
        from repro.measurement.report import trend_report

        text = trend_report(
            {"a.metric": [100.0, 102.0, 98.0]}, fresh={"a.metric": 101.0}
        )
        assert "a.metric" in text
        assert "fresh (vs median)" in text
        assert "+1.0%" in text

    def test_history_only(self):
        from repro.measurement.report import trend_report

        text = trend_report({"a": [1.0, 2.0, 3.0]})
        assert "median" in text and "spread" in text
        assert "fresh" not in text
