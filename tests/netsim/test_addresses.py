"""Tests for IPv4 address helpers."""

import pytest

from repro.netsim.addresses import (
    IPv4Address,
    address_range,
    int_to_ip,
    ip_to_int,
    same_slash24,
)
from repro.netsim.errors import AddressError


class TestIpToInt:
    def test_round_trip(self):
        assert int_to_ip(ip_to_int("192.0.2.1")) == "192.0.2.1"

    def test_known_value(self):
        assert ip_to_int("0.0.0.1") == 1
        assert ip_to_int("1.0.0.0") == 1 << 24

    def test_extremes(self):
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
        assert ip_to_int("0.0.0.0") == 0

    def test_rejects_short_form(self):
        with pytest.raises(AddressError):
            ip_to_int("10.0.1")

    def test_rejects_large_octet(self):
        with pytest.raises(AddressError):
            ip_to_int("300.0.0.1")

    def test_rejects_non_numeric(self):
        with pytest.raises(AddressError):
            ip_to_int("a.b.c.d")


class TestIntToIp:
    def test_known_value(self):
        assert int_to_ip(0xC0000201) == "192.0.2.1"

    def test_rejects_out_of_range(self):
        with pytest.raises(AddressError):
            int_to_ip(1 << 32)
        with pytest.raises(AddressError):
            int_to_ip(-1)


class TestSameSlash24:
    def test_same_network(self):
        assert same_slash24("10.0.0.1", "10.0.0.200")

    def test_different_network(self):
        assert not same_slash24("10.0.0.1", "10.0.1.1")


class TestIPv4Address:
    def test_parse_and_str(self):
        address = IPv4Address.parse("203.0.113.7")
        assert str(address) == "203.0.113.7"

    def test_offset_wraps(self):
        address = IPv4Address.parse("255.255.255.255").offset(1)
        assert str(address) == "0.0.0.0"

    def test_ordering(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")

    def test_slash24(self):
        assert IPv4Address.parse("10.1.2.3").slash24 == IPv4Address.parse("10.1.2.99").slash24


class TestAddressRange:
    def test_length_and_contiguity(self):
        addresses = address_range("10.0.0.250", 10)
        assert len(addresses) == 10
        assert addresses[0] == "10.0.0.250"
        assert addresses[6] == "10.0.1.0"  # crosses the /24 boundary

    def test_unique(self):
        addresses = address_range("203.0.113.1", 100)
        assert len(set(addresses)) == 100
