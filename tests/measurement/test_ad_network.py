"""Tests for the ad-network resolver study (Table V)."""

from repro.measurement.ad_network import AdNetworkStudy, TEST_DOMAINS
from repro.measurement.population import (
    PAPER_AD_REGIONS,
    PAPER_DNSSEC_VALIDATION_RANGE,
    WebClientSpec,
    generate_web_clients,
)


def make_client(**overrides) -> WebClientSpec:
    defaults = dict(
        client_id=1,
        region="Europe",
        device="PC",
        dataset=1,
        uses_google_dns=False,
        accepts_fragment_sizes={68, 296, 580, 1280},
        validates_dnssec=False,
        completed_test=True,
        baseline_ok=True,
    )
    defaults.update(overrides)
    return WebClientSpec(**defaults)


class TestPerClientTests:
    def test_all_seven_domains_exercised(self):
        result = AdNetworkStudy.run_client_tests(make_client())
        assert set(result.loaded) == set(TEST_DOMAINS)

    def test_fragment_acceptance_reflected_in_image_loads(self):
        result = AdNetworkStudy.run_client_tests(make_client(accepts_fragment_sizes={1280}))
        assert result.loaded["fbig"] and not result.loaded["ftiny"]
        assert result.accepts_any_fragment and not result.accepts_tiny

    def test_validating_resolver_fails_sigfail_only(self):
        result = AdNetworkStudy.run_client_tests(make_client(validates_dnssec=True))
        assert not result.loaded["sigfail"] and result.loaded["sigright"]
        assert result.validates_dnssec

    def test_non_validating_resolver_loads_sigfail(self):
        result = AdNetworkStudy.run_client_tests(make_client(validates_dnssec=False))
        assert result.loaded["sigfail"]
        assert not result.validates_dnssec

    def test_incomplete_test_is_invalid(self):
        result = AdNetworkStudy.run_client_tests(make_client(completed_test=False))
        assert not result.valid

    def test_baseline_failure_is_invalid(self):
        result = AdNetworkStudy.run_client_tests(make_client(baseline_ok=False))
        assert not result.valid


class TestAggregation:
    def test_table5_shape(self):
        report = AdNetworkStudy(generate_web_clients()).run()
        assert report.valid_results > 5000
        assert report.discarded_results > 0
        for region, (count, tiny, any_) in PAPER_AD_REGIONS.items():
            row = report.row(region)
            assert abs(row.tiny_fraction - tiny) < 0.12
            assert abs(row.any_fraction - any_) < 0.08
        all_row = report.row("ALL")
        assert 0.55 < all_row.tiny_fraction < 0.72
        assert 0.82 < all_row.any_fraction < 0.93

    def test_without_google_row_has_higher_tiny_acceptance(self):
        report = AdNetworkStudy(generate_web_clients()).run()
        assert report.row("Without Google").tiny_fraction > report.row("ALL").tiny_fraction
        assert report.google_clients > 0

    def test_device_rows_present_and_similar(self):
        report = AdNetworkStudy(generate_web_clients()).run()
        pc = report.row("PC")
        mobile = report.row("Mobile,Tablet")
        assert pc.total + mobile.total == report.valid_results
        assert abs(pc.any_fraction - mobile.any_fraction) < 0.06

    def test_dnssec_validation_range(self):
        report = AdNetworkStudy(generate_web_clients()).run()
        low, high = report.dnssec_validation_range()
        assert PAPER_DNSSEC_VALIDATION_RANGE[0] - 0.06 <= low <= PAPER_DNSSEC_VALIDATION_RANGE[0] + 0.06
        assert PAPER_DNSSEC_VALIDATION_RANGE[1] - 0.06 <= high <= PAPER_DNSSEC_VALIDATION_RANGE[1] + 0.06

    def test_unknown_group_raises(self):
        report = AdNetworkStudy([]).run()
        try:
            report.row("Atlantis")
        except KeyError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("expected KeyError")
