"""Multi-client fleet simulation: one network, one heap, many victims.

:func:`run_fleet` realises a :class:`~repro.population.spec.PopulationSpec`
into a concrete fleet (via :func:`~repro.population.generate.generate_fleet`)
and runs the paper's run-time attack against **every** client concurrently
on a single :class:`~repro.netsim.simulator.Simulator` — thousands of
clients sharing one pool, one resolver and one event heap.  Results fold
into a constant-memory :class:`~repro.population.aggregate.
StreamingAggregate` instead of per-client payload lists (per-client detail
rows are attached only for small fleets).

Bit-identity contract: a zero-noise, zero-churn, single-``ntpd`` spec with
the Table II defaults issues exactly the same simulator/RNG call sequence
as the ``table2_runtime_attack`` scenario, so the fleet path reproduces the
golden single-victim results bit-for-bit (pinned by
``tests/population/test_fleet_golden.py``).

Client attachment mirrors :meth:`repro.testbed.LabTestbed.add_client` —
increment-first victim indexing, ``victim-<n>`` host names — but allocates
addresses arithmetically (``VICTIM_BASE_IP + index``) so fleets larger than
155 clients get valid dotted quads; the strings are identical in the
overlapping range.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import Any, Mapping, Optional, Sequence

from repro.core.run_time import RunTimeAttack, RunTimeScenario
from repro.netsim.addresses import int_to_ip, ip_to_int
from repro.netsim.faults import (
    Corruption,
    Duplication,
    FaultStats,
    GilbertElliott,
    LatencySpike,
    Partition,
    ReorderJitter,
)
from repro.netsim.network import Link
from repro.ntp.clients import CLIENT_REGISTRY
from repro.population.aggregate import StreamingAggregate
from repro.population.generate import ClientManifest, generate_fleet
from repro.population.spec import FaultRegimeSpec, PopulationSpec
from repro.testbed import RESOLVER_IP, VICTIM_BASE_IP, LabTestbed, TestbedConfig, build_testbed

_SCENARIOS = {
    "P1": RunTimeScenario.P1_KNOWN_SERVERS,
    "P2": RunTimeScenario.P2_REFID_DISCOVERY,
}


@lru_cache(maxsize=64)
def spec_from_json(text: str) -> PopulationSpec:
    """Parse (and cache) a canonical spec-JSON string.

    Worker processes receive specs as JSON run-spec parameters; a
    multi-tenant pack re-parsing the same landscape base spec for every
    tenant would waste the warmed caches, so the parse is memoised on the
    exact string.
    """
    return PopulationSpec.from_json(text)


def _fault_components(regime: FaultRegimeSpec) -> tuple:
    """Map one regime spec onto netsim fault components (inert ones drop).

    The windowed kinds (``partition``, ``latency_spike``) carry their own
    schedule and ignore ``probability``; the probabilistic kinds are inert
    at ``probability == 0``.  Returning ``()`` keeps the link untouched —
    the compiled fault-free fast paths, bit-identical.
    """
    kind = regime.kind
    if kind == "clean":
        return ()
    if kind == "partition":
        components: tuple = (Partition(regime.start, regime.duration),)
    elif kind == "latency_spike":
        components = (
            LatencySpike(
                regime.start, regime.duration, extra=regime.magnitude or 0.25
            ),
        )
    elif regime.probability == 0.0:
        return ()
    elif kind == "bursty_loss":
        components = (
            GilbertElliott(
                p_enter_bad=regime.probability,
                p_exit_bad=0.25,
                loss_bad=regime.magnitude or 0.8,
            ),
        )
    elif kind == "jitter":
        components = (
            ReorderJitter(regime.probability, max_delay=regime.magnitude or 0.2),
        )
    elif kind == "corruption":
        components = (Corruption(regime.probability),)
    else:
        components = (Duplication(regime.probability),)
    return tuple(c for c in components if c.active)


def _attach_client(
    testbed: LabTestbed, spec: PopulationSpec, manifest: ClientManifest
) -> Any:
    """Mirror ``LabTestbed.add_client`` with arithmetic address allocation."""
    client_class = CLIENT_REGISTRY[manifest.client_type]
    testbed._next_victim_index += 1
    index = testbed._next_victim_index
    ip = int_to_ip(ip_to_int(VICTIM_BASE_IP) + index)
    host = testbed.network.add_host(f"victim-{index}", ip)

    config = None
    if manifest.poll_multiplier != 1.0:
        default = client_class.default_config()
        config = replace(
            default, poll_interval=default.poll_interval * manifest.poll_multiplier
        )
    client = client_class(
        host,
        testbed.simulator,
        testbed.resolver.ip,
        config=config,
        initial_clock_offset=manifest.initial_clock_offset,
    )
    testbed.clients.append(client)

    profile = spec.link_profile_table()[manifest.link_profile]
    if profile.latency != testbed.config.link_latency or profile.loss:
        link = Link(latency=profile.latency, loss_probability=profile.loss)
        testbed.network.set_link(ip, RESOLVER_IP, link)
        for server_ip in testbed.pool.addresses:
            testbed.network.set_link(ip, server_ip, link)
    components = _fault_components(spec.fault_regime_table()[manifest.fault_regime])
    if components:
        testbed.network.set_link_faults(ip, RESOLVER_IP, *components)
        for server_ip in testbed.pool.addresses:
            testbed.network.set_link_faults(ip, server_ip, *components)
    return client


def run_fleet(
    spec: PopulationSpec,
    seed: int,
    detail_limit: int = 32,
    *,
    run_until: Optional[float] = None,
    link_schedules: Optional[Mapping[int, Any]] = None,
    group_of: Optional[Sequence[str]] = None,
) -> dict[str, Any]:
    """Run the run-time attack against every client of a generated fleet.

    Returns a JSON-safe document: fleet-level success counts, the
    streaming aggregate, network-wide fault counters, and simulator
    accounting.  Per-client detail rows (``clients``) are included only
    for fleets of at most ``detail_limit`` clients, keeping the payload
    constant-size at population scale.

    The keyword hooks are the chaos-campaign wiring
    (:mod:`repro.population.chaos`):

    * ``run_until`` — absolute simulator-clock cutoff; ``None`` keeps the
      exact original run length (warmup plus the full attack window),
      which is what the bit-identity contract pins.
    * ``link_schedules`` — ``{client index: FaultSchedule}``; each
      scheduled client's upstream links (resolver plus every pool server)
      get the schedule applied, composed on top of the client's own
      spec-level fault regime.  Unscheduled clients are untouched.
    * ``group_of`` — per-client correlation-group labels; when given the
      document gains a ``groups`` section with per-group success counts
      and per-group :class:`~repro.netsim.faults.FaultStats` summed over
      the group's directed link pairs.
    """
    fleet = generate_fleet(spec, seed)
    scenario_enum = _SCENARIOS[spec.attack]
    testbed = build_testbed(
        TestbedConfig(
            seed=seed,
            pool_size=spec.pool_size,
            pool_rate_limit_fraction=spec.pool_rate_limit_fraction,
            resolver_validates_dnssec=spec.resolver.validates_dnssec,
            resolver_drops_fragments=spec.resolver.drops_fragments,
        )
    )
    simulator = testbed.simulator

    clients = []
    for manifest in fleet.clients:
        client = _attach_client(testbed, spec, manifest)
        clients.append(client)
        schedule = link_schedules.get(manifest.index) if link_schedules else None
        if schedule is not None:
            base = _fault_components(
                spec.fault_regime_table()[manifest.fault_regime]
            )
            ip = client.host.ip
            testbed.network.apply_fault_schedule(ip, RESOLVER_IP, schedule, extra=base)
            for server_ip in testbed.pool.addresses:
                testbed.network.apply_fault_schedule(
                    ip, server_ip, schedule, extra=base
                )
        if manifest.join_time == 0.0:
            client.start()
        else:
            simulator.schedule(
                manifest.join_time, client.start, label="population-join"
            )
        if manifest.leave_time is not None:
            simulator.schedule(
                manifest.leave_time, client.stop, label="population-leave"
            )

    warmup = spec.warmup_seconds
    if run_until is not None:
        warmup = min(warmup, max(run_until, 0.0))
    testbed.run_for(warmup)

    attacks = [
        RunTimeAttack(
            testbed.attacker,
            simulator,
            testbed.resolver,
            client,
            scenario=scenario_enum,
            known_server_list=testbed.pool.addresses,
            max_duration=3600.0 * spec.max_duration_hours,
        )
        for client in clients
    ]
    # Poison once per distinct pool-domain set: clients of the same model
    # share their domains, and the resolver cache is shared fleet-wide.
    poisoned: set[frozenset] = set()
    for attack in attacks:
        domains = frozenset(attack.victim.config.pool_domains)
        if domains not in poisoned:
            poisoned.add(domains)
            attack.poison_resolver_directly()
    for attack in attacks:
        attack.start()
    check_interval = attacks[0].check_interval
    if run_until is None:
        simulator.run_for(3600.0 * spec.max_duration_hours + 2 * check_interval)
    else:
        remaining = run_until - simulator.now
        if remaining > 0.0:
            simulator.run_for(remaining)

    aggregate = StreamingAggregate()
    details = []
    include_details = fleet.size <= detail_limit
    group_counts: dict[str, list[int]] = {}
    ip_to_group: dict[str, str] = {}
    for manifest, client, attack in zip(fleet.clients, clients, attacks):
        if attack._result is None:
            attack._finish(success=False, duration=None)
        result = attack._result
        aggregate.fold(
            manifest.client_type,
            result.success,
            shift=result.clock_shift_achieved,
            minutes=result.attack_duration_minutes,
        )
        if group_of is not None:
            label = group_of[manifest.index]
            if label:
                counters = group_counts.setdefault(label, [0, 0])
                counters[0] += 1
                counters[1] += int(result.success)
                ip_to_group[client.host.ip] = label
        if include_details:
            details.append(
                {
                    "index": manifest.index,
                    "client_type": manifest.client_type,
                    "success": result.success,
                    "minutes": result.attack_duration_minutes,
                    "shift": result.clock_shift_achieved,
                }
            )

    network = testbed.network
    fleet_faults = network.fault_stats()
    aggregate.fold_faults(fleet_faults.to_document())

    document: dict[str, Any] = {
        "scenario": scenario_enum.value,
        "seed": seed,
        "spec_digest": fleet.spec_digest,
        "size": fleet.size,
        "successes": aggregate.successes,
        "success_rate": aggregate.success_rate,
        "type_counts": fleet.type_counts(),
        "aggregate": aggregate.to_document(),
        "events_processed": simulator.events_processed,
        "packets_transmitted": network.packets_transmitted,
        "packets_dropped": network.packets_dropped,
        "fault_stats": fleet_faults.to_document(),
    }
    if group_counts:
        group_faults = {label: FaultStats() for label in group_counts}
        for (src, dst), stats in network.per_pair_fault_stats().items():
            label = ip_to_group.get(src) or ip_to_group.get(dst)
            if label in group_faults:
                group_faults[label].merge(stats)
        document["groups"] = {
            label: {
                "clients": group_counts[label][0],
                "successes": group_counts[label][1],
                "success_rate": round(
                    group_counts[label][1] / group_counts[label][0], 6
                ),
                "fault_stats": group_faults[label].to_document(),
            }
            for label in sorted(group_counts)
        }
    if include_details:
        document["clients"] = details
    return document


__all__ = ["run_fleet", "spec_from_json"]
