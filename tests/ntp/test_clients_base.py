"""Tests for the shared NTP client machinery (boot, polling, discipline)."""

import pytest

from repro.ntp.clients.base import BaseNTPClient, NTPClientConfig
from repro.ntp.clients.ntpd import NtpdClient
from repro.testbed import TestbedConfig, build_testbed


def single_domain_config(**overrides) -> NTPClientConfig:
    defaults = dict(
        pool_domains=["pool.ntp.org"],
        desired_associations=4,
        min_associations=2,
        max_associations=8,
        poll_interval=64.0,
        unreachable_after=4,
        step_delay=120.0,
        min_step_samples=2,
    )
    defaults.update(overrides)
    return NTPClientConfig(**defaults)


class TestBootBehaviour:
    def test_boot_resolves_pool_domain_and_creates_associations(self, small_testbed):
        client = small_testbed.add_client(BaseNTPClient, config=single_domain_config())
        client.start()
        small_testbed.run_for(10)
        assert client.stats.boot_dns_lookups == 1
        assert len(client.usable_server_ips()) == 4
        assert set(client.usable_server_ips()) <= set(small_testbed.pool.addresses)

    def test_boot_corrects_initial_clock_error(self, small_testbed):
        client = small_testbed.add_client(
            BaseNTPClient, config=single_domain_config(), initial_clock_offset=42.0
        )
        client.start()
        small_testbed.run_for(400)
        assert abs(client.clock_error()) < 1.0
        assert client.stats.steps_applied >= 1

    def test_client_tracks_small_offsets_by_slewing(self, small_testbed):
        client = small_testbed.add_client(
            BaseNTPClient, config=single_domain_config(), initial_clock_offset=0.05
        )
        client.start()
        small_testbed.run_for(900)
        assert abs(client.clock_error()) < 0.05
        assert client.stats.steps_applied == 0

    def test_start_is_idempotent(self, small_testbed):
        client = small_testbed.add_client(BaseNTPClient, config=single_domain_config())
        client.start()
        client.start()
        small_testbed.run_for(5)
        assert client.stats.boot_dns_lookups == 1

    def test_stop_halts_polling(self, small_testbed):
        client = small_testbed.add_client(BaseNTPClient, config=single_domain_config())
        client.start()
        small_testbed.run_for(100)
        polls_before = client.stats.polls_sent
        client.stop()
        small_testbed.run_for(500)
        assert client.stats.polls_sent == polls_before


class TestPollingAndSelection:
    def test_polls_every_usable_association(self, small_testbed):
        client = small_testbed.add_client(BaseNTPClient, config=single_domain_config())
        client.start()
        small_testbed.run_for(200)
        assert client.stats.polls_sent >= 2 * len(client.usable_server_ips())
        for association in client.associations.values():
            assert association.responses_received > 0

    def test_sntp_polls_single_server(self, small_testbed):
        client = small_testbed.add_client(
            BaseNTPClient, config=single_domain_config(sntp=True, desired_associations=1)
        )
        client.start()
        small_testbed.run_for(200)
        polled = [a for a in client.associations.values() if a.polls_sent > 0]
        assert len(polled) == 1

    def test_median_selection_resists_single_bad_server(self, small_testbed):
        """A single attacker-controlled server cannot shift a multi-server client."""
        client = small_testbed.add_client(
            BaseNTPClient, config=single_domain_config(step_delay=60.0)
        )
        client.start()
        small_testbed.run_for(120)
        # Replace one association with a malicious server.
        evil_ip = small_testbed.attacker.ntp_server_addresses()[0]
        victim_assoc = list(client.associations)[0]
        client.associations[evil_ip] = client.associations.pop(victim_assoc)
        client.associations[evil_ip].server_ip = evil_ip
        small_testbed.run_for(1200)
        assert abs(client.clock_error()) < 1.0

    def test_unanswered_polls_mark_unreachable_and_requery(self, small_testbed):
        config = single_domain_config(unreachable_after=3, min_associations=4)
        client = small_testbed.add_client(BaseNTPClient, config=config)
        client.start()
        small_testbed.run_for(100)
        # Silence every pool server the client uses.
        for ip in client.usable_server_ips():
            small_testbed.pool.servers[ip].socket.close()
        small_testbed.run_for(600)
        assert client.stats.associations_removed > 0
        assert client.stats.runtime_dns_lookups > 0

    def test_unsolicited_response_ignored(self, small_testbed):
        """Responses that do not echo an outstanding query are discarded."""
        from repro.ntp.packet import NTPPacket

        client = small_testbed.add_client(BaseNTPClient, config=single_domain_config())
        client.start()
        small_testbed.run_for(100)
        target = list(client.associations.values())[0]
        before = target.responses_received
        forged = NTPPacket.server_response(NTPPacket.client_query(1.0), server_time=99999.0)
        client._on_packet(forged.encode(), target.server_ip, 123)
        assert target.responses_received == before


class TestPanicThreshold:
    def test_panic_threshold_blocks_huge_runtime_steps(self, small_testbed):
        config = single_domain_config(panic_threshold=1000.0, step_delay=60.0, min_step_samples=1)
        client = small_testbed.add_client(BaseNTPClient, config=config)
        client.start()
        small_testbed.run_for(300)
        client._pending.clear()
        # Fabricate a selected offset beyond the panic threshold at run time.
        for association in client.associations.values():
            association.offset_samples.append(-5000.0)
            association.last_offset = -5000.0
        client._discipline()
        small_testbed.run_for(300)
        assert client.stats.panics >= 1
        assert abs(client.clock_error()) < 1.0

    def test_boot_time_step_allowed_despite_panic_threshold(self, small_testbed):
        """Clients step arbitrarily at boot (the boot-time attack's enabler)."""
        config = single_domain_config(panic_threshold=1000.0)
        client = small_testbed.add_client(
            BaseNTPClient, config=config, initial_clock_offset=5000.0
        )
        client.start()
        small_testbed.run_for(400)
        assert abs(client.clock_error()) < 1.0


class TestDescribeAndRegistry:
    def test_describe_reports_key_fields(self, small_testbed):
        client = small_testbed.add_client(NtpdClient)
        client.start()
        small_testbed.run_for(100)
        summary = client.describe()
        assert summary["client"] == "ntpd"
        assert summary["associations"] == len(client.usable_server_ips())

    def test_client_registry_contains_all_table1_clients(self):
        from repro.ntp.clients import CLIENT_REGISTRY

        assert set(CLIENT_REGISTRY) == {
            "ntpd",
            "openntpd",
            "chrony",
            "ntpdate",
            "android",
            "ntpclient",
            "systemd-timesyncd",
        }
