"""NTP server-side rate limiting (the mechanism the run-time attack abuses).

The reference implementation (ntpd's ``restrict ... limited [kod]``) tracks
the inter-arrival times of queries per source address.  When a source
queries faster than the configured average interval for long enough, the
server stops answering it; with ``kod`` configured it first sends a single
Kiss-o'-Death packet with code ``RATE``.

Because the server identifies clients only by source IP address — NTP runs
over UDP with no handshake — an off-path attacker can send *spoofed* queries
carrying the victim client's address and push the victim into the limited
state.  The victim's own (legitimate, slow) queries then go unanswered and
the client eventually declares the server unreachable.  This module
implements the token-bucket-style accounting that produces that behaviour,
and is shared by real servers, the synthetic pool population, and the
rate-limit scanner of section VII-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class RateLimitDecision(Enum):
    """What the server should do with one incoming query."""

    RESPOND = "respond"
    KOD = "kod"
    DROP = "drop"


@dataclass(slots=True)
class _SourceState:
    """Accounting for one source address (slotted: one per spoofed flood)."""

    last_seen: float = 0.0
    score: float = 0.0
    kod_sent: bool = False
    drops: int = 0


@dataclass(slots=True)
class RateLimiter:
    """Leaky-bucket rate limiter keyed by source address.

    Slotted: ``check`` runs once per received query — millions per
    spoofing sweep — and slot access skips the instance ``__dict__``.

    Parameters mirror ntpd's defaults: a query "costs" ``average_interval``
    seconds of budget, the bucket drains in real time, and once the
    accumulated score exceeds ``burst_tolerance`` seconds the source is
    limited.  With the defaults, a source querying once per second exceeds
    the budget after roughly ``burst_tolerance / (average_interval - 1)``
    queries, which reproduces the "stops responding during the second half
    of 64 queries at 1/s" signature the scan of section VII-A looks for.
    """

    average_interval: float = 8.0
    burst_tolerance: float = 100.0
    send_kod: bool = True
    enabled: bool = True
    sources: dict[str, _SourceState] = field(default_factory=dict)
    queries_seen: int = 0
    queries_dropped: int = 0
    kods_sent: int = 0

    def check(self, source_ip: str, now: float) -> RateLimitDecision:
        """Account for one query from ``source_ip`` and decide the response.

        Runs once per received query (the hottest accounting loop of the
        rate-limit abuse scenarios), so the bucket arithmetic is written
        with branches instead of ``max()`` calls and a single state lookup.
        """
        self.queries_seen += 1
        if not self.enabled:
            return RateLimitDecision.RESPOND
        sources = self.sources
        state = sources.get(source_ip)
        if state is None:
            state = sources[source_ip] = _SourceState(last_seen=now)
        # Drain the bucket by the elapsed time (never backwards, never below
        # empty), then charge this query's cost.
        elapsed = now - state.last_seen
        score = state.score
        if elapsed > 0.0:
            score -= elapsed
            if score < 0.0:
                score = 0.0
        score += self.average_interval
        state.score = score
        state.last_seen = now

        if score <= self.burst_tolerance:
            return RateLimitDecision.RESPOND

        state.drops += 1
        self.queries_dropped += 1
        if self.send_kod and not state.kod_sent:
            state.kod_sent = True
            self.kods_sent += 1
            return RateLimitDecision.KOD
        return RateLimitDecision.DROP

    def is_limited(self, source_ip: str, now: float) -> bool:
        """True when ``source_ip`` would currently be denied service."""
        state = self.sources.get(source_ip)
        if state is None or not self.enabled:
            return False
        current = max(0.0, state.score - max(0.0, now - state.last_seen))
        return current > self.burst_tolerance

    def reset(self, source_ip: str | None = None) -> None:
        """Forget accounting for one source, or for all sources."""
        if source_ip is None:
            self.sources.clear()
        else:
            self.sources.pop(source_ip, None)
