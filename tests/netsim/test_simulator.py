"""Tests for the discrete-event simulator."""

import pytest

from repro.netsim.errors import SimulationError
from repro.netsim.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for label in ("first", "second", "third"):
            sim.schedule(1.0, lambda l=label: order.append(l))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(3.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [3.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancelled_event_not_executed(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(True))
        event.cancel()
        sim.run()
        assert fired == []


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_for_is_relative(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_for(2.0)
        assert sim.now == 2.0
        sim.run_for(2.0)
        assert sim.now == 4.0

    def test_max_events_limit(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        processed = sim.run(max_events=3)
        assert processed == 3
        assert sim.pending() == 7

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(1.0, lambda: chain(1))
        sim.run()
        assert fired == [1, 2, 3, 4, 5]
        assert sim.now == 5.0


class TestRandomness:
    def test_same_seed_same_draws(self):
        first = Simulator(seed=3).rng.integers(0, 1000, size=5).tolist()
        second = Simulator(seed=3).rng.integers(0, 1000, size=5).tolist()
        assert first == second

    def test_spawned_streams_are_independent(self):
        sim = Simulator(seed=3)
        a = sim.spawn_rng().integers(0, 1 << 30)
        b = sim.spawn_rng().integers(0, 1 << 30)
        assert a != b

    def test_spawned_streams_reproducible_across_instances(self):
        a = Simulator(seed=9).spawn_rng().integers(0, 1 << 30)
        b = Simulator(seed=9).spawn_rng().integers(0, 1 << 30)
        assert a == b
