"""Internet-scale measurement studies from the paper, run against synthetic populations.

The paper's attack-surface evaluation combines several measurement
methodologies; every one of them is implemented here and exercised against a
synthetic population whose *marginals* are parameters (defaulting to the
values the paper observed), so the benchmarks regenerate the corresponding
tables and figures:

* :mod:`population` — generators for the synthetic resolvers, nameservers,
  web clients and SMTP servers, with the paper's observed marginals as
  documented defaults,
* :mod:`cache_snooping` — RD=0 cache probing of open resolvers for the
  ``pool.ntp.org`` record set (Table IV) and the TTL histogram (Figure 6),
* :mod:`rate_limit_scan` — the 64-query/1 Hz probing of pool NTP servers for
  rate limiting and Kiss-o'-Death behaviour (section VII-A), run against
  real simulated servers,
* :mod:`frag_scan` — PMTUD/fragment-size probing of nameservers (Figure 5,
  section VII-B),
* :mod:`ad_network` — the ad-network study of client resolvers: fragment
  acceptance by size, region and device plus DNSSEC validation (Table V),
* :mod:`shared_resolvers` — discovery of resolvers shared between web
  clients, SMTP servers and open access (section VIII-B3),
* :mod:`timing_side_channel` — the query-latency cache-inference experiment
  that did *not* yield a usable threshold (Figure 7),
* :mod:`report` — small helpers to render the results as the paper's tables.
"""

from repro.measurement.population import (
    OpenResolverSpec,
    WebClientSpec,
    NameserverSpec,
    SharedResolverSpec,
    ResolverPopulationParameters,
    WebClientPopulationParameters,
    NameserverPopulationParameters,
    SharedResolverPopulationParameters,
    generate_open_resolvers,
    generate_web_clients,
    generate_nameservers,
    generate_pool_nameservers,
    generate_shared_resolvers,
)
from repro.measurement.cache_snooping import (
    CacheSnoopingStudy,
    CacheSnoopingReport,
    POOL_QUERY_NAMES,
)
from repro.measurement.rate_limit_scan import RateLimitScan, RateLimitScanReport
from repro.measurement.frag_scan import (
    FragmentationScan,
    FragmentationScanReport,
    fragment_size_cdf,
)
from repro.measurement.ad_network import AdNetworkStudy, AdNetworkReport, TEST_DOMAINS
from repro.measurement.shared_resolvers import (
    SharedResolverStudy,
    SharedResolverReport,
)
from repro.measurement.timing_side_channel import (
    TimingSideChannelStudy,
    TimingSideChannelReport,
)
from repro.measurement.report import format_table, format_percentage

__all__ = [
    "OpenResolverSpec",
    "WebClientSpec",
    "NameserverSpec",
    "SharedResolverSpec",
    "ResolverPopulationParameters",
    "WebClientPopulationParameters",
    "NameserverPopulationParameters",
    "SharedResolverPopulationParameters",
    "generate_open_resolvers",
    "generate_web_clients",
    "generate_nameservers",
    "generate_pool_nameservers",
    "generate_shared_resolvers",
    "CacheSnoopingStudy",
    "CacheSnoopingReport",
    "POOL_QUERY_NAMES",
    "RateLimitScan",
    "RateLimitScanReport",
    "FragmentationScan",
    "FragmentationScanReport",
    "fragment_size_cdf",
    "AdNetworkStudy",
    "AdNetworkReport",
    "TEST_DOMAINS",
    "SharedResolverStudy",
    "SharedResolverReport",
    "TimingSideChannelStudy",
    "TimingSideChannelReport",
    "format_table",
    "format_percentage",
]
