"""UDP datagrams with real RFC 768 checksums.

The checksum is computed over the IPv4 pseudo-header (source address,
destination address, protocol, UDP length) plus the UDP header and payload.
Because the checksum field travels in the *first* fragment of a fragmented
datagram, an off-path attacker who replaces the second fragment must craft
its payload so the overall ones'-complement sum is unchanged — the core
arithmetic trick of the paper's poisoning primitive.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.netsim.addresses import ip_to_bytes
from repro.netsim.checksum import internet_checksum
from repro.netsim.errors import PacketError

UDP_HEADER_LEN = 8

#: Precompiled codecs for the per-datagram hot path.
_UDP_HEADER = struct.Struct("!HHHH")
_PSEUDO_HEADER = struct.Struct("!4s4sBBH")


@dataclass(slots=True)
class UDPDatagram:
    """A UDP datagram (header fields plus application payload)."""

    src_port: int
    dst_port: int
    payload: bytes

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"UDP port out of range: {port}")

    @property
    def length(self) -> int:
        """The UDP length field (header plus payload)."""
        return UDP_HEADER_LEN + len(self.payload)


def _pseudo_header(src_ip: str, dst_ip: str, udp_length: int) -> bytes:
    """The IPv4 pseudo-header included in the UDP checksum."""
    return _PSEUDO_HEADER.pack(
        ip_to_bytes(src_ip),
        ip_to_bytes(dst_ip),
        0,
        17,
        udp_length,
    )


def udp_checksum(src_ip: str, dst_ip: str, datagram: UDPDatagram) -> int:
    """Compute the UDP checksum for a datagram between two IPv4 addresses."""
    length = UDP_HEADER_LEN + len(datagram.payload)
    header = _UDP_HEADER.pack(datagram.src_port, datagram.dst_port, length, 0)
    checksum = internet_checksum(
        _pseudo_header(src_ip, dst_ip, length) + header + datagram.payload
    )
    # RFC 768: a computed checksum of zero is transmitted as all ones.
    return checksum if checksum != 0 else 0xFFFF


def encode_udp(src_ip: str, dst_ip: str, datagram: UDPDatagram) -> bytes:
    """Encode a datagram (header + payload) with its checksum filled in."""
    checksum = udp_checksum(src_ip, dst_ip, datagram)
    header = _UDP_HEADER.pack(
        datagram.src_port, datagram.dst_port, datagram.length, checksum
    )
    return header + datagram.payload


def decode_udp(
    src_ip: str, dst_ip: str, data: bytes, verify: bool = True
) -> UDPDatagram:
    """Decode UDP bytes, optionally verifying length and checksum.

    Raises :class:`PacketError` when the datagram is truncated, its length
    field disagrees with the data, or (when ``verify`` is true) the checksum
    does not match.  The checksum rejection path is exactly what defeats a
    naive fragment-replacement attack that does not fix the checksum.
    """
    if len(data) < UDP_HEADER_LEN:
        raise PacketError("truncated UDP header")
    src_port, dst_port, length, checksum = _UDP_HEADER.unpack(data[:UDP_HEADER_LEN])
    if length != len(data):
        raise PacketError(f"UDP length mismatch: field={length}, actual={len(data)}")
    datagram = UDPDatagram(src_port, dst_port, data[UDP_HEADER_LEN:])
    if verify and checksum != 0:
        expected = udp_checksum(src_ip, dst_ip, datagram)
        if expected != checksum:
            raise PacketError(
                f"UDP checksum mismatch: expected {expected:#06x}, got {checksum:#06x}"
            )
    return datagram
