#!/usr/bin/env python3
"""Countermeasures from section IX, evaluated against the boot-time attack.

Four configurations face the same off-path attacker:

1. the vulnerable baseline (DNS-configured SNTP client, fragment-accepting
   resolver, unsigned pool zone),
2. a client configured with static NTP server addresses (the paper's
   immediate recommendation),
3. a resolver that filters IP fragments, and
4. openntpd's HTTPS ``constraint`` check, which refuses time that
   contradicts an authenticated coarse time source.

Run with::

    python examples/countermeasures.py
"""

from __future__ import annotations

from repro.core.boot_time import BootTimeAttack
from repro.measurement.report import format_table
from repro.ntp.clients import OpenNTPDClient, SystemdTimesyncdClient
from repro.testbed import NAMESERVER_IP, TestbedConfig, build_testbed


def attack_testbed(seed: int, drop_fragments: bool = False):
    testbed = build_testbed(
        TestbedConfig(
            pool_size=32,
            seed=seed,
            pool_rotation="fixed",
            resolver_drops_fragments=drop_fragments,
        )
    )
    attack = BootTimeAttack(
        attacker=testbed.attacker,
        simulator=testbed.simulator,
        resolver=testbed.resolver,
        nameserver_ip=NAMESERVER_IP,
        target_mtu=68,
    )
    attack.launch_poisoning()
    testbed.run_for(10)
    return testbed, attack


def baseline() -> list:
    testbed, attack = attack_testbed(seed=91)
    victim = testbed.add_client(SystemdTimesyncdClient)
    result = attack.evaluate(victim, observation_period=400)
    return ["baseline (DNS + fragments accepted)", result.success, f"{result.clock_shift_achieved:+.1f}"]


def static_addresses() -> list:
    testbed, attack = attack_testbed(seed=92)
    victim = testbed.add_client(SystemdTimesyncdClient)
    victim.config.runtime_dns = False
    victim._add_servers(testbed.pool.addresses[:4], domain="")
    victim.started = True
    victim.booted_at = testbed.simulator.now
    victim._schedule_poll()
    testbed.run_for(400)
    return ["static server addresses (no DNS)", abs(victim.clock_error()) > 5.0, f"{victim.clock_error():+.1f}"]


def fragment_filtering_resolver() -> list:
    testbed, attack = attack_testbed(seed=93, drop_fragments=True)
    victim = testbed.add_client(SystemdTimesyncdClient)
    result = attack.evaluate(victim, observation_period=400)
    return ["fragment-filtering resolver", result.success, f"{result.clock_shift_achieved:+.1f}"]


def openntpd_constraint() -> list:
    testbed, attack = attack_testbed(seed=94)
    victim = testbed.add_client(OpenNTPDClient)
    victim.tls_constraint = True
    result = attack.evaluate(victim, observation_period=600)
    return ["openntpd HTTPS constraint", result.success, f"{result.clock_shift_achieved:+.1f}"]


def main() -> None:
    rows = [baseline(), static_addresses(), fragment_filtering_resolver(), openntpd_constraint()]
    print(
        format_table(
            ["Configuration", "Clock shifted?", "Final clock error (s)"],
            rows,
            title="Section IX — countermeasures against the boot-time attack",
        )
    )


if __name__ == "__main__":
    main()
