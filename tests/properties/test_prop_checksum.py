"""Property-based tests for checksum arithmetic and checksum fixing."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checksum_fix import craft_matching_fragment, sums_match
from repro.netsim.checksum import (
    add_ones_complement,
    internet_checksum,
    ones_complement_sum,
    verify_checksum,
)

payloads = st.binary(min_size=0, max_size=512)
words = st.integers(min_value=0, max_value=0xFFFF)


class TestChecksumProperties:
    @given(payloads)
    def test_sum_fits_in_16_bits(self, data):
        assert 0 <= ones_complement_sum(data) <= 0xFFFF

    @given(payloads)
    def test_checksum_verifies_when_appended(self, data):
        # Checksums live at even offsets in real headers, so pad odd data.
        if len(data) % 2 == 1:
            data = data + b"\x00"
        checksum = internet_checksum(data)
        assert verify_checksum(data + checksum.to_bytes(2, "big"))

    @given(payloads)
    def test_padding_with_zero_byte_preserves_sum(self, data):
        assert ones_complement_sum(data) == ones_complement_sum(data + b"\x00")

    @given(st.lists(payloads, min_size=2, max_size=4))
    def test_sum_is_associative_over_concatenation(self, chunks):
        # Only holds when every chunk except the last has even length.
        chunks = [c if len(c) % 2 == 0 else c + b"\x00" for c in chunks]
        total = ones_complement_sum(b"".join(chunks))
        folded = 0
        for chunk in chunks:
            folded = add_ones_complement(folded, ones_complement_sum(chunk))
        # Both represent the same value modulo the two encodings of zero.
        assert folded == total or {folded, total} == {0x0000, 0xFFFF}

    @given(words, words)
    def test_add_commutative(self, a, b):
        assert add_ones_complement(a, b) == add_ones_complement(b, a)


class TestChecksumFixProperties:
    @given(
        st.binary(min_size=40, max_size=200),
        st.binary(min_size=1, max_size=16),
        st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=200)
    def test_crafted_fragment_always_matches_original_sum(self, original, patch, where):
        original = original if len(original) % 2 == 0 else original + b"\x00"
        desired = bytearray(original)
        start = min(where, len(original) - len(patch))
        desired[start : start + len(patch)] = patch
        adjustable = [len(original) - 4]  # sacrifice the penultimate word
        crafted = craft_matching_fragment(original, bytes(desired), adjustable)
        assert sums_match(original, crafted)
        assert len(crafted) == len(original)

    @given(st.binary(min_size=20, max_size=100))
    def test_identical_fragments_unchanged(self, original):
        crafted = craft_matching_fragment(original, original, adjustable_offsets=[0])
        assert crafted == original
