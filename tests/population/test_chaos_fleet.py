"""Chaos-layer fleet properties: bit-identity and conservation.

The two acceptance properties of the chaos compiler:

* **inert ⇒ bit-identical** — a plan with zero effective components
  attaches nothing, schedules nothing, and the fleet run is equal to the
  same spec without chaos, down to the golden single-victim constants;
* **conservation** — per correlation group, every packet transmitted is
  either captured, fault-dropped, or was a fault duplicate:
  ``captured == transmitted − dropped + duplicated``.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.netsim import Network, Simulator
from repro.netsim.faults import FaultStats
from repro.population.chaos import (
    CampaignHorizon,
    ChaosPhase,
    ChaosPlan,
    CorrelationGroup,
    compile_chaos,
    run_chaos_checkpoint,
)
from repro.population.fleet import run_fleet
from repro.population.spec import FaultRegimeSpec, PopulationSpec

GOLDEN = {
    "shift": -500.00999995431766,
    "events_processed": 48106,
    "packets_transmitted": 24730,
}

DEGENERATE = PopulationSpec(size=1, client_mix={"ntpd": 1.0})


def small_spec() -> PopulationSpec:
    return PopulationSpec(
        size=4,
        client_mix={"ntpd": 1.0},
        pool_size=16,
        warmup_seconds=300.0,
        max_duration_hours=0.35,
    )


@lru_cache(maxsize=4)
def baseline_small_run() -> dict:
    return run_fleet(small_spec(), seed=3)


class TestInertBitIdentity:
    def test_empty_plan_reproduces_golden_run(self):
        document = run_chaos_checkpoint(DEGENERATE, ChaosPlan(), seed=5)
        assert document["successes"] == 1
        assert document["events_processed"] == GOLDEN["events_processed"]
        assert document["packets_transmitted"] == GOLDEN["packets_transmitted"]
        assert "clients" not in document  # detail_limit=0: constant payload

    def test_all_clean_plan_with_groups_is_bit_identical(self):
        # Groups assigned, phases declared, but every phase runs clean:
        # the compile collapses to zero schedules and the simulation must
        # match the chaos-free fleet event for event.
        plan = ChaosPlan(
            groups=(CorrelationGroup("east"), CorrelationGroup("west")),
            phases=(ChaosPhase("calm", 400.0), ChaosPhase("still", 400.0)),
            horizon=CampaignHorizon(duration=0.0),
        )
        assert compile_chaos(plan, 4, seed=3).is_inert
        document = run_chaos_checkpoint(small_spec(), plan, seed=3)
        baseline = baseline_small_run()
        assert document["events_processed"] == baseline["events_processed"]
        assert document["packets_transmitted"] == baseline["packets_transmitted"]
        assert document["successes"] == baseline["successes"]
        assert (
            document["aggregate"]["shift_histogram"]
            == baseline["aggregate"]["shift_histogram"]
        )
        # The chaos surface is still reported: labels and (all-zero) faults.
        assert set(document["groups"]) <= {"east", "west"}
        assert all(v == 0 for v in document["fault_stats"].values())

    def test_faulted_plan_actually_fires(self):
        plan = ChaosPlan(
            groups=(CorrelationGroup("east"),),
            regimes=(FaultRegimeSpec("blackout", kind="partition"),),
            phases=(
                ChaosPhase("calm", 400.0),
                ChaosPhase("storm", 500.0, regimes=(("east", "blackout"),)),
            ),
            horizon=CampaignHorizon(duration=1600.0),
        )
        document = run_chaos_checkpoint(small_spec(), plan, seed=3, until=1600.0)
        assert document["fault_stats"]["dropped_partition"] > 0
        assert document["groups"]["east"]["clients"] == 4
        assert (
            document["groups"]["east"]["fault_stats"]["dropped_partition"]
            == document["fault_stats"]["dropped_partition"]
        )


@pytest.mark.chaos
class TestGroupConservation:
    """captured == transmitted − fault_dropped + duplicated, per group."""

    def test_conservation_across_scheduled_regimes(self):
        plan = ChaosPlan(
            groups=(CorrelationGroup("east"), CorrelationGroup("west")),
            regimes=(
                FaultRegimeSpec("blackout", kind="partition"),
                FaultRegimeSpec("echo", kind="duplication", probability=1.0),
            ),
            phases=(
                ChaosPhase("calm", 10.0),
                ChaosPhase(
                    "storm",
                    10.0,
                    regimes=(("east", "blackout"), ("west", "echo")),
                ),
                ChaosPhase("after", 10.0),
            ),
        )
        simulator = Simulator(seed=9)
        network = Network(simulator)
        captured: dict[str, int] = {"east": 0, "west": 0}
        sent: dict[str, int] = {"east": 0, "west": 0}

        def make_sink(group: str):
            def on_datagram(payload, *rest):
                captured[group] += 1

            return on_datagram

        members = {
            "east": ("10.0.0.1", "10.0.0.2"),
            "west": ("10.0.0.3", "10.0.0.4"),
        }
        sinks = {"east": "10.0.1.1", "west": "10.0.1.2"}
        group_of_ip: dict[str, str] = {}
        sources = {}
        for group, ips in members.items():
            network.add_host(f"sink-{group}", sinks[group]).bind(
                53, on_datagram=make_sink(group)
            )
            for ip in ips:
                host = network.add_host(f"src-{ip}", ip)
                sources[ip] = host.bind(0)
                group_of_ip[ip] = group
        # One schedule per group, applied to every member link the way
        # run_fleet does.
        from repro.population.chaos import _group_schedule

        schedules = {group: _group_schedule(plan, group) for group in members}
        for group, ips in members.items():
            schedule = schedules[group]
            if schedule is None:
                continue
            for ip in ips:
                network.apply_fault_schedule(ip, sinks[group], schedule)

        for step in range(30):
            for group, ips in members.items():
                for ip in ips:
                    simulator.schedule(
                        float(step),
                        sources[ip].sendto,
                        args=(b"tick", sinks[group], 53),
                    )
                    sent[group] += 1
        simulator.run()

        per_pair = network.per_pair_fault_stats()
        for group in members:
            stats = FaultStats()
            for (src, dst), pair_stats in per_pair.items():
                if group_of_ip.get(src) == group or group_of_ip.get(dst) == group:
                    stats.merge(pair_stats)
            assert (
                captured[group]
                == sent[group] - stats.dropped + stats.duplicated
            ), f"conservation violated for group {group!r}"
        # And the faults genuinely fired on the intended groups.
        east = FaultStats()
        for (src, _dst), pair_stats in per_pair.items():
            if group_of_ip.get(src) == "east":
                east.merge(pair_stats)
        assert east.dropped_partition > 0
        assert captured["west"] > sent["west"] - 0  # duplicates arrived
