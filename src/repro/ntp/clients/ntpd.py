"""Model of the reference ntpd client (NTPsec / ntp.org ntpd).

The behaviours that matter to the paper (section V-B3):

* the default configuration carries four ``pool`` directives, which spawn
  server associations via DNS until roughly six upstream servers are active
  (``NTP_MAXCLOCK`` = 10 including the persistent pool associations),
* new DNS lookups at run time happen only when the number of usable
  associations drops below ``NTP_MINCLOCK`` = 3, so the run-time attacker
  must remove ``m - 2 = 4`` servers,
* ntpd answers mode 3 queries by default, exposing its current system peer
  in the reference-id field — the leak used by attack scenario P2,
* large offsets are stepped only after the stepout interval, but the panic
  threshold (1000 s) is not enforced at boot (``-g``), which is why
  boot-time attacks can set an arbitrary time.
"""

from __future__ import annotations

from repro.ntp.clients.base import BaseNTPClient, NTPClientConfig

#: ntpd's compile-time limits (ntp_proto.c), quoted in the paper.
NTP_MINCLOCK = 3
NTP_MAXCLOCK = 10


class NtpdClient(BaseNTPClient):
    """The ntpd behavioural model."""

    client_name = "ntpd"
    pool_usage_share = 0.264
    supports_boot_time_attack = True
    supports_runtime_attack = True

    @classmethod
    def default_config(cls) -> NTPClientConfig:
        return NTPClientConfig(
            pool_domains=[f"{i}.pool.ntp.org" for i in range(4)],
            desired_associations=6,
            min_associations=NTP_MINCLOCK,
            max_associations=NTP_MAXCLOCK,
            poll_interval=64.0,
            unreachable_after=8,
            runtime_dns=True,
            sntp=False,
            step_threshold=0.128,
            step_delay=300.0,
            min_step_samples=4,
            panic_threshold=1000.0,
            panic_at_boot=False,
            act_as_server=True,
        )
