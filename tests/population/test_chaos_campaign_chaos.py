"""Crash-injection for chaos campaigns: kill -9 across a segment roll.

The acceptance property for long-horizon campaigns: a campaign driver
killed with ``SIGKILL`` mid-phase — with ``segment_bytes`` tuned so small
that every checkpoint record rolls a fresh segment — leaves a store that
passes ``fsck``, and ``resume_chaos_campaign`` replays the remaining
checkpoints to a summary bit-identical to an uninterrupted campaign.

Runs under ``make chaos`` (and the full tier-1 suite).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import RunStore
from repro.population.chaos import (
    CampaignHorizon,
    ChaosPhase,
    ChaosPlan,
    CorrelationGroup,
    resume_chaos_campaign,
    run_chaos_campaign,
)
from repro.population.spec import FaultRegimeSpec, PopulationSpec

pytestmark = pytest.mark.chaos

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

#: Small enough that every checkpoint record (a few KB of aggregate and
#: per-group fault stats) rolls onto a fresh segment — the kill is
#: guaranteed to land across a roll boundary.
TINY_SEGMENT_BYTES = 256


def campaign_spec() -> PopulationSpec:
    return PopulationSpec(
        size=6,
        client_mix={"ntpd": 1.0},
        pool_size=16,
        warmup_seconds=300.0,
        max_duration_hours=0.5,
    )


def campaign_plan() -> ChaosPlan:
    return ChaosPlan(
        groups=(CorrelationGroup("east", 0.5), CorrelationGroup("west", 0.5)),
        regimes=(FaultRegimeSpec("blackout", kind="partition"),),
        phases=(
            ChaosPhase("calm", 600.0),
            ChaosPhase("storm", 600.0, regimes=(("east", "blackout"),)),
        ),
        horizon=CampaignHorizon(duration=1500.0, checkpoint_every=300.0),
    )


_CHILD_SOURCE = """
import sys
from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import RunStore
from repro.population.chaos import ChaosPlan, run_chaos_campaign
from repro.population.spec import PopulationSpec

root, spec_json, plan_json, segment_bytes = sys.argv[1:5]
run_chaos_campaign(
    RunStore(root, segment_bytes=int(segment_bytes)),
    "kill",
    PopulationSpec.from_json(spec_json),
    ChaosPlan.from_json(plan_json),
    seed=3,
    runner=ExperimentRunner(max_workers=1),
)
"""


def _discover_sweep(store: RunStore) -> str:
    try:
        sweeps = store.sweeps()
    except Exception:
        return ""
    return sweeps[0] if sweeps else ""


def _count_records(store: RunStore, sweep_id: str) -> int:
    try:
        return len(store.records(sweep_id))
    except Exception:
        return 0


class TestCampaignSigkill:
    def test_kill9_across_segment_roll_resumes_bit_identical(self, tmp_path):
        root = str(tmp_path / "store")
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                _CHILD_SOURCE,
                root,
                campaign_spec().to_json(),
                campaign_plan().to_json(),
                str(TINY_SEGMENT_BYTES),
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        store = RunStore(root, segment_bytes=TINY_SEGMENT_BYTES)
        try:
            deadline = time.monotonic() + 60.0
            sweep_id = ""
            # Wait for the child's manifest to commit, then for at least
            # two checkpoint records — each rolls its own segment, so the
            # kill lands with a roll boundary already behind it.
            while True:
                sweep_id = sweep_id or _discover_sweep(store)
                if sweep_id and _count_records(store, sweep_id) >= 2:
                    break
                if child.poll() is not None:
                    pytest.fail("campaign finished before the kill landed")
                if time.monotonic() > deadline:
                    pytest.fail("campaign never produced records to kill over")
                time.sleep(0.005)
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        # Simulate the torn in-flight line the kill can leave behind.
        segments = store._segment_paths(sweep_id)
        assert len(segments) >= 2, "kill did not cross a segment roll"
        with open(segments[-1], "ab") as handle:
            handle.write(b'{"index": 9, "spec": {"scenario": "population_ch')

        report = store.fsck()
        assert report.ok, report.errors
        assert store.manifest(sweep_id)["status"] == "running"
        recorded = _count_records(store, sweep_id)
        assert 2 <= recorded < 5

        resumed = resume_chaos_campaign(
            store, sweep_id, runner=ExperimentRunner(max_workers=1)
        )

        reference = run_chaos_campaign(
            RunStore(str(tmp_path / "reference")),
            "kill",
            campaign_spec(),
            campaign_plan(),
            seed=3,
            runner=ExperimentRunner(max_workers=1),
        )
        # Bit-identical, aggregates included: the prefix the child wrote
        # and the suffix the resume replayed are indistinguishable from an
        # uninterrupted campaign.
        assert resumed["checkpoints"] == reference["checkpoints"]
        assert resumed["plan_digest"] == reference["plan_digest"]
        assert resumed["spec_digest"] == reference["spec_digest"]
        assert store.manifest(sweep_id)["status"] == "complete"
        assert store.fsck().ok
        # The resumed store kept rolling tiny segments the whole way.
        assert len(store._segment_paths(sweep_id)) > len(segments)
