"""Landscape sweeps: attack success as a function of population mix.

The paper's Table II/III report single cells — one client model, one
posture.  A *landscape* sweeps a base :class:`~repro.population.spec.
PopulationSpec` over two axes (say, the ntpd market share × the pool's
rate-limit posture) and runs one fleet per grid cell through the durable
experiment engine (:meth:`~repro.experiments.runner.ExperimentRunner.
run_stored`), folding each cell's streaming aggregate into the run store
and returning a ≥3×3 success-probability grid that
:func:`repro.measurement.report.landscape_report` renders.

Axes are named declaratively:

* ``share:<client>`` — set that client type's share to the axis value and
  renormalise the remaining types proportionally;
* any scalar spec field (``pool_rate_limit_fraction``, ``poll_jitter``,
  ``size``, ``pool_size``, ``warmup_seconds``, ``max_duration_hours``).

``python -m repro.population.landscape`` runs the small smoke landscape
(``make population-smoke``): a 3×3 grid of miniature fleets, end-to-end
through ``run_stored``, printed as a report.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import Any, Optional, Sequence

from repro.population.spec import PopulationSpec, SpecError

#: Scalar spec fields addressable as landscape axes.
SCALAR_AXES = (
    "pool_rate_limit_fraction",
    "poll_jitter",
    "size",
    "pool_size",
    "warmup_seconds",
    "max_duration_hours",
)


def apply_axis(spec: PopulationSpec, axis: str, value: float) -> PopulationSpec:
    """Return ``spec`` with one axis set to ``value`` (pure)."""
    if axis.startswith("share:"):
        target = axis.split(":", 1)[1]
        mix = dict(spec.client_mix)
        if target not in mix:
            raise SpecError(
                f"axis {axis!r}: {target!r} is not in the spec's client_mix"
            )
        if not 0.0 <= value <= 1.0:
            raise SpecError(f"axis {axis!r}: share must be in [0, 1], got {value}")
        others = {name: weight for name, weight in mix.items() if name != target}
        others_total = sum(others.values())
        scaled = {}
        for name, weight in mix.items():
            if name == target:
                scaled[name] = value
            elif others_total > 0:
                scaled[name] = weight / others_total * (1.0 - value)
            else:
                scaled[name] = 0.0
        if value >= 1.0 or others_total == 0:
            # A full share collapses the mix to the target type alone.
            scaled = {target: 1.0}
        return replace(spec, client_mix=tuple(scaled.items()))
    if axis in SCALAR_AXES:
        cast = int if axis in ("size", "pool_size") else float
        return replace(spec, **{axis: cast(value)})
    raise SpecError(
        f"unknown landscape axis {axis!r}; expected 'share:<client>' or one "
        f"of {SCALAR_AXES}"
    )


def landscape_specs(
    base: PopulationSpec,
    axis_x: str,
    x_values: Sequence[float],
    axis_y: str,
    y_values: Sequence[float],
    seed: int = 0,
) -> list:
    """Row-major grid of ``population_landscape`` run specs (y outer, x inner)."""
    from repro.experiments.runner import RunSpec

    base_json = base.to_json()
    return [
        RunSpec.make(
            "population_landscape",
            spec_json=base_json,
            axis_x=axis_x,
            x=float(x),
            axis_y=axis_y,
            y=float(y),
            seed=seed,
        )
        for y in y_values
        for x in x_values
    ]


def sweep_landscape(
    store: Any,
    name: str,
    base: PopulationSpec,
    axis_x: str,
    x_values: Sequence[float],
    axis_y: str,
    y_values: Sequence[float],
    seed: int = 0,
    runner: Optional[Any] = None,
) -> dict[str, Any]:
    """Run the full grid through ``run_stored`` and return the grid document.

    Every cell's streaming aggregate is appended to the sweep as a
    ``population-aggregate`` record (plus one ``landscape-grid`` summary
    record), and only then is the sweep stamped complete
    (``run_stored(finish=False)``) — so a crash while the derived records
    are being written leaves a resumable ``running`` sweep rather than a
    ``complete`` one missing its grid.
    """
    from repro.experiments.runner import ExperimentRunner

    runner = runner or ExperimentRunner(max_workers=1)
    specs = landscape_specs(base, axis_x, x_values, axis_y, y_values, seed=seed)
    outcomes = runner.run_stored(
        store,
        name,
        specs,
        seed=seed,
        metadata={
            "kind": "population-landscape",
            "axis_x": axis_x,
            "x_values": [float(x) for x in x_values],
            "axis_y": axis_y,
            "y_values": [float(y) for y in y_values],
        },
        finish=False,
    )
    sweep_id = runner.last_sweep_id

    cells = []
    for outcome in outcomes:
        params = outcome.spec.kwargs()
        cell: dict[str, Any] = {
            "x": params["x"],
            "y": params["y"],
            "axis_x": axis_x,
            "axis_y": axis_y,
        }
        if outcome.ok and isinstance(outcome.result, dict):
            cell["success_rate"] = outcome.result.get("success_rate")
            cell["successes"] = outcome.result.get("successes")
            cell["size"] = outcome.result.get("size")
            cell["aggregate"] = outcome.result.get("aggregate")
            cell["fault_stats"] = outcome.result.get("fault_stats")
        else:
            cell["error"] = outcome.error
        cells.append(cell)

    grid = {
        "kind": "landscape-grid",
        "name": name,
        "sweep_id": sweep_id,
        "axis_x": {"name": axis_x, "values": [float(x) for x in x_values]},
        "axis_y": {"name": axis_y, "values": [float(y) for y in y_values]},
        "cells": [
            {key: value for key, value in cell.items() if key != "aggregate"}
            for cell in cells
        ],
    }
    if sweep_id is not None:
        writer = store.open_sweep(sweep_id)
        try:
            for cell in cells:
                aggregate = cell.get("aggregate")
                if aggregate is not None:
                    writer.append_aggregate(
                        {key: cell[key] for key in ("x", "y", "axis_x", "axis_y")},
                        aggregate,
                    )
            writer.append_record(grid)
        finally:
            writer.close()
        store.finish_sweep(sweep_id, "complete")
    return grid


def smoke_spec() -> PopulationSpec:
    """The miniature heterogeneous spec the smoke landscape sweeps."""
    return PopulationSpec(
        size=8,
        client_mix=(("ntpd", 0.5), ("chrony", 0.3), ("systemd-timesyncd", 0.2)),
        poll_jitter=0.1,
        pool_size=16,
        warmup_seconds=300.0,
        # Long enough for the fast models to actually succeed (~16 min for
        # ntpd), so the smoke grid shows a real probability gradient.
        max_duration_hours=0.35,
    )


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.population.landscape`` — the smoke landscape."""
    from repro.experiments.runner import ExperimentRunner
    from repro.experiments.store import RunStore
    from repro.measurement.report import landscape_report

    parser = argparse.ArgumentParser(
        prog="repro.population.landscape",
        description="Run a small population landscape end-to-end (smoke test).",
    )
    parser.add_argument("--store", default=".population_smoke_store")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args(argv)

    store = RunStore(args.store)
    runner = ExperimentRunner(max_workers=args.workers, tenants_per_worker=3)
    grid = sweep_landscape(
        store,
        "population-smoke",
        smoke_spec(),
        "share:ntpd",
        (0.2, 0.5, 0.8),
        "pool_rate_limit_fraction",
        (0.0, 0.5, 1.0),
        seed=args.seed,
        runner=runner,
    )
    print(landscape_report(grid))
    print(f"\nstored as sweep {grid['sweep_id']} in {args.store}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = [
    "SCALAR_AXES",
    "apply_axis",
    "landscape_specs",
    "smoke_spec",
    "sweep_landscape",
]
