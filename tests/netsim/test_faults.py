"""Unit tests for the deterministic fault-injection layer.

The property suite (``tests/properties/test_prop_faults.py``) pins the
behavioural laws — zero-fault bit-identity, conservation of packets,
corruption caught by the real checksum verify.  This file covers the
component/plan/channel mechanics and the network wiring.
"""

from __future__ import annotations

import pytest

from repro.netsim import (
    Corruption,
    Duplication,
    FaultChannel,
    FaultPlan,
    GilbertElliott,
    LatencySpike,
    Network,
    Partition,
    ReorderJitter,
    Simulator,
)
from repro.netsim.errors import FaultConfigError, InvariantViolation
from repro.netsim.packet import IPv4Packet
from repro.netsim.udp import UDP_HEADER_LEN


def make_packet(body: bytes = b"x" * 24) -> IPv4Packet:
    payload = b"\x00" * UDP_HEADER_LEN + body
    return IPv4Packet.udp("10.0.0.1", "10.0.0.2", payload, 7)


class TestComponents:
    def test_probability_bounds_enforced(self):
        with pytest.raises(FaultConfigError):
            Corruption(1.5)
        with pytest.raises(FaultConfigError):
            ReorderJitter(-0.1)
        with pytest.raises(FaultConfigError):
            GilbertElliott(p_enter_bad=2.0)
        with pytest.raises(FaultConfigError):
            Duplication(probability=0.5, max_delay=-1.0)
        with pytest.raises(FaultConfigError):
            Partition(start=-1.0)
        with pytest.raises(FaultConfigError):
            LatencySpike(extra=-0.5)

    def test_active_reflects_whether_component_can_fire(self):
        assert not Corruption(0.0).active
        assert Corruption(0.1).active
        assert not ReorderJitter(0.5, max_delay=0.0).active
        assert not Duplication(0.0).active
        assert not Partition(5.0, 0.0).active
        assert Partition(5.0, 1.0).active
        assert not LatencySpike(1.0, 1.0, extra=0.0).active
        # A GE chain that can never leave the good state with zero good
        # loss can never drop anything.
        assert not GilbertElliott(p_enter_bad=0.0, loss_good=0.0).active
        assert GilbertElliott(p_enter_bad=0.2).active

    def test_partition_window_semantics(self):
        window = Partition(start=10.0, duration=5.0)
        assert window.end == 15.0
        assert not window.covers(9.999)
        assert window.covers(10.0)
        assert window.covers(14.999)
        assert not window.covers(15.0)  # heal time is exclusive


class TestFaultPlan:
    def test_groups_components_by_kind(self):
        plan = FaultPlan(
            Corruption(0.1),
            Partition(1.0, 2.0),
            GilbertElliott(p_enter_bad=0.1),
            ReorderJitter(0.2, 0.05),
            Duplication(0.3),
            LatencySpike(5.0, 1.0, 0.4),
        )
        assert len(plan.partitions) == 1
        assert len(plan.loss_models) == 1
        assert len(plan.corruptions) == 1
        assert len(plan.spikes) == 1
        assert len(plan.jitters) == 1
        assert len(plan.duplications) == 1
        assert not plan.is_inert

    def test_inert_components_discarded(self):
        plan = FaultPlan(Corruption(0.0), Partition(3.0, 0.0), Duplication(0.0))
        assert plan.is_inert
        assert plan.corruptions == ()
        assert FaultPlan().is_inert

    def test_rejects_non_components(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(0.5)


class TestFaultChannel:
    def channel(self, *components, seed: int = 1, name: str = "t") -> FaultChannel:
        simulator = Simulator(seed=seed)
        return FaultChannel(
            FaultPlan(*components), simulator.spawn_named_rng(name)
        )

    def test_partition_drops_deterministically(self):
        channel = self.channel(Partition(10.0, 5.0))
        packet = make_packet()
        assert channel.process(packet, 12.0) == []
        assert channel.process(packet, 9.0) == [(0.0, packet)]
        assert channel.process(packet, 15.0) == [(0.0, packet)]
        assert channel.stats.dropped_partition == 1
        assert channel.stats.packets == 3

    def test_corruption_flips_copy_not_original(self):
        channel = self.channel(Corruption(1.0))
        packet = make_packet()
        original = packet.payload
        [(extra, delivered)] = channel.process(packet, 0.0)
        assert extra == 0.0
        assert delivered is not packet
        assert packet.payload == original  # sender's object untouched
        assert delivered.metadata.get("corrupted") is True
        # Exactly one bit differs, and it lands past the UDP header so the
        # RFC 768 checksum is guaranteed to catch it.
        diffs = [
            index
            for index, (a, b) in enumerate(zip(original, delivered.payload))
            if a != b
        ]
        assert len(diffs) == 1
        assert diffs[0] >= UDP_HEADER_LEN
        assert bin(original[diffs[0]] ^ delivered.payload[diffs[0]]).count("1") == 1
        assert channel.stats.corrupted == 1

    def test_corruption_skips_empty_payload(self):
        channel = self.channel(Corruption(1.0))
        packet = IPv4Packet.udp("10.0.0.1", "10.0.0.2", b"", 7)
        [(_, delivered)] = channel.process(packet, 0.0)
        assert delivered is packet
        assert channel.stats.corrupted == 0

    def test_duplication_yields_second_delivery(self):
        channel = self.channel(Duplication(1.0, max_delay=0.5))
        packet = make_packet()
        deliveries = channel.process(packet, 0.0)
        assert len(deliveries) == 2
        assert deliveries[0][1] is packet
        assert deliveries[1][1] is packet
        assert deliveries[1][0] >= deliveries[0][0]
        assert channel.stats.duplicated == 1

    def test_gilbert_elliott_bursty_loss(self):
        # Certain entry into a certain-loss bad state with no exit: the
        # first packet transitions good->bad and every packet drops.
        channel = self.channel(
            GilbertElliott(p_enter_bad=1.0, p_exit_bad=0.0, loss_bad=1.0)
        )
        packet = make_packet()
        for _ in range(5):
            assert channel.process(packet, 0.0) == []
        assert channel.stats.dropped_loss == 5

    def test_spike_adds_constant_extra_inside_window(self):
        channel = self.channel(LatencySpike(1.0, 2.0, extra=0.25))
        packet = make_packet()
        assert channel.process(packet, 0.5) == [(0.0, packet)]
        assert channel.process(packet, 1.5) == [(0.25, packet)]
        assert channel.stats.spike_delayed == 1

    def test_jitter_adds_bounded_random_extra(self):
        channel = self.channel(ReorderJitter(1.0, max_delay=0.05))
        packet = make_packet()
        [(extra, _)] = channel.process(packet, 0.0)
        assert 0.0 <= extra < 0.05
        assert channel.stats.reordered == 1

    def test_same_seed_same_decisions(self):
        components = (
            GilbertElliott(p_enter_bad=0.3, p_exit_bad=0.3, loss_bad=0.7),
            Corruption(0.3),
            Duplication(0.3),
            ReorderJitter(0.3),
        )
        results = []
        for _ in range(2):
            channel = self.channel(*components, seed=9, name="pair")
            trace = []
            for index in range(50):
                deliveries = channel.process(make_packet(), float(index))
                trace.append(
                    [(extra, delivered.payload) for extra, delivered in deliveries]
                )
            results.append(trace)
        assert results[0] == results[1]


class TestNetworkWiring:
    def build(self):
        simulator = Simulator(seed=4)
        network = Network(simulator)
        network.add_host("a", "10.0.0.1")
        network.add_host("b", "10.0.0.2").bind(53, on_datagram=lambda *a: None)
        return simulator, network

    def test_set_link_faults_preserves_link_parameters(self):
        from repro.netsim.network import Link

        _, network = self.build()
        network.set_link("10.0.0.1", "10.0.0.2", Link(latency=0.5, mtu=600))
        plan = network.set_link_faults("10.0.0.1", "10.0.0.2", Corruption(0.2))
        link = network.link_between("10.0.0.1", "10.0.0.2")
        assert link.latency == 0.5
        assert link.mtu == 600
        assert link.faults is plan

    def test_inert_plan_normalised_to_no_faults(self):
        _, network = self.build()
        plan = network.set_link_faults("10.0.0.1", "10.0.0.2", Corruption(0.0))
        assert plan.is_inert
        assert network.link_between("10.0.0.1", "10.0.0.2").faults is None
        pipeline = network.pipeline_for("10.0.0.1", "10.0.0.2")
        assert pipeline.faults is None

    def test_empty_call_clears_faults(self):
        _, network = self.build()
        network.set_link_faults("10.0.0.1", "10.0.0.2", Corruption(0.5))
        network.set_link_faults("10.0.0.1", "10.0.0.2")
        assert network.link_between("10.0.0.1", "10.0.0.2").faults is None

    def test_channel_materialises_per_direction_and_survives_invalidation(self):
        _, network = self.build()
        network.set_link_faults("10.0.0.1", "10.0.0.2", Corruption(0.2))
        assert network.fault_channel("10.0.0.1", "10.0.0.2") is None
        network.pipeline_for("10.0.0.1", "10.0.0.2")
        channel = network.fault_channel("10.0.0.1", "10.0.0.2")
        assert channel is not None
        # The reverse direction carries the same plan but its own channel.
        network.pipeline_for("10.0.0.2", "10.0.0.1")
        reverse = network.fault_channel("10.0.0.2", "10.0.0.1")
        assert reverse is not None and reverse is not channel
        # Pipeline invalidation must NOT reset channel state.
        network.invalidate_pipelines()
        network.pipeline_for("10.0.0.1", "10.0.0.2")
        assert network.fault_channel("10.0.0.1", "10.0.0.2") is channel

    def test_replacing_plan_starts_fresh_channel(self):
        _, network = self.build()
        network.set_link_faults("10.0.0.1", "10.0.0.2", Corruption(0.2))
        network.pipeline_for("10.0.0.1", "10.0.0.2")
        first = network.fault_channel("10.0.0.1", "10.0.0.2")
        network.set_link_faults("10.0.0.1", "10.0.0.2", Corruption(0.4))
        network.pipeline_for("10.0.0.1", "10.0.0.2")
        second = network.fault_channel("10.0.0.1", "10.0.0.2")
        assert second is not first

    def test_fault_stats_aggregates_channels(self):
        simulator, network = self.build()
        network.set_link_faults(
            "10.0.0.1", "10.0.0.2", Partition(0.0, 1000.0)
        )
        source = network.host("10.0.0.1").bind(0)
        for _ in range(5):
            source.sendto(b"hello", "10.0.0.2", 53)
        simulator.run()
        stats = network.fault_stats()
        assert stats.dropped_partition == 5
        assert stats.dropped == 5
        assert network.packets_dropped == 5


class TestStrictSimulator:
    def test_strict_run_matches_default_run(self):
        def world(strict: bool):
            simulator = Simulator(seed=2, strict=strict)
            network = Network(simulator)
            network.add_host("a", "10.0.0.1")
            received = []
            network.add_host("b", "10.0.0.2").bind(
                53, on_datagram=lambda payload, src, port: received.append(payload)
            )
            source = network.host("10.0.0.1").bind(0)

            def send(i: int) -> None:
                source.sendto(b"m%d" % i, "10.0.0.2", 53)

            for index in range(20):
                simulator.post(index * 0.1, send, index)
            processed = simulator.run()
            return processed, simulator.now, simulator.events_processed, received

        assert world(True) == world(False)

    def test_check_invariants_passes_after_clean_run(self):
        simulator = Simulator(seed=0, strict=True)
        simulator.post(1.0, lambda _: None, 1)
        simulator.run()
        simulator.check_invariants()

    def test_check_invariants_detects_time_travel(self):
        import heapq

        simulator = Simulator(seed=0)
        simulator.post(1.0, lambda _: None, 1)
        simulator.run()
        # Tamper: an entry scheduled before the current clock.
        from repro.netsim.simulator import _EVENT, _NO_ARG

        heapq.heappush(
            simulator._queue, (simulator.now - 0.5, simulator._sequence, _EVENT, _NO_ARG)
        )
        with pytest.raises(InvariantViolation):
            simulator.check_invariants()

    def test_check_invariants_detects_accounting_mismatch(self):
        simulator = Simulator(seed=0, strict=True)
        simulator.post(1.0, lambda _: None, 1)
        simulator.run()
        simulator.events_processed += 1  # tamper with the ledger
        with pytest.raises(InvariantViolation):
            simulator.check_invariants()

    def test_spawn_named_rng_is_pure_and_does_not_shift_streams(self):
        a = Simulator(seed=7)
        b = Simulator(seed=7)
        # Same (seed, name) -> same stream, regardless of spawn history.
        a.spawn_rng()
        draws_a = a.spawn_named_rng("faults:x>y").random(4).tolist()
        draws_b = b.spawn_named_rng("faults:x>y").random(4).tolist()
        assert draws_a == draws_b
        # And a named spawn never perturbs the anonymous spawn sequence.
        follow_a = a.spawn_rng().random(4).tolist()
        b.spawn_rng()
        follow_b = b.spawn_rng().random(4).tolist()
        assert follow_a == follow_b
        assert a.spawn_named_rng("other").random(2).tolist() != draws_a[:2]
