"""Deterministic fault injection: realistic link pathologies, seeded.

The paper's off-path attacks (fragmentation poisoning, IPID prediction,
rate-limit abuse) succeed or fail depending on *real-network* pathologies —
bursty loss, reordering, duplication, corruption, transient partitions —
yet the base simulator models only i.i.d. per-link loss.  This module adds
composable, seeded per-link fault models so experiments can sweep attack
success against fault regimes while staying bit-for-bit reproducible:

* :class:`GilbertElliott` — the classic two-state bursty-loss chain (a
  *good* and a *bad* state with independent loss rates and per-packet
  transition probabilities), the standard model for correlated loss.
* :class:`ReorderJitter` — with some probability a packet picks up extra
  uniform delay, overtaking later traffic (reordering at the receiver).
* :class:`Duplication` — with some probability a packet is delivered
  twice (the duplicate may carry its own extra delay).
* :class:`Corruption` — with some probability one bit of the packet
  payload is flipped.  Corrupted packets are **not** silently dropped:
  they travel the normal delivery path and must be caught by the real
  UDP checksum verify (scalar or batched burst verify), where they count
  as derived ``udp_checksum_failures`` exactly like any other damaged
  datagram.  On links/hosts that skip verification the corruption is
  delivered — trust means trusting the fabric.
* :class:`Partition` — a scheduled blackhole window ``[start, start +
  duration)`` after which the link heals; every packet inside the window
  is dropped deterministically.
* :class:`LatencySpike` — a scheduled window adding constant extra
  latency (a congestion episode / route flap).

Components compose into a :class:`FaultPlan` attached to a link via
:meth:`repro.netsim.network.Network.set_link_faults`.  Determinism and
graceful degradation are the two design rules:

* **Determinism.**  Every random draw comes from a dedicated stream the
  owning :class:`~repro.netsim.network.Network` derives per *directed*
  address pair via :meth:`repro.netsim.simulator.Simulator.spawn_named_rng`
  — the stream is a pure function of the simulation seed and the pair, so
  attaching a fault plan never perturbs any other component's draws, and
  channel state survives pipeline-cache invalidation (the
  :class:`FaultChannel` is owned by the network, not the compiled
  pipeline).
* **Graceful degradation.**  A component with zero probability (or an
  empty window) is *inert* and is dropped when the plan is attached; a
  plan whose every component is inert compiles to nothing at all, so the
  link keeps the compiled ``DeliveryPipeline`` / ``DeliveryBurst`` fast
  paths and a zero-fault configuration is bit-identical to a fault-free
  one (property-pinned).  An active plan takes the pair off the
  coalesced fast path onto the event-for-event-equivalent slow path:
  same base-loss draws from the network RNG in the same order, same
  heap-entry scheduling, with fault decisions layered on top from the
  channel's own stream.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Mapping, Optional

from repro.netsim.errors import FaultConfigError
from repro.netsim.packet import IPv4Packet
from repro.netsim.udp import UDP_HEADER_LEN


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultConfigError(f"{name} must be a probability in [0, 1], got {value}")


def _check_non_negative(name: str, value: float) -> None:
    if value < 0.0:
        raise FaultConfigError(f"{name} must be >= 0, got {value}")


# --------------------------------------------------------------- components
@dataclass(frozen=True)
class GilbertElliott:
    """Two-state bursty loss: per-packet Markov chain over {good, bad}.

    ``p_enter_bad`` is the good→bad transition probability per packet,
    ``p_exit_bad`` the bad→good probability; ``loss_good`` / ``loss_bad``
    are the per-state loss rates.  The chain starts in the good state.
    The textbook Gilbert model is ``loss_good=0, loss_bad=1``.
    """

    p_enter_bad: float = 0.0
    p_exit_bad: float = 0.5
    loss_good: float = 0.0
    loss_bad: float = 1.0

    def __post_init__(self) -> None:
        _check_probability("p_enter_bad", self.p_enter_bad)
        _check_probability("p_exit_bad", self.p_exit_bad)
        _check_probability("loss_good", self.loss_good)
        _check_probability("loss_bad", self.loss_bad)

    @property
    def active(self) -> bool:
        """False when the chain can never drop a packet."""
        return self.loss_good > 0.0 or (self.p_enter_bad > 0.0 and self.loss_bad > 0.0)


@dataclass(frozen=True)
class ReorderJitter:
    """With ``probability``, add uniform extra delay in ``(0, max_delay)``.

    Jittered packets arrive after traffic sent later on the same link —
    reordering as the receiver observes it.
    """

    probability: float = 0.0
    max_delay: float = 0.05

    def __post_init__(self) -> None:
        _check_probability("probability", self.probability)
        _check_non_negative("max_delay", self.max_delay)

    @property
    def active(self) -> bool:
        return self.probability > 0.0 and self.max_delay > 0.0


@dataclass(frozen=True)
class Duplication:
    """With ``probability``, deliver the packet twice.

    The duplicate is scheduled after the original (same instant plus
    uniform extra delay up to ``max_delay``), mirroring how duplicated
    datagrams trail their originals on real paths.
    """

    probability: float = 0.0
    max_delay: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("probability", self.probability)
        _check_non_negative("max_delay", self.max_delay)

    @property
    def active(self) -> bool:
        return self.probability > 0.0


@dataclass(frozen=True)
class Corruption:
    """With ``probability``, flip one payload bit of the packet.

    The flipped bit lands in the datagram *body* (past the 8-byte UDP
    header) whenever the payload has one, so a single flip is always
    detectable by the RFC 768 checksum — header-only payloads flip
    within the header instead.  Detection is left entirely to the real
    delivery paths: the scalar verify and the batched burst verify both
    reject the packet and count a derived ``udp_checksum_failures``;
    non-verifying links and hosts deliver the damage.  Empty payloads
    pass through untouched.
    """

    probability: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("probability", self.probability)

    @property
    def active(self) -> bool:
        return self.probability > 0.0


@dataclass(frozen=True)
class Partition:
    """Scheduled blackhole: drop everything in ``[start, start+duration)``.

    ``start + duration`` is the heal time; traffic at or after it flows
    again.  Deterministic — no randomness is drawn for partitions.
    """

    start: float = 0.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        _check_non_negative("start", self.start)
        _check_non_negative("duration", self.duration)

    @property
    def end(self) -> float:
        """First instant at which the link is healed again."""
        return self.start + self.duration

    @property
    def active(self) -> bool:
        return self.duration > 0.0

    def covers(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class LatencySpike:
    """Scheduled congestion episode: constant ``extra`` latency in a window."""

    start: float = 0.0
    duration: float = 0.0
    extra: float = 0.0

    def __post_init__(self) -> None:
        _check_non_negative("start", self.start)
        _check_non_negative("duration", self.duration)
        _check_non_negative("extra", self.extra)

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def active(self) -> bool:
        return self.duration > 0.0 and self.extra > 0.0

    def covers(self, now: float) -> bool:
        return self.start <= now < self.end


_COMPONENT_TYPES = (
    GilbertElliott,
    ReorderJitter,
    Duplication,
    Corruption,
    Partition,
    LatencySpike,
)


# --------------------------------------------------------------------- plan
class FaultPlan:
    """A composition of fault components applied to one link.

    Components are grouped by kind and applied per packet in a fixed
    order — partitions, bursty loss, corruption, latency (spikes then
    jitter), duplication — so a plan's behaviour does not depend on the
    order components were listed.  Inert components (zero probability,
    empty windows) are discarded at construction; a plan with nothing
    left (:attr:`is_inert`) never leaves the compiled fast path.
    """

    __slots__ = (
        "partitions",
        "loss_models",
        "corruptions",
        "spikes",
        "jitters",
        "duplications",
    )

    def __init__(self, *components) -> None:
        partitions: list[Partition] = []
        loss_models: list[GilbertElliott] = []
        corruptions: list[Corruption] = []
        spikes: list[LatencySpike] = []
        jitters: list[ReorderJitter] = []
        duplications: list[Duplication] = []
        for component in components:
            if not isinstance(component, _COMPONENT_TYPES):
                raise FaultConfigError(
                    f"not a fault component: {component!r} "
                    f"(expected one of {[t.__name__ for t in _COMPONENT_TYPES]})"
                )
            if not component.active:
                continue  # inert: zero probability / empty window
            if isinstance(component, Partition):
                partitions.append(component)
            elif isinstance(component, GilbertElliott):
                loss_models.append(component)
            elif isinstance(component, Corruption):
                corruptions.append(component)
            elif isinstance(component, LatencySpike):
                spikes.append(component)
            elif isinstance(component, ReorderJitter):
                jitters.append(component)
            else:
                duplications.append(component)
        self.partitions = tuple(partitions)
        self.loss_models = tuple(loss_models)
        self.corruptions = tuple(corruptions)
        self.spikes = tuple(spikes)
        self.jitters = tuple(jitters)
        self.duplications = tuple(duplications)

    @property
    def is_inert(self) -> bool:
        """True when no component can ever alter a packet.

        Inert plans are never compiled into a pipeline: the link keeps
        the exact fast paths (and RNG behaviour) of a fault-free link.
        """
        return not (
            self.partitions
            or self.loss_models
            or self.corruptions
            or self.spikes
            or self.jitters
            or self.duplications
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for name in self.__slots__:
            values = getattr(self, name)
            if values:
                parts.append(f"{name}={list(values)!r}")
        return f"<FaultPlan {' '.join(parts) or 'inert'}>"


@dataclass(slots=True)
class FaultStats:
    """Counters for one channel (aggregated network-wide by
    :meth:`repro.netsim.network.Network.fault_stats`)."""

    packets: int = 0
    dropped_partition: int = 0
    dropped_loss: int = 0
    corrupted: int = 0
    duplicated: int = 0
    reordered: int = 0
    spike_delayed: int = 0

    @property
    def dropped(self) -> int:
        """All fault-induced drops (partitions plus bursty loss)."""
        return self.dropped_partition + self.dropped_loss

    def merge(self, other: "FaultStats") -> None:
        self.packets += other.packets
        self.dropped_partition += other.dropped_partition
        self.dropped_loss += other.dropped_loss
        self.corrupted += other.corrupted
        self.duplicated += other.duplicated
        self.reordered += other.reordered
        self.spike_delayed += other.spike_delayed

    def to_document(self) -> dict[str, int]:
        """JSON-safe counter document (field names, no derived values)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "FaultStats":
        known = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in document.items() if k in known})


# ------------------------------------------------------------------ channel
class FaultChannel:
    """Per-directed-pair fault state: the slow path behind a faulted link.

    Owned by the network (``Network._fault_channels``), *not* by the
    compiled pipeline — pipeline caches are cleared wholesale on topology
    edits, and rebuilding a channel there would silently reset the
    Gilbert–Elliott state and rewind the RNG stream.  The channel's RNG
    is a named stream derived from the simulation seed and the directed
    pair, so two channels never share draws and creation order is
    irrelevant.
    """

    __slots__ = ("plan", "stats", "_rng", "_bad_states")

    def __init__(self, plan: FaultPlan, rng) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._rng = rng
        #: One chain state per GilbertElliott component (all start good).
        self._bad_states = [False] * len(plan.loss_models)

    def process(self, packet: IPv4Packet, now: float) -> list:
        """Run one packet through the plan.

        Returns a list of ``(extra_delay, packet)`` deliveries: empty when
        the packet was dropped, one entry normally, two when duplicated.
        The packet in an entry is the original object unless corruption
        fired, in which case it is a flipped *copy* (the sender's object
        is never mutated).  All randomness comes from the channel stream;
        the caller has already applied the link's base loss from the
        network RNG, keeping base draws identical to a fault-free run.
        """
        stats = self.stats
        stats.packets += 1
        plan = self.plan
        for window in plan.partitions:
            if window.start <= now < window.end:
                stats.dropped_partition += 1
                return []
        random = self._rng.random
        if plan.loss_models:
            bad_states = self._bad_states
            for index, model in enumerate(plan.loss_models):
                bad = bad_states[index]
                # Advance the chain first (per-packet transition), then
                # draw the state's loss.  Certain/impossible loss skips
                # the loss draw so zero-loss states cost one draw only.
                if bad:
                    if model.p_exit_bad > 0.0 and random() < model.p_exit_bad:
                        bad = False
                elif model.p_enter_bad > 0.0 and random() < model.p_enter_bad:
                    bad = True
                bad_states[index] = bad
                loss = model.loss_bad if bad else model.loss_good
                if loss >= 1.0 or (loss > 0.0 and random() < loss):
                    stats.dropped_loss += 1
                    return []
        for corruption in plan.corruptions:
            if random() < corruption.probability:
                flipped = self._flip_bit(packet)
                if flipped is not None:
                    packet = flipped
                    stats.corrupted += 1
        extra = 0.0
        for spike in plan.spikes:
            if spike.start <= now < spike.end:
                extra += spike.extra
                stats.spike_delayed += 1
        for jitter in plan.jitters:
            if random() < jitter.probability:
                extra += random() * jitter.max_delay
                stats.reordered += 1
        deliveries = [(extra, packet)]
        for duplication in plan.duplications:
            if random() < duplication.probability:
                dup_extra = extra
                if duplication.max_delay > 0.0:
                    dup_extra += random() * duplication.max_delay
                deliveries.append((dup_extra, packet))
                stats.duplicated += 1
        return deliveries

    def _flip_bit(self, packet: IPv4Packet) -> Optional[IPv4Packet]:
        """One-bit payload corruption on a copy of the packet.

        The bit lands past the UDP header when the payload has a body
        (guaranteeing the RFC 768 checksum detects the flip — see
        :class:`Corruption`); header-only payloads flip within the
        header; empty payloads cannot be corrupted.
        """
        payload = packet.payload
        size = len(payload)
        if size == 0:
            return None
        first = UDP_HEADER_LEN if size > UDP_HEADER_LEN else 0
        index = first + int(self._rng.integers(0, size - first))
        bit = 1 << int(self._rng.integers(0, 8))
        corrupted = bytearray(payload)
        corrupted[index] ^= bit
        copy = packet.copy(payload=bytes(corrupted))
        copy.metadata["corrupted"] = True  # ground truth for experiments
        return copy


# ----------------------------------------------------------------- schedules
class FaultSchedule:
    """An ordered sequence of fault-regime swaps for one link.

    Each entry is ``(time, components)``: at simulated ``time`` the link's
    fault plan is replaced by a plan composed from ``components`` (an
    empty tuple retires all faults — the link heals).  Times are absolute
    simulator-clock instants, strictly increasing; entries at or before
    "now" apply immediately when the schedule is attached, later entries
    become scheduled events (see :meth:`repro.netsim.network.Network.
    apply_fault_schedule`).  Swaps preserve the pair's accumulated
    :class:`FaultStats` and draw from fresh epoch-tagged named streams,
    so a multi-phase campaign neither zeroes its counters nor rewinds a
    channel's randomness mid-run.

    A schedule whose every entry composes to an inert plan is *inert*
    (:attr:`is_inert`): attaching it does nothing at all, preserving the
    bit-identity of fault-free runs.
    """

    __slots__ = ("entries",)

    def __init__(self, entries) -> None:
        normalised: list[tuple[float, tuple]] = []
        previous = None
        for entry in entries:
            try:
                time, components = entry
            except (TypeError, ValueError) as exc:
                raise FaultConfigError(
                    f"schedule entries are (time, components) pairs, got {entry!r}"
                ) from exc
            time = float(time)
            _check_non_negative("schedule entry time", time)
            if previous is not None and time <= previous:
                raise FaultConfigError(
                    f"schedule entry times must be strictly increasing, got "
                    f"{time} after {previous}"
                )
            previous = time
            if isinstance(components, FaultPlan):
                raise FaultConfigError(
                    "schedule entries carry loose components (they are "
                    "re-composed per link), not pre-built FaultPlans"
                )
            components = tuple(components)
            FaultPlan(*components)  # validate types now, not at swap time
            normalised.append((time, components))
        self.entries = tuple(normalised)

    @property
    def is_inert(self) -> bool:
        """True when no entry would ever attach an active component."""
        return all(
            FaultPlan(*components).is_inert for _, components in self.entries
        )

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{time:g}s:{len(components)}c" for time, components in self.entries
        )
        return f"<FaultSchedule {parts or 'empty'}>"
