"""Shared-resolver discovery (paper section VIII-B3).

The attack needs *something* to trigger the victim resolver's query for the
pool domain.  NTP itself queries rarely and at unpredictable times, but other
systems sharing the same resolver — web clients, mail servers performing
anti-spam DNS lookups, or simply the resolver being open — can be made to
issue queries on demand.  The paper measures how often such a trigger is
available:

1. resolvers used by web clients are discovered through the ad network
   (each ad impression reveals the client's resolver to the test domain's
   nameserver),
2. each resolver is probed directly to see whether it is an open resolver,
3. a small port scan of the resolver's /24 network looks for SMTP servers;
   a test e-mail that bounces reveals whether the SMTP server uses the same
   resolver.

The published breakdown over 18,668 resolvers: 86.2 % web-only, 11.3 % web +
SMTP, 2.3 % open, 0.2 % open + SMTP — at least 13.8 % of the resolvers can be
made to issue attacker-chosen queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.measurement.population import SharedResolverSpec


@dataclass
class SharedResolverReport:
    """Aggregate breakdown of resolver trigger-ability."""

    total_resolvers: int
    web_only: int
    web_and_smtp: int
    open_resolvers: int
    open_and_smtp: int
    results: list[SharedResolverSpec] = field(default_factory=list)

    @property
    def triggerable(self) -> int:
        """Resolvers for which the attacker can trigger queries (SMTP or open)."""
        return self.web_and_smtp + self.open_resolvers + self.open_and_smtp

    @property
    def triggerable_fraction(self) -> float:
        """The >= 13.8 % lower bound reported by the paper."""
        return self.triggerable / self.total_resolvers if self.total_resolvers else 0.0

    def fractions(self) -> dict[str, float]:
        """The four category fractions of section VIII-B3."""
        total = self.total_resolvers or 1
        return {
            "web_only": self.web_only / total,
            "web_and_smtp": self.web_and_smtp / total,
            "open": self.open_resolvers / total,
            "open_and_smtp": self.open_and_smtp / total,
        }


class SharedResolverStudy:
    """Classifies each web-client resolver by the available query triggers."""

    def __init__(self, resolvers: list[SharedResolverSpec]) -> None:
        self.resolvers = resolvers

    @staticmethod
    def probe_open(spec: SharedResolverSpec) -> bool:
        """Step 2: send a direct query; open resolvers answer it."""
        return spec.is_open_resolver

    @staticmethod
    def probe_smtp_trigger(spec: SharedResolverSpec) -> bool:
        """Step 3: scan the /24 for SMTP, send a bouncing test e-mail.

        The bounce processing causes a DNS query that arrives at the
        attacker's nameserver from the resolver under test exactly when the
        SMTP server shares it; in the synthetic population that ground truth
        is the ``smtp_server_in_slash24`` flag.
        """
        return spec.smtp_server_in_slash24

    def run(self) -> SharedResolverReport:
        """Classify every resolver and aggregate the four categories."""
        web_only = web_and_smtp = open_only = open_and_smtp = 0
        for spec in self.resolvers:
            is_open = self.probe_open(spec)
            has_smtp = self.probe_smtp_trigger(spec)
            if is_open and has_smtp:
                open_and_smtp += 1
            elif is_open:
                open_only += 1
            elif has_smtp:
                web_and_smtp += 1
            else:
                web_only += 1
        return SharedResolverReport(
            total_resolvers=len(self.resolvers),
            web_only=web_only,
            web_and_smtp=web_and_smtp,
            open_resolvers=open_only,
            open_and_smtp=open_and_smtp,
            results=list(self.resolvers),
        )
