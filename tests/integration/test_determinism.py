"""Bit-for-bit determinism of a fixed-seed Table II scenario.

The golden values below were captured by running the *seed* implementation
(git fc48653, before the netsim fast-path rework) with pool_size=48, seed=5,
ntpd client, P1 scenario.  The fast path must reproduce them exactly — same
success flag, same attack duration, same clock shift to the last float bit,
same event and packet counts — proving the performance rework changed no
simulation semantics.
"""

from __future__ import annotations

from repro.experiments import ExperimentRunner, RunSpec

#: Captured from the seed implementation; do not "refresh" these on failure —
#: a mismatch means the simulator's behaviour changed.
GOLDEN = {
    "success": True,
    "minutes": 15.5,
    "shift": -500.00999995431766,
    "events_processed": 48106,
    "packets_transmitted": 24730,
}


def run_fixed_seed_scenario() -> dict:
    from repro.core.run_time import RunTimeAttack, RunTimeScenario
    from repro.ntp.clients import NtpdClient
    from repro.testbed import TestbedConfig, build_testbed

    testbed = build_testbed(TestbedConfig(pool_size=48, seed=5))
    victim = testbed.add_client(NtpdClient)
    victim.start()
    testbed.run_for(1500)
    attack = RunTimeAttack(
        testbed.attacker,
        testbed.simulator,
        testbed.resolver,
        victim,
        scenario=RunTimeScenario.P1_KNOWN_SERVERS,
        known_server_list=testbed.pool.addresses,
        max_duration=3600.0 * 3,
    )
    result = attack.run()
    return {
        "success": result.success,
        "minutes": result.attack_duration_minutes,
        "shift": result.clock_shift_achieved,
        "events_processed": testbed.simulator.events_processed,
        "packets_transmitted": testbed.network.packets_transmitted,
        "final_time": testbed.simulator.now,
    }


class TestFixedSeedDeterminism:
    def test_table2_scenario_matches_seed_implementation_exactly(self):
        observed = run_fixed_seed_scenario()
        for key, expected in GOLDEN.items():
            assert observed[key] == expected, (key, observed[key], expected)

    def test_experiment_engine_reproduces_direct_run(self):
        """The engine's scenario wrapper must not perturb a single bit."""
        outcome = ExperimentRunner(max_workers=1).run(
            [RunSpec.make("table2_runtime_attack", client="ntpd", attack="P1", seed=5)]
        )[0]
        assert outcome.ok, outcome.error
        for key in GOLDEN:
            assert outcome.result[key] == GOLDEN[key], key

    def test_two_runs_identical(self):
        assert run_fixed_seed_scenario() == run_fixed_seed_scenario()
