"""Section VI-C — the DNS poisoning attack against Chronos.

Reproduces both the analytic bound (89 addresses per response, success iff
the poisoning lands before the 12th of the 24 hourly lookups) and the
simulated end-to-end attack, including the comparison the paper draws: the
attacker gets 12 chances against Chronos versus a single boot-time lookup
against plain NTP.
"""

from __future__ import annotations

import pytest

from repro.core.chronos_attack import (
    ChronosAttack,
    attack_windows,
    max_addresses_in_response,
    max_honest_lookups_tolerated,
)
from repro.measurement.report import format_table
from repro.ntp.chronos.client import ChronosConfig
from repro.ntp.chronos.pool_generation import PoolGenerationConfig
from repro.testbed import TestbedConfig, build_testbed


def run_sweep():
    outcomes = []
    for poison_after in (2, 6, 10, 16, 20):
        testbed = build_testbed(TestbedConfig(pool_size=160, seed=300 + poison_after))
        victim = testbed.add_chronos_client(
            config=ChronosConfig(
                pool_generation=PoolGenerationConfig(lookup_interval=300.0, total_lookups=24),
                servers_per_round=11,
                poll_interval=150.0,
            )
        )
        attack = ChronosAttack(
            attacker=testbed.attacker,
            simulator=testbed.simulator,
            resolver=testbed.resolver,
            victim=victim,
        )
        outcomes.append(attack.run(poison_after_lookups=poison_after, observe_rounds=3))
    return outcomes


def test_chronos_analytic_bounds(run_once):
    def compute():
        return (
            max_addresses_in_response(),
            max_honest_lookups_tolerated(),
            attack_windows(),
        )

    addresses, lookups, windows = run_once(compute)
    print(f"\nmax addresses per response: {addresses} (paper: 89), "
          f"max honest lookups tolerated: {lookups} (paper: 11), "
          f"attack windows in 24 h: {windows} (paper: 12)")
    assert addresses == 89
    assert lookups == 11
    assert windows == 12


def test_chronos_attack_sweep(run_once):
    outcomes = run_once(run_sweep)
    print()
    print(
        format_table(
            ["Poison after N lookups", "Honest in pool", "Attacker in pool",
             "Attacker share", "> 2/3", "Clock shift (s)", "Success"],
            [
                [
                    o.poisoning_lookup_index,
                    o.honest_addresses_in_pool,
                    o.attacker_addresses_in_pool,
                    f"{o.attacker_fraction * 100:.1f}%",
                    o.attacker_controls_pool,
                    f"{o.clock_shift_achieved:+.1f}",
                    o.success,
                ]
                for o in outcomes
            ],
            title="Section VI-C — Chronos pool poisoning sweep (89 injected addresses)",
        )
    )
    by_n = {o.poisoning_lookup_index: o for o in outcomes}
    # Early poisonings (within the paper's 12-lookup window) fully succeed.
    for n in (2, 6, 10):
        assert by_n[n].attacker_controls_pool
        assert by_n[n].success
        assert by_n[n].clock_shift_achieved == pytest.approx(-500.0, abs=5.0)
        assert by_n[n].pool_generation_ended_early
    # Late poisonings no longer give guaranteed (2/3) control.
    for n in (16, 20):
        assert not by_n[n].attacker_controls_pool
    # Attacker control decreases monotonically with later poisoning.
    fractions = [by_n[n].attacker_fraction for n in (2, 6, 10, 16, 20)]
    assert fractions == sorted(fractions, reverse=True)
