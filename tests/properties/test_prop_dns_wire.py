"""Property-based tests for the DNS wire format."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.message import DNSMessage, record_offsets
from repro.dns.names import decode_name, encode_name, normalize_name
from repro.dns.records import RRType, a_record, ns_record, txt_record

labels = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=15).filter(
    lambda s: not s.startswith("-") and not s.endswith("-")
)
names = st.lists(labels, min_size=1, max_size=5).map(".".join)
octets = st.integers(min_value=0, max_value=255)
addresses = st.tuples(octets, octets, octets, octets).map(lambda t: ".".join(map(str, t)))
ttls = st.integers(min_value=0, max_value=7 * 24 * 3600)
txids = st.integers(min_value=0, max_value=0xFFFF)


class TestNameProperties:
    @given(names)
    def test_encode_decode_round_trip(self, name):
        wire = encode_name(name)
        decoded, consumed = decode_name(wire, 0)
        assert decoded == normalize_name(name)
        assert consumed == len(wire)

    @given(names)
    def test_normalisation_idempotent(self, name):
        assert normalize_name(normalize_name(name)) == normalize_name(name)


class TestMessageProperties:
    @given(
        names,
        st.lists(addresses, min_size=1, max_size=30),
        ttls,
        txids,
    )
    @settings(max_examples=150)
    def test_response_round_trip(self, name, addrs, ttl, txid):
        query = DNSMessage.query(name, txid=txid)
        response = query.make_response(answers=[a_record(name, a, ttl=ttl) for a in addrs])
        decoded = DNSMessage.decode(response.encode())
        assert decoded.txid == txid
        assert decoded.question.name == normalize_name(name)
        assert [str(r.data) for r in decoded.answers] == addrs
        assert all(r.ttl == ttl for r in decoded.answers)

    @given(names, st.lists(addresses, min_size=1, max_size=20), txids)
    @settings(max_examples=100)
    def test_record_offsets_locate_every_record(self, name, addrs, txid):
        query = DNSMessage.query(name, txid=txid)
        response = query.make_response(answers=[a_record(name, a, ttl=60) for a in addrs])
        response.authority.append(ns_record(name, f"ns1.{name}"))
        response.additional.append(txt_record(name, "padding"))
        encoded = response.encode()
        offsets = record_offsets(encoded)
        assert len(offsets) == len(addrs) + 2
        for info, record in zip(offsets[: len(addrs)], response.answers):
            assert info.rtype is RRType.A
            assert encoded[info.rdata_offset : info.rdata_offset + 4] == bytes(
                int(x) for x in str(record.data).split(".")
            )
        assert offsets[-1].end_offset == len(encoded)

    @given(names, st.lists(addresses, min_size=1, max_size=10))
    @settings(max_examples=100)
    def test_compression_never_larger_than_uncompressed(self, name, addrs):
        response = DNSMessage.query(name).make_response(
            answers=[a_record(name, a) for a in addrs]
        )
        encoded = response.encode()
        # Upper bound: header + question + per-record full name encodings.
        question_len = len(encode_name(name)) + 4
        per_record_upper = len(encode_name(name)) + 10 + 4
        assert len(encoded) <= 12 + question_len + per_record_upper * len(addrs)
