"""Figure 6 — TTL values of cached NTP pool records in open resolvers.

The sanity check behind the cache-snooping study: the remaining TTLs of
cached ``pool.ntp.org`` records observed through RD=0 probes should be
uniformly distributed over [0, 150] seconds if the caching inference is
correct.  The benchmark rebuilds the histogram and tests its flatness.
"""

from __future__ import annotations

import numpy as np

from repro.measurement.cache_snooping import CacheSnoopingStudy
from repro.measurement.population import ResolverPopulationParameters, generate_open_resolvers
from repro.measurement.report import format_table


def run_study(size=40_000):
    resolvers = generate_open_resolvers(ResolverPopulationParameters(size=size))
    return CacheSnoopingStudy(resolvers).run()


def test_fig6_ttl_histogram(run_once):
    report = run_once(run_study)
    counts, edges = report.ttl_histogram(bins=15)
    print()
    print(
        format_table(
            ["TTL bin (s)", "Resolvers"],
            [
                [f"{edges[i]:.0f} – {edges[i + 1]:.0f}", int(counts[i])]
                for i in range(len(counts))
            ],
            title="Figure 6 — TTLs of cached pool.ntp.org records in open resolvers",
        )
    )
    assert counts.sum() == len(report.observed_ttls)
    assert len(report.observed_ttls) > 10_000
    # Uniformity: every bin within 20 % of the mean, coefficient of variation small.
    mean = counts.mean()
    assert np.all(np.abs(counts - mean) < 0.2 * mean)
    assert float(np.std(counts) / mean) < 0.08
    # TTLs never exceed the 150 s record TTL.
    assert max(report.observed_ttls) <= 150.0
