"""Table II — run-time attack duration against different clients.

The paper's lab measurements: ntpd/P2 47 min, ntpd/P1 17 min, "openntpd"/P1
84 min (a row we reproduce with the slow SNTP failover behaviour of
systemd-timesyncd, see DESIGN.md), chrony/P1 57 min.  The benchmark replays
the same experiment — a synchronised client, a directly poisoned resolver,
and the rate-limit-abuse association removal — with the default client models
and reports the measured durations.  Absolute values depend on the documented
model parameters; the ordering (P1 < P2 < chrony < slowest SNTP failover) is
the reproduced shape.
"""

from __future__ import annotations

import pytest

from repro.core.run_time import RunTimeAttack, RunTimeScenario
from repro.measurement.report import format_table
from repro.ntp.clients import ChronyClient, NtpdClient, SystemdTimesyncdClient
from repro.testbed import TestbedConfig, build_testbed

#: Paper Table II, minutes.
PAPER_TABLE2 = {
    ("ntpd", "P2"): 47.0,
    ("ntpd", "P1"): 17.0,
    ("openntpd*", "P1"): 84.0,
    ("chrony", "P1"): 57.0,
}

SCENARIOS = [
    ("ntpd", NtpdClient, RunTimeScenario.P2_REFID_DISCOVERY),
    ("ntpd", NtpdClient, RunTimeScenario.P1_KNOWN_SERVERS),
    ("openntpd*", SystemdTimesyncdClient, RunTimeScenario.P1_KNOWN_SERVERS),
    ("chrony", ChronyClient, RunTimeScenario.P1_KNOWN_SERVERS),
]


def run_scenario(label, client_cls, scenario, seed=5):
    testbed = build_testbed(TestbedConfig(pool_size=48, seed=seed))
    victim = testbed.add_client(client_cls)
    victim.start()
    testbed.run_for(1500)
    attack = RunTimeAttack(
        testbed.attacker,
        testbed.simulator,
        testbed.resolver,
        victim,
        scenario=scenario,
        known_server_list=testbed.pool.addresses,
        max_duration=3600.0 * 3,
    )
    result = attack.run()
    return {
        "label": label,
        "scenario": scenario.value,
        "success": result.success,
        "minutes": result.attack_duration_minutes,
        "shift": result.clock_shift_achieved,
    }


def run_table2():
    return [run_scenario(label, cls, scenario) for label, cls, scenario in SCENARIOS]


def test_table2_runtime_attack_durations(run_once):
    rows = run_once(run_table2)
    print()
    print(
        format_table(
            ["Client", "Scenario", "Success", "Measured (min)", "Paper (min)", "Shift (s)"],
            [
                [
                    r["label"],
                    r["scenario"],
                    r["success"],
                    None if r["minutes"] is None else round(r["minutes"], 1),
                    PAPER_TABLE2[(r["label"], r["scenario"])],
                    round(r["shift"], 1),
                ]
                for r in rows
            ],
            title="Table II — run-time attack duration",
        )
    )
    results = {(r["label"], r["scenario"]): r for r in rows}
    # Every attack succeeds and applies the -500 s shift.
    for row in rows:
        assert row["success"], row
        assert row["shift"] == pytest.approx(-500.0, abs=5.0)
    # Shape: P1 against ntpd is the fastest, P2 is markedly slower, chrony is
    # slower than ntpd/P2, and the SNTP sequential-failover row is slowest.
    ntpd_p1 = results[("ntpd", "P1")]["minutes"]
    ntpd_p2 = results[("ntpd", "P2")]["minutes"]
    chrony = results[("chrony", "P1")]["minutes"]
    slowest = results[("openntpd*", "P1")]["minutes"]
    assert ntpd_p1 < ntpd_p2 < chrony < slowest
    # Durations are in the tens-of-minutes regime the paper reports.
    assert 5 <= ntpd_p1 <= 35
    assert 20 <= ntpd_p2 <= 70
    assert 30 <= chrony <= 90
    assert 45 <= slowest <= 120
