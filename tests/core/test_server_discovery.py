"""Tests for upstream-server discovery (section IV-B2 a/b/c)."""

from repro.core.server_discovery import (
    discover_via_config_interface,
    discover_via_pool_enumeration,
    discover_via_refid_leak,
)
from repro.ntp.clients.base import NTPClientConfig
from repro.ntp.clients.ntpd import NtpdClient
from repro.ntp.pool import country_zone_names
from repro.ntp.server import NTPServerConfig
from repro.testbed import NAMESERVER_IP


class TestPoolEnumeration:
    def test_repeated_queries_discover_most_of_the_pool(self, small_testbed):
        discovered = []
        discover_via_pool_enumeration(
            small_testbed.attacker,
            small_testbed.simulator,
            nameserver_ip=NAMESERVER_IP,
            query_names=country_zone_names(),
            queries_per_name=8,
            query_interval=0.5,
            on_done=discovered.append,
        )
        small_testbed.run_for(120)
        assert discovered
        # 80 queries x 4 random addresses cover most of the 24-server pool.
        assert len(discovered[0]) >= len(small_testbed.pool.addresses) * 0.8
        assert discovered[0] <= set(small_testbed.pool.addresses)

    def test_enumeration_counts_queries(self, small_testbed):
        before = small_testbed.attacker.stats.own_queries_sent
        discover_via_pool_enumeration(
            small_testbed.attacker,
            small_testbed.simulator,
            NAMESERVER_IP,
            ["pool.ntp.org"],
            queries_per_name=4,
        )
        small_testbed.run_for(20)
        assert small_testbed.attacker.stats.own_queries_sent == before + 4


class TestRefidLeak:
    def test_discovers_victim_upstream_servers(self, small_testbed):
        client = small_testbed.add_client(NtpdClient)
        client.start()
        small_testbed.run_for(200)
        observed = []
        stop = discover_via_refid_leak(
            small_testbed.attacker,
            small_testbed.simulator,
            victim_ip=client.host.ip,
            on_peer=observed.append,
            probe_interval=16.0,
        )
        small_testbed.run_for(120)
        stop()
        assert observed
        assert set(observed) <= set(client.usable_server_ips())

    def test_each_peer_reported_once(self, small_testbed):
        client = small_testbed.add_client(NtpdClient)
        client.start()
        small_testbed.run_for(200)
        observed = []
        stop = discover_via_refid_leak(
            small_testbed.attacker,
            small_testbed.simulator,
            client.host.ip,
            observed.append,
            probe_interval=8.0,
        )
        small_testbed.run_for(300)
        stop()
        assert len(observed) == len(set(observed))

    def test_silent_victim_reveals_nothing(self, small_testbed):
        """Clients that do not act as servers (chrony, SNTP) leak nothing."""
        config = NtpdClient.default_config()
        config.act_as_server = False
        client = small_testbed.add_client(NtpdClient, config=config)
        client.start()
        small_testbed.run_for(200)
        observed = []
        stop = discover_via_refid_leak(
            small_testbed.attacker, small_testbed.simulator, client.host.ip, observed.append
        )
        small_testbed.run_for(200)
        stop()
        assert observed == []


class TestConfigInterface:
    def test_open_interface_reveals_upstream(self, small_testbed):
        target = small_testbed.pool.addresses[0]
        server = small_testbed.pool.servers[target]
        server.config.open_config_interface = True
        server.config.upstream_server = "198.51.100.200"
        results = []
        discover_via_config_interface(
            small_testbed.attacker, small_testbed.simulator, target, results.append
        )
        small_testbed.run_for(10)
        assert results == [["198.51.100.200"]]

    def test_closed_interface_times_out_empty(self, small_testbed):
        target = small_testbed.pool.addresses[1]
        small_testbed.pool.servers[target].config.open_config_interface = False
        results = []
        discover_via_config_interface(
            small_testbed.attacker, small_testbed.simulator, target, results.append, timeout=2.0
        )
        small_testbed.run_for(10)
        assert results == [[]]
