"""Tests for association removal via rate-limit abuse (section IV-B2)."""

from repro.core.rate_limit_abuse import AssociationRemover
from repro.ntp.clients.base import NTPClientConfig
from repro.ntp.clients.ntpd import NtpdClient


def fast_ntpd_config() -> NTPClientConfig:
    config = NtpdClient.default_config()
    config.pool_domains = ["pool.ntp.org"]
    config.desired_associations = 4
    config.min_associations = 3
    config.unreachable_after = 4
    config.poll_interval = 32.0
    return config


class TestCampaignMechanics:
    def test_spoofed_queries_sent_at_configured_interval(self, small_testbed):
        remover = AssociationRemover(
            small_testbed.attacker, small_testbed.simulator, victim_ip="192.0.2.150", query_interval=2.0
        )
        target = small_testbed.pool.addresses[0]
        remover.target(target)
        small_testbed.run_for(60)
        campaign = remover.campaigns[target]
        assert 25 <= campaign.queries_sent <= 35
        remover.stop(target)
        sent = campaign.queries_sent
        small_testbed.run_for(60)
        assert campaign.queries_sent == sent

    def test_target_is_idempotent(self, small_testbed):
        remover = AssociationRemover(small_testbed.attacker, small_testbed.simulator, "192.0.2.150")
        target = small_testbed.pool.addresses[0]
        first = remover.target(target)
        second = remover.target(target)
        assert first is second
        assert remover.stats.campaigns_started == 1

    def test_target_many_and_active_targets(self, small_testbed):
        remover = AssociationRemover(small_testbed.attacker, small_testbed.simulator, "192.0.2.150")
        targets = small_testbed.pool.addresses[:5]
        remover.target_many(targets)
        assert set(remover.active_targets()) == set(targets)
        remover.stop()
        assert remover.active_targets() == []

    def test_server_rate_limits_the_victim_not_the_attacker(self, small_testbed):
        victim_ip = "192.0.2.150"
        target = small_testbed.pool.addresses[0]
        remover = AssociationRemover(small_testbed.attacker, small_testbed.simulator, victim_ip)
        remover.target(target)
        small_testbed.run_for(120)
        server = small_testbed.pool.servers[target]
        assert server.is_rate_limiting(victim_ip)
        assert not server.is_rate_limiting(small_testbed.attacker.query_host.ip)


class TestBatchedRounds:
    def test_batched_rounds_match_per_campaign_outcomes(self):
        """Batched mode (one event per round, transmit_batch burst) must
        rate-limit the same servers with the same query volume as the
        default per-campaign scheduling — only the event-loop shape may
        differ."""
        from repro.testbed import TestbedConfig, build_testbed

        def run(batched: bool):
            testbed = build_testbed(TestbedConfig(pool_size=24, seed=7))
            victim_ip = "192.0.2.150"
            remover = AssociationRemover(
                testbed.attacker,
                testbed.simulator,
                victim_ip,
                query_interval=2.0,
                batched=batched,
            )
            targets = testbed.pool.addresses[:6]
            remover.target_many(targets)
            testbed.run_for(120)
            limited = sorted(
                ip
                for ip in targets
                if testbed.pool.servers[ip].is_rate_limiting(victim_ip)
            )
            per_campaign = sorted(
                remover.campaigns[ip].queries_sent for ip in targets
            )
            return limited, per_campaign, remover.stats.spoofed_queries_sent

        assert run(batched=False) == run(batched=True)

    def test_batched_round_stops_when_all_campaigns_stop(self, small_testbed):
        remover = AssociationRemover(
            small_testbed.attacker,
            small_testbed.simulator,
            "192.0.2.150",
            query_interval=2.0,
            batched=True,
        )
        remover.target_many(small_testbed.pool.addresses[:3])
        small_testbed.run_for(20)
        remover.stop()
        sent = remover.stats.spoofed_queries_sent
        small_testbed.run_for(60)
        assert remover.stats.spoofed_queries_sent == sent

    def test_batched_target_restarts_round_loop(self, small_testbed):
        remover = AssociationRemover(
            small_testbed.attacker,
            small_testbed.simulator,
            "192.0.2.150",
            query_interval=2.0,
            batched=True,
        )
        first = small_testbed.pool.addresses[0]
        remover.target(first)
        small_testbed.run_for(10)
        remover.stop()
        small_testbed.run_for(10)  # round loop drains
        second = small_testbed.pool.addresses[1]
        remover.target(second)
        small_testbed.run_for(20)
        assert remover.campaigns[second].queries_sent >= 5

    def test_negative_interval_rejected(self, small_testbed):
        import pytest

        with pytest.raises(ValueError):
            AssociationRemover(
                small_testbed.attacker,
                small_testbed.simulator,
                "192.0.2.150",
                query_interval=-1.0,
            )


class TestEffectOnClients:
    def test_victim_associations_become_unreachable(self, small_testbed):
        client = small_testbed.add_client(NtpdClient, config=fast_ntpd_config())
        client.start()
        small_testbed.run_for(200)
        assert len(client.usable_server_ips()) == 4
        remover = AssociationRemover(
            small_testbed.attacker, small_testbed.simulator, victim_ip=client.host.ip
        )
        remover.target_many(client.usable_server_ips())
        small_testbed.run_for(900)
        assert client.stats.associations_removed >= 3
        assert client.stats.runtime_dns_lookups >= 1

    def test_non_rate_limiting_servers_resist_removal(self):
        """Ablation: if the victim's servers do not rate limit, spoofed
        queries change nothing (the probabilistic limit behind Table III)."""
        from repro.testbed import TestbedConfig, build_testbed

        testbed = build_testbed(
            TestbedConfig(pool_size=24, seed=33, pool_rate_limit_fraction=0.0)
        )
        client = testbed.add_client(NtpdClient, config=fast_ntpd_config())
        client.start()
        testbed.run_for(200)
        remover = AssociationRemover(testbed.attacker, testbed.simulator, client.host.ip)
        remover.target_many(client.usable_server_ips())
        testbed.run_for(900)
        assert client.stats.associations_removed == 0
        assert client.stats.runtime_dns_lookups == 0
        assert abs(client.clock_error()) < 1.0
