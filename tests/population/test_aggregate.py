"""Streaming aggregates: histograms, merges, and numpy-free operation."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.population.aggregate import FixedBinHistogram, StreamingAggregate

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


class TestFixedBinHistogram:
    def test_validation(self):
        with pytest.raises(ValueError):
            FixedBinHistogram(0.0, 10.0, 0)
        with pytest.raises(ValueError):
            FixedBinHistogram(5.0, 5.0, 4)

    def test_add_routes_to_bins_and_overflow(self):
        histogram = FixedBinHistogram(0.0, 10.0, 10)
        for value in (-1.0, 0.0, 5.5, 9.999, 10.0, 42.0):
            histogram.add(value)
        assert histogram.total == 6
        assert histogram.underflow == 1
        assert histogram.overflow == 2
        assert histogram.counts[0] == 1
        assert histogram.counts[5] == 1
        assert histogram.counts[9] == 1

    def test_add_many_matches_add(self):
        values = [x * 0.37 - 3.0 for x in range(200)]
        one_by_one = FixedBinHistogram(0.0, 50.0, 25)
        for value in values:
            one_by_one.add(value)
        bulk = FixedBinHistogram(0.0, 50.0, 25)
        bulk.add_many(values)
        assert bulk.to_document() == one_by_one.to_document()

    def test_merge_is_associative_accumulation(self):
        a = FixedBinHistogram(0.0, 10.0, 10)
        b = FixedBinHistogram(0.0, 10.0, 10)
        a.add_many([1.0, 2.0, 11.0])
        b.add_many([-1.0, 2.0, 3.0])
        merged = FixedBinHistogram.from_document(a.to_document())
        merged.merge(b)
        everything = FixedBinHistogram(0.0, 10.0, 10)
        everything.add_many([1.0, 2.0, 11.0, -1.0, 2.0, 3.0])
        assert merged.to_document() == everything.to_document()

    def test_merge_rejects_mismatched_binning(self):
        with pytest.raises(ValueError, match="different binning"):
            FixedBinHistogram(0.0, 10.0, 10).merge(FixedBinHistogram(0.0, 10.0, 5))

    def test_quantiles(self):
        histogram = FixedBinHistogram(0.0, 100.0, 100)
        histogram.add_many(float(v) for v in range(100))
        assert histogram.quantile(0.0) == pytest.approx(0.5)
        assert histogram.quantile(0.5) == pytest.approx(50.0, abs=1.0)
        assert histogram.quantile(1.0) == pytest.approx(99.5, abs=1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_quantile_empty_is_none(self):
        assert FixedBinHistogram(0.0, 1.0, 4).quantile(0.5) is None

    def test_quantile_clamps_to_edges_for_outliers(self):
        histogram = FixedBinHistogram(0.0, 10.0, 10)
        histogram.add_many([-5.0, -4.0, 20.0, 30.0])
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 10.0

    def test_document_round_trip(self):
        histogram = FixedBinHistogram(-5.0, 5.0, 20)
        histogram.add_many([-6.0, -1.0, 0.0, 4.9, 5.0])
        restored = FixedBinHistogram.from_document(histogram.to_document())
        assert restored.to_document() == histogram.to_document()

    def test_from_document_rejects_wrong_count_length(self):
        document = FixedBinHistogram(0.0, 1.0, 4).to_document()
        document["counts"] = [0, 0]
        with pytest.raises(ValueError):
            FixedBinHistogram.from_document(document)


class TestStreamingAggregate:
    def test_fold_counts_and_rates(self):
        aggregate = StreamingAggregate()
        aggregate.fold("ntpd", True, shift=-500.0, minutes=15.5)
        aggregate.fold("ntpd", False)
        aggregate.fold("chrony", True, shift=100.0, minutes=60.0)
        assert aggregate.total == 3
        assert aggregate.successes == 2
        assert aggregate.success_rate == pytest.approx(2 / 3)
        document = aggregate.to_document()
        assert document["by_type"]["ntpd"] == {"runs": 2, "successes": 1}
        assert document["by_type"]["chrony"] == {"runs": 1, "successes": 1}
        assert document["shift_histogram"]["total"] == 2

    def test_merge_equals_single_fold(self):
        left, right, everything = (
            StreamingAggregate(),
            StreamingAggregate(),
            StreamingAggregate(),
        )
        rows = [
            ("ntpd", True, -400.0, 20.0),
            ("chrony", False, None, None),
            ("ntpd", True, -510.0, 16.0),
            ("android", False, 3.0, 180.0),
        ]
        for index, (kind, ok, shift, minutes) in enumerate(rows):
            target = left if index % 2 == 0 else right
            target.fold(kind, ok, shift=shift, minutes=minutes)
            everything.fold(kind, ok, shift=shift, minutes=minutes)
        left.merge(right)
        assert left.to_document() == everything.to_document()

    def test_document_round_trip(self):
        aggregate = StreamingAggregate()
        aggregate.fold("ntpd", True, shift=-500.0, minutes=15.5)
        restored = StreamingAggregate.from_document(aggregate.to_document())
        assert restored.to_document() == aggregate.to_document()

    def test_empty_aggregate(self):
        aggregate = StreamingAggregate()
        assert aggregate.success_rate == 0.0
        assert aggregate.to_document()["shift_quantiles"]["p50"] is None


BLOCKER_PRELUDE = """
import importlib.abc
import os
import sys
import types

class _NumpyBlocker(importlib.abc.MetaPathFinder):
    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError(f"numpy blocked for this test ({name})")
        return None

sys.meta_path.insert(0, _NumpyBlocker())
assert "numpy" not in sys.modules

# aggregate.py imports nothing else from repro, so only its parent
# packages need stubbing past their __init__ (which pull in the
# numpy-requiring simulator).
_SRC = os.environ["PYTHONPATH"]
for _name in ("repro", "repro.population"):
    _pkg = types.ModuleType(_name)
    _pkg.__path__ = [os.path.join(_SRC, *_name.split("."))]
    _pkg.__package__ = _name
    sys.modules[_name] = _pkg
"""


class TestAggregateWithoutNumpy:
    def test_fold_and_quantiles_without_numpy(self):
        # The pure-python fold must import, aggregate, and produce the
        # exact document the vectorised path produces in this process.
        script = """
import json
from repro.population import aggregate

assert aggregate.np is None
histogram = aggregate.FixedBinHistogram(0.0, 50.0, 25)
histogram.add_many(x * 0.37 - 3.0 for x in range(200))
folded = aggregate.StreamingAggregate()
folded.fold("ntpd", True, shift=-500.0, minutes=15.5)
folded.fold("chrony", False, shift=2.0, minutes=None)
print(json.dumps({
    "histogram": histogram.to_document(),
    "aggregate": folded.to_document(),
}))
"""
        env = dict(os.environ, PYTHONPATH=os.path.abspath(REPO_SRC))
        process = subprocess.run(
            [sys.executable, "-c", BLOCKER_PRELUDE + script],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert process.returncode == 0, process.stderr
        blocked = json.loads(process.stdout)

        histogram = FixedBinHistogram(0.0, 50.0, 25)
        histogram.add_many(x * 0.37 - 3.0 for x in range(200))
        folded = StreamingAggregate()
        folded.fold("ntpd", True, shift=-500.0, minutes=15.5)
        folded.fold("chrony", False, shift=2.0, minutes=None)
        assert blocked["histogram"] == histogram.to_document()
        assert blocked["aggregate"] == folded.to_document()
