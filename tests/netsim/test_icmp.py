"""Tests for the ICMP model."""

from repro.netsim.icmp import FRAG_NEEDED_CODE, ICMPMessage, ICMPType, frag_needed


class TestICMPMessage:
    def test_frag_needed_factory(self):
        message = frag_needed(296)
        assert message.icmp_type is ICMPType.DEST_UNREACHABLE
        assert message.code == FRAG_NEEDED_CODE
        assert message.next_hop_mtu == 296
        assert message.is_frag_needed

    def test_other_unreachable_codes_are_not_frag_needed(self):
        message = ICMPMessage(icmp_type=ICMPType.DEST_UNREACHABLE, code=1)
        assert not message.is_frag_needed

    def test_echo_is_not_frag_needed(self):
        assert not ICMPMessage(icmp_type=ICMPType.ECHO_REQUEST).is_frag_needed

    def test_embedded_packet_carried(self):
        message = frag_needed(576, embedded=b"\x45\x00original header")
        assert message.embedded.startswith(b"\x45")
