"""Tests for the simplified DNSSEC model."""

from repro.dns.dnssec import ZoneSigningKey, sign_rrset, sign_zone, validate_rrset
from repro.dns.records import RRType, a_record
from repro.dns.zone import Zone


class TestSigning:
    def test_key_generation_is_deterministic(self):
        assert ZoneSigningKey.generate("example.org") == ZoneSigningKey.generate("example.org")
        assert ZoneSigningKey.generate("a.org") != ZoneSigningKey.generate("b.org")

    def test_sign_zone_adds_rrsig_and_dnskey(self):
        zone = Zone(origin="time.cloudflare.com")
        zone.add(a_record("time.cloudflare.com", "162.159.200.1"))
        key = ZoneSigningKey.generate(zone.origin)
        sign_zone(zone, key)
        assert zone.signed
        assert zone.lookup("time.cloudflare.com", RRType.RRSIG)
        assert zone.lookup("time.cloudflare.com", RRType.DNSKEY)

    def test_signature_validates(self):
        key = ZoneSigningKey.generate("example.org")
        rrset = [a_record("example.org", "1.2.3.4")]
        rrsig = sign_rrset(key, rrset)
        assert validate_rrset(key, rrset, [rrsig])


class TestValidationFailures:
    def test_forged_record_fails_validation(self):
        """The attacker cannot produce a valid signature for injected records."""
        key = ZoneSigningKey.generate("example.org")
        honest = [a_record("example.org", "1.2.3.4")]
        rrsig = sign_rrset(key, honest)
        forged = [a_record("example.org", "6.6.6.6")]
        assert not validate_rrset(key, forged, [rrsig])

    def test_signature_from_wrong_key_rejected(self):
        rrset = [a_record("example.org", "1.2.3.4")]
        rrsig = sign_rrset(ZoneSigningKey.generate("other.org", key_tag=9), rrset)
        assert not validate_rrset(ZoneSigningKey.generate("example.org"), rrset, [rrsig])

    def test_missing_signature_rejected(self):
        key = ZoneSigningKey.generate("example.org")
        assert not validate_rrset(key, [a_record("example.org", "1.2.3.4")], [])

    def test_empty_rrset_rejected(self):
        key = ZoneSigningKey.generate("example.org")
        assert not validate_rrset(key, [], [])

    def test_signature_order_independent(self):
        key = ZoneSigningKey.generate("example.org")
        rrset = [a_record("example.org", "1.1.1.1"), a_record("example.org", "2.2.2.2")]
        rrsig = sign_rrset(key, rrset)
        assert validate_rrset(key, list(reversed(rrset)), [rrsig])
