"""Compiled per-link delivery pipelines: the packet dispatch fast path.

PR 2's stage counters attributed ~85% of Table II wall time to
``dispatch_other`` — the Network.transmit → Link → Host.receive → defrag →
UDP-checksum → socket-deliver → handler chain, six cross-module hops per
packet.  This module collapses that chain into objects compiled once per
link and cached:

* :class:`HostDatapath` — one per host, created by ``Host.__init__``.  Its
  :meth:`~HostDatapath.deliver` method is the whole receive side (capture
  tap, fragmentation check, defrag, checksum verify, port demux, handler
  call) as a single flat function with the host's defrag cache, socket
  table, stats block and OS-profile flags pre-bound to slots.  The
  semantics are exactly those of the pre-refactor ``Host.receive`` /
  ``Host._deliver_udp`` pair — pinned by the golden determinism test —
  but without the per-packet method-call tower, property lookups, or the
  intermediate ``UDPDatagram`` allocation.
* :class:`DeliveryPipeline` — one per (src, dst) pair, compiled and cached
  by :class:`~repro.netsim.network.Network`.  It carries the resolved link
  latency, loss probability and the destination's bound deliver callable,
  so the transmit hot path is a single dict hit plus a heap push.
* :class:`LinkProfile` — opt-in *trust levels* per link.  The default
  profile performs full verification.  A ``trusted`` link (e.g. a loopback
  or lab-internal path the experimenter vouches for) skips UDP checksum
  verification and defragmentation bookkeeping for unfragmented packets.
  Trust is **off by default** — the golden fixed-seed results are produced
  entirely on default-profile links — and never changes which packets are
  delivered for well-formed traffic, only how much verification work the
  simulator performs per packet.

Stage attribution: while ``repro.perf.STAGES`` collection is enabled,
delivery routes through an instrumented twin that accumulates per-stage
wall time (``defrag``, ``checksum``, ``demux``, ``handler``) into slots on
the datapath, which registers itself with the process-wide counters so
snapshots can merge them.  Timing never feeds the simulation, so
instrumented runs remain bit-identical.

Private-attribute access: the flat paths read ``Simulator._now``,
``DefragmentationCache._buckets`` and ``Host._sockets`` directly.  These
are deliberate friend accesses of the datapath (documented at each site);
all three objects are created once per owner and mutated in place, so
binding them at compile time is safe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.netsim.icmp import ICMPMessage
from repro.netsim.packet import IPProtocol, IPv4Packet
from repro.netsim.sockets import ReceivedDatagram
from repro.netsim.udp import (
    UDP_HEADER_LEN,
    _UDP_HEADER,
    _address_word_sum,
    udp_checksum_arith,
)
from repro.perf import STAGES, perf_counter

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.netsim.host import Host

#: Bound locals shared by every compiled deliver body.
_UDP = IPProtocol.UDP
_ICMP = IPProtocol.ICMP
_UNPACK_UDP_HEADER = _UDP_HEADER.unpack_from


class LinkProfile:
    """Per-link trust level controlling which verification stages run.

    ``verify_checksum``
        Verify the UDP checksum of delivered datagrams (on top of the
        receiving host's own ``OSProfile.verify_udp_checksum`` flag — a
        host that skips verification keeps skipping it on any link).
    ``defrag_bookkeeping``
        Consult the defragmentation cache for *unfragmented* packets
        (purging expired reassembly buckets on every arrival, as real
        kernels do).  Fragmented packets always go through full
        reassembly regardless of trust — trust cannot change what gets
        delivered, only how much per-packet verification work runs.
    """

    __slots__ = ("name", "verify_checksum", "defrag_bookkeeping")

    def __init__(
        self,
        name: str = "default",
        verify_checksum: bool = True,
        defrag_bookkeeping: bool = True,
    ) -> None:
        self.name = name
        self.verify_checksum = verify_checksum
        self.defrag_bookkeeping = defrag_bookkeeping

    @classmethod
    def default(cls) -> "LinkProfile":
        """Full verification (the only profile the golden runs use)."""
        return DEFAULT_LINK_PROFILE

    @classmethod
    def trusted(cls) -> "LinkProfile":
        """Skip checksum verification and unfragmented-packet defrag work."""
        return TRUSTED_LINK_PROFILE

    @property
    def is_default(self) -> bool:
        """True when every verification stage is enabled."""
        return self.verify_checksum and self.defrag_bookkeeping

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LinkProfile {self.name!r}>"


#: Shared singletons: links reference profiles, they never mutate them.
DEFAULT_LINK_PROFILE = LinkProfile("default")
TRUSTED_LINK_PROFILE = LinkProfile(
    "trusted", verify_checksum=False, defrag_bookkeeping=False
)


class DeliveryPipeline:
    """The compiled delivery plan for one (src, dst) address pair.

    ``deliver`` is the destination datapath's bound deliver method — or
    ``None`` for the shared *unrouted* pipeline, which stands in for
    destinations with no registered host so repeat sends to the same
    unknown address stay one dict hit.

    ``faults`` is ``None`` on every fault-free pair (the only value the
    golden runs ever see).  When the link carries an active
    :class:`~repro.netsim.faults.FaultPlan`, it is the network-owned
    :class:`~repro.netsim.faults.FaultChannel` for this directed pair: the
    transmit paths route each surviving packet through
    ``faults.process(...)`` before scheduling, which is the *only* hook
    the fault layer has into the hot path — one slot read per packet when
    inactive.

    ``datapath``, ``burst_parse``, ``vector_verify``,
    ``burst_bookkeeping`` and ``addr_sum`` exist for the burst engine
    (:mod:`repro.netsim.burst`): a batched transmit needs to know which
    compiled datapath stands behind ``deliver``, whether this pair may
    take the pre-parsed burst delivery at all (``burst_parse`` — false for
    unrouted pairs and for pairs whose scalar path would raise on an
    unparseable spoofed source), whether the batched checksum pass must
    run (``vector_verify`` — link profile *and* host OS profile both
    verify; a trusted or non-verifying pair is parsed without it), whether
    the pre-parsed delivery performs the defrag bookkeeping sweep (the
    link profile's ``defrag_bookkeeping``), and the pair's pseudo-header
    address word sum — all baked once per compiled pair, like the latency,
    so the per-packet burst scan is attribute reads only.  Like every
    other compiled field, they go stale if a host's OS profile is mutated
    afterwards; :meth:`HostDatapath.recompile` invalidates the owning
    network's pipelines for exactly that reason.
    """

    __slots__ = (
        "latency",
        "loss_probability",
        "deliver",
        "datapath",
        "burst_parse",
        "vector_verify",
        "burst_bookkeeping",
        "addr_sum",
        "faults",
    )

    def __init__(
        self,
        latency: float,
        loss_probability: float,
        deliver,
        datapath: "Optional[HostDatapath]" = None,
        burst_parse: bool = False,
        vector_verify: bool = False,
        burst_bookkeeping: bool = True,
        addr_sum: int = 0,
        faults=None,
    ) -> None:
        self.latency = latency
        self.loss_probability = loss_probability
        self.deliver = deliver
        self.datapath = datapath
        self.burst_parse = burst_parse
        self.vector_verify = vector_verify
        self.burst_bookkeeping = burst_bookkeeping
        self.addr_sum = addr_sum
        self.faults = faults


#: Cached pipeline for destinations that have no host (dropped on send).
UNROUTED_PIPELINE = DeliveryPipeline(0.0, 0.0, None)


class HostDatapath:
    """The compiled receive side of one host.

    Created once per host; every slot is bound to an object the host owns
    and mutates in place (socket table, defrag cache, stats block), so the
    compiled paths observe live state without per-packet attribute chases.
    OS-profile *flags* are copied at construction — profiles are fixed at
    host creation everywhere in the codebase; a caller that mutates one
    afterwards must call :meth:`recompile`.
    """

    __slots__ = (
        "__weakref__",  # STAGES holds datapaths by weak reference
        "host",
        "simulator",
        "defrag",
        "defrag_buckets",
        "sockets",
        "stats",
        "verify_checksum",
        "drops_fragments",
        # Per-stage wall-time accumulators, merged into repro.perf.STAGES
        # snapshots while collection is enabled.
        "t_defrag",
        "t_checksum",
        "t_demux",
        "t_handler",
        "n_defrag",
        "n_checksum",
        "n_demux",
        "n_handler",
    )

    def __init__(self, host: "Host") -> None:
        self.host = host
        self.simulator = host.simulator
        self.defrag = host.defrag
        self.defrag_buckets = host.defrag._buckets  # friend access, see module doc
        self.sockets = host._sockets  # friend access, see module doc
        self.stats = host.stats
        self.verify_checksum = host.profile.verify_udp_checksum
        self.drops_fragments = host.profile.drops_fragments
        self.t_defrag = self.t_checksum = self.t_demux = self.t_handler = 0.0
        self.n_defrag = self.n_checksum = self.n_demux = self.n_handler = 0
        STAGES.attach(self)

    def recompile(self) -> None:
        """Re-read the host's profile flags (after an explicit mutation).

        Also drops the network's compiled pipelines: they bake the
        combined link+host verify decision for the burst engine, so a
        profile mutation must force them to recompile too.
        """
        self.verify_checksum = self.host.profile.verify_udp_checksum
        self.drops_fragments = self.host.profile.drops_fragments
        self.host.network.invalidate_pipelines()

    # ----------------------------------------------------------- fast paths
    def deliver(self, packet: IPv4Packet) -> None:
        """Full-verification delivery: the default-profile compiled chain.

        Byte-for-byte and counter-for-counter equivalent to the
        pre-refactor ``Host.receive`` → ``DefragmentationCache`` →
        ``decode_udp`` → ``UDPSocket.deliver`` chain (pinned by the golden
        determinism test), flattened into one frame.
        """
        if STAGES.enabled:
            return self._deliver_timed(packet, self.verify_checksum, True)
        host = self.host
        tap = host.packet_tap
        if tap is not None:
            tap(packet)
        if packet.protocol is not _UDP:
            return self._deliver_other(packet)
        if packet.more_fragments or packet.fragment_offset:
            packet = self._reassemble(packet)
            if packet is None:
                return
        elif self.defrag_buckets:
            # Real kernels sweep reassembly timers on every arrival; the
            # empty-cache case (almost every packet) skips it entirely.
            self.defrag.purge_expired(self.simulator._now)
        stats = self.stats
        data = packet.payload
        size = len(data)
        if size < UDP_HEADER_LEN:
            stats.udp_checksum_failures += 1
            return
        src_port, dst_port, length, checksum = _UNPACK_UDP_HEADER(data)
        if length != size:
            stats.udp_checksum_failures += 1
            return
        payload = data[UDP_HEADER_LEN:]
        if checksum and self.verify_checksum:
            # Arithmetic verify, inlined and deliberately uncached: spoofing
            # sweeps present a new payload per packet, so a memo here would
            # pay hashing and eviction for a ~0% hit rate; the extra call
            # frames of udp_checksum_arith cost ~6% of a Table II run on
            # this path.  Mirrors udp_checksum_arith / _fold_checksum word
            # for word — drift is caught by test_prop_batch_delivery
            # (arith-vs-cached property) and test_datapath's
            # instrumented-vs-uninstrumented counter comparison (the timed
            # twin calls udp_checksum_arith instead).
            padded = payload + b"\x00" if (size - UDP_HEADER_LEN) & 1 else payload
            folded = (
                _address_word_sum(packet.src)
                + _address_word_sum(packet.dst)
                + 17
                + length
                + length
                + src_port
                + dst_port
                + int.from_bytes(padded, "big") % 0xFFFF
            ) % 0xFFFF
            expected = ~(folded if folded else 0xFFFF) & 0xFFFF
            if (expected if expected else 0xFFFF) != checksum:
                stats.udp_checksum_failures += 1
                return
        stats.udp_received += 1
        socket = self.sockets.get(dst_port)
        if socket is None or socket.closed:
            return
        handler = socket.on_datagram
        if handler is not None:
            handler(payload, packet.src, src_port)
        else:
            socket.inbox.append(
                ReceivedDatagram(payload, packet.src, src_port, self.simulator._now)
            )

    def deliver_trusted(self, packet: IPv4Packet) -> None:
        """Trusted-link delivery: no checksum verify, no unfragmented
        defrag bookkeeping.  Fragmented packets still reassemble fully."""
        if STAGES.enabled:
            return self._deliver_timed(packet, False, False)
        host = self.host
        tap = host.packet_tap
        if tap is not None:
            tap(packet)
        if packet.protocol is not _UDP:
            return self._deliver_other(packet)
        if packet.more_fragments or packet.fragment_offset:
            packet = self._reassemble(packet)
            if packet is None:
                return
        stats = self.stats
        data = packet.payload
        size = len(data)
        if size < UDP_HEADER_LEN:
            stats.udp_checksum_failures += 1
            return
        src_port, dst_port, length, _checksum = _UNPACK_UDP_HEADER(data)
        if length != size:
            stats.udp_checksum_failures += 1
            return
        payload = data[UDP_HEADER_LEN:]
        stats.udp_received += 1
        socket = self.sockets.get(dst_port)
        if socket is None or socket.closed:
            return
        handler = socket.on_datagram
        if handler is not None:
            handler(payload, packet.src, src_port)
        else:
            socket.inbox.append(
                ReceivedDatagram(payload, packet.src, src_port, self.simulator._now)
            )

    def deliver_flex(self, packet: IPv4Packet, verify: bool, bookkeeping: bool) -> None:
        """Generic delivery for mixed link profiles (one stage trusted,
        the other not).  Exotic configurations only; not a hot path — but
        it still honours the collection switch: timing runs only while
        stage collection is enabled, like the canonical paths."""
        verify = verify and self.verify_checksum
        if STAGES.enabled:
            return self._deliver_timed(packet, verify, bookkeeping)
        host = self.host
        tap = host.packet_tap
        if tap is not None:
            tap(packet)
        if packet.protocol is not _UDP:
            return self._deliver_other(packet)
        if packet.more_fragments or packet.fragment_offset:
            packet = self._reassemble(packet)
            if packet is None:
                return
        elif bookkeeping and self.defrag_buckets:
            self.defrag.purge_expired(self.simulator._now)
        stats = self.stats
        data = packet.payload
        size = len(data)
        if size < UDP_HEADER_LEN:
            stats.udp_checksum_failures += 1
            return
        src_port, dst_port, length, checksum = _UNPACK_UDP_HEADER(data)
        if length != size:
            stats.udp_checksum_failures += 1
            return
        payload = data[UDP_HEADER_LEN:]
        if checksum and verify:
            if checksum != udp_checksum_arith(
                packet.src, packet.dst, src_port, dst_port, payload
            ):
                stats.udp_checksum_failures += 1
                return
        stats.udp_received += 1
        socket = self.sockets.get(dst_port)
        if socket is None or socket.closed:
            return
        handler = socket.on_datagram
        if handler is not None:
            handler(payload, packet.src, src_port)
        else:
            socket.inbox.append(
                ReceivedDatagram(payload, packet.src, src_port, self.simulator._now)
            )

    # -------------------------------------------------------- burst entries
    def deliver_parsed(
        self,
        packet: IPv4Packet,
        src_port: int,
        dst_port: int,
        bookkeeping: bool = True,
    ) -> None:
        """Delivery of a packet the burst engine already parsed and verified.

        Called by :class:`~repro.netsim.burst.DeliveryBurst` for
        unfragmented UDP packets whose header fields came out of the
        batched word-sum pass and whose checksum that pass accepted (or
        that the link/host profile does not verify at all): header unpack,
        length checks and the scalar checksum arithmetic are all skipped.
        ``bookkeeping`` carries the link profile's ``defrag_bookkeeping``
        bit, so trusted links keep skipping the reassembly sweep exactly
        as :meth:`deliver_trusted` does.  The remaining semantics — tap,
        stats, port demux, handler/inbox — are exactly those of the
        profile's scalar path (pinned by the burst property tests).
        """
        if STAGES.enabled:
            return self._deliver_parsed_timed(packet, src_port, dst_port, bookkeeping)
        host = self.host
        tap = host.packet_tap
        if tap is not None:
            tap(packet)
        if bookkeeping and self.defrag_buckets:
            self.defrag.purge_expired(self.simulator._now)
        self.stats.udp_received += 1
        socket = self.sockets.get(dst_port)
        if socket is None or socket.closed:
            return
        payload = packet.payload[UDP_HEADER_LEN:]
        handler = socket.on_datagram
        if handler is not None:
            handler(payload, packet.src, src_port)
        else:
            socket.inbox.append(
                ReceivedDatagram(payload, packet.src, src_port, self.simulator._now)
            )

    def deliver_run(
        self,
        packets: list,
        src_port: int,
        dst_port: int,
        bookkeeping: bool = True,
    ) -> bool:
        """Hand a consecutive run of pre-verified same-source datagrams to
        the destination socket's burst handler as one call.

        Returns False — without delivering anything — when the run cannot
        take the burst shape (no burst handler installed, socket missing or
        closed, a packet tap that must observe arrivals interleaved with
        handling); the caller then falls back to per-packet
        :meth:`deliver_parsed`.  When it returns True the whole run was
        delivered: observably equivalent to N sequential deliveries
        *provided* the installed burst handler keeps the socket-level
        equivalence promise (see
        :attr:`repro.netsim.sockets.UDPSocket.on_datagram_burst`).

        Deliberately uninstrumented: while ``repro.perf.STAGES`` collection
        is enabled the delivery bursts skip this handoff and dispatch the
        run per-packet through the timed twins, so the demux/handler time
        a one-call burst handler would hide stays attributed (results are
        identical either way — the two shapes are equivalence-pinned).
        """
        if self.host.packet_tap is not None:
            return False
        socket = self.sockets.get(dst_port)
        if socket is None or socket.closed:
            return False
        handler = socket.on_datagram_burst
        if handler is None or socket.on_datagram is None:
            # No burst handler — or an inbox-mode socket, whose datagrams
            # must queue individually exactly as per-packet delivery would.
            return False
        if bookkeeping and self.defrag_buckets:
            # Idempotent at a fixed instant: the N-th sweep of a sequential
            # delivery removes nothing the first did not.
            self.defrag.purge_expired(self.simulator._now)
        self.stats.udp_received += len(packets)
        src_ip = packets[0].src
        handler([p.payload[UDP_HEADER_LEN:] for p in packets], src_ip, src_port)
        return True

    def _deliver_parsed_timed(
        self, packet: IPv4Packet, src_port: int, dst_port: int, bookkeeping: bool
    ) -> None:
        """Stage-attributing twin of :meth:`deliver_parsed`.

        The checksum stage is *not* bumped here — the vectorised verify
        already attributed itself to ``burst_drain`` — so the stage table
        of an instrumented run reads: ``checksum`` is the scalar verifies
        still performed packet-by-packet, ``burst_drain`` the batched
        bookkeeping that replaced the rest.
        """
        host = self.host
        tap = host.packet_tap
        if tap is not None:
            tap(packet)
        t0 = perf_counter()
        if bookkeeping and self.defrag_buckets:
            self.defrag.purge_expired(self.simulator._now)
        t1 = perf_counter()
        self.t_defrag += t1 - t0
        self.n_defrag += 1
        self.stats.udp_received += 1
        socket = self.sockets.get(dst_port)
        if socket is None or socket.closed:
            t2 = perf_counter()
            self.t_demux += t2 - t1
            self.n_demux += 1
            return
        payload = packet.payload[UDP_HEADER_LEN:]
        handler = socket.on_datagram
        if handler is None:
            socket.inbox.append(
                ReceivedDatagram(payload, packet.src, src_port, self.simulator._now)
            )
            t2 = perf_counter()
            self.t_demux += t2 - t1
            self.n_demux += 1
            return
        t2 = perf_counter()
        self.t_demux += t2 - t1
        self.n_demux += 1
        handler(payload, packet.src, src_port)
        t3 = perf_counter()
        self.t_handler += t3 - t2
        self.n_handler += 1

    # ----------------------------------------------------------- slow paths
    def _reassemble(self, packet: IPv4Packet) -> Optional[IPv4Packet]:
        """Fragment arrival: honour the drop-fragments profile, reassemble."""
        if self.drops_fragments:
            return None
        return self.defrag.add_fragment(packet, self.simulator._now)

    def _deliver_other(self, packet: IPv4Packet) -> None:
        """Non-UDP traffic: ICMP handling, defrag bookkeeping for the rest."""
        if packet.protocol is _ICMP:
            message = packet.metadata.get("icmp")
            if isinstance(message, ICMPMessage):
                self.host._handle_icmp(message, packet.src)
            return
        if (packet.more_fragments or packet.fragment_offset) and self.drops_fragments:
            return
        # Mirrors the defrag bookkeeping of the UDP path; a reassembled
        # non-UDP packet has no deliverable upper layer in this simulator.
        self.defrag.add_fragment(packet, self.simulator._now)

    # -------------------------------------------------------- instrumented
    def _deliver_timed(self, packet: IPv4Packet, verify: bool, bookkeeping: bool) -> None:
        """The stage-attributing twin of the fast paths.

        Accumulates per-stage wall time into slots (merged into
        ``STAGES`` snapshots via :meth:`collect_into`).  Only runs while
        stage collection is enabled; headline throughput numbers are
        measured on the uninstrumented paths.
        """
        host = self.host
        tap = host.packet_tap
        if tap is not None:
            tap(packet)
        if packet.protocol is not _UDP:
            return self._deliver_other(packet)
        t0 = perf_counter()
        if packet.more_fragments or packet.fragment_offset:
            packet = self._reassemble(packet)
            t1 = perf_counter()
            self.t_defrag += t1 - t0
            self.n_defrag += 1
            if packet is None:
                return
        else:
            if bookkeeping and self.defrag_buckets:
                self.defrag.purge_expired(self.simulator._now)
            t1 = perf_counter()
            self.t_defrag += t1 - t0
            self.n_defrag += 1
        stats = self.stats
        data = packet.payload
        size = len(data)
        ok = size >= UDP_HEADER_LEN
        if ok:
            src_port, dst_port, length, checksum = _UNPACK_UDP_HEADER(data)
            ok = length == size
        if ok:
            payload = data[UDP_HEADER_LEN:]
            if checksum and verify:
                ok = checksum == udp_checksum_arith(
                    packet.src, packet.dst, src_port, dst_port, payload
                )
        t2 = perf_counter()
        self.t_checksum += t2 - t1
        self.n_checksum += 1
        if not ok:
            stats.udp_checksum_failures += 1
            return
        stats.udp_received += 1
        socket = self.sockets.get(dst_port)
        if socket is None or socket.closed:
            t3 = perf_counter()
            self.t_demux += t3 - t2
            self.n_demux += 1
            return
        handler = socket.on_datagram
        if handler is None:
            socket.inbox.append(
                ReceivedDatagram(payload, packet.src, src_port, self.simulator._now)
            )
            t3 = perf_counter()
            self.t_demux += t3 - t2
            self.n_demux += 1
            return
        t3 = perf_counter()
        self.t_demux += t3 - t2
        self.n_demux += 1
        handler(payload, packet.src, src_port)
        t4 = perf_counter()
        self.t_handler += t4 - t3
        self.n_handler += 1

    # ----------------------------------------------------------- reporting
    def collect_into(self, times: dict, calls: dict) -> None:
        """Merge this datapath's stage accumulators into counter dicts."""
        if self.n_defrag:
            times["defrag"] = times.get("defrag", 0.0) + self.t_defrag
            calls["defrag"] = calls.get("defrag", 0) + self.n_defrag
        if self.n_checksum:
            times["checksum"] = times.get("checksum", 0.0) + self.t_checksum
            calls["checksum"] = calls.get("checksum", 0) + self.n_checksum
        if self.n_demux:
            times["demux"] = times.get("demux", 0.0) + self.t_demux
            calls["demux"] = calls.get("demux", 0) + self.n_demux
        if self.n_handler:
            times["handler"] = times.get("handler", 0.0) + self.t_handler
            calls["handler"] = calls.get("handler", 0) + self.n_handler

    def reset_stage_counters(self) -> None:
        """Zero the per-stage accumulators."""
        self.t_defrag = self.t_checksum = self.t_demux = self.t_handler = 0.0
        self.n_defrag = self.n_checksum = self.n_demux = self.n_handler = 0


def compile_deliver(datapath: HostDatapath, profile: LinkProfile):
    """Pick the delivery entry point for one link profile.

    The two canonical profiles get the dedicated flat paths; mixed
    profiles (one stage trusted, the other not) fall back to the generic
    flexible path via a small binding closure.
    """
    if profile.verify_checksum and profile.defrag_bookkeeping:
        return datapath.deliver
    if not profile.verify_checksum and not profile.defrag_bookkeeping:
        return datapath.deliver_trusted
    verify = profile.verify_checksum
    bookkeeping = profile.defrag_bookkeeping

    def deliver_mixed(packet: IPv4Packet) -> None:
        datapath.deliver_flex(packet, verify, bookkeeping)

    return deliver_mixed
