"""Integration tests for the countermeasures discussed in section IX."""

import pytest

from repro.core.boot_time import BootTimeAttack
from repro.dns.dnssec import ZoneSigningKey, sign_zone
from repro.dns.nameserver import AuthoritativeNameserver
from repro.dns.records import a_record
from repro.dns.resolver import RecursiveResolver, ResolverConfig
from repro.dns.zone import Zone
from repro.ntp.clients import SystemdTimesyncdClient
from repro.ntp.clients.base import NTPClientConfig
from repro.testbed import NAMESERVER_IP, TestbedConfig, build_testbed


class TestStaticServerAddresses:
    def test_client_with_static_ips_is_immune_to_dns_poisoning(self):
        """The paper's immediate recommendation: do not use DNS for NTP."""
        testbed = build_testbed(TestbedConfig(pool_size=32, seed=81, pool_rotation="fixed"))
        attack = BootTimeAttack(
            attacker=testbed.attacker,
            simulator=testbed.simulator,
            resolver=testbed.resolver,
            nameserver_ip=NAMESERVER_IP,
        )
        attack.launch_poisoning()
        testbed.run_for(10)
        victim = testbed.add_client(SystemdTimesyncdClient)
        # Statically configure the servers instead of booting via DNS.
        victim.config.runtime_dns = False
        victim._add_servers(testbed.pool.addresses[:4], domain="")
        victim.started = True
        victim.booted_at = testbed.simulator.now
        victim._schedule_poll()
        testbed.run_for(400)
        assert abs(victim.clock_error()) < 1.0
        assert victim.stats.boot_dns_lookups == 0


class TestDNSSEC:
    def build_signed_environment(self, validate: bool):
        """An NTP domain that *is* signed (time.cloudflare.com-style)."""
        testbed = build_testbed(TestbedConfig(pool_size=16, seed=82, pool_rotation="fixed"))
        zone = Zone(origin="time.cloudflare.com")
        for address in testbed.pool.addresses[:4]:
            zone.add(a_record("time.cloudflare.com", address, ttl=300))
        key = ZoneSigningKey.generate(zone.origin)
        sign_zone(zone, key)
        signed_host = testbed.network.add_host("signed-ns", "198.51.100.30")
        AuthoritativeNameserver(signed_host, zones=[zone], signing_keys={zone.origin: key})

        resolver_host = testbed.network.add_host("validating-resolver", "192.0.2.60")
        resolver = RecursiveResolver(
            resolver_host,
            testbed.simulator,
            zone_map={
                "pool.ntp.org": NAMESERVER_IP,
                "time.cloudflare.com": "198.51.100.30",
            },
            config=ResolverConfig(validate_dnssec=validate),
            trust_anchors={zone.origin: key} if validate else {},
        )
        return testbed, resolver

    def _client_config(self) -> NTPClientConfig:
        config = SystemdTimesyncdClient.default_config()
        config.pool_domains = ["time.cloudflare.com"]
        return config

    def test_validating_resolver_blocks_forged_records_for_signed_domain(self):
        testbed, resolver = self.build_signed_environment(validate=True)
        # Off-path forgery modelled at its strongest: the attacker somehow
        # slips a forged rrset (without a valid RRSIG) into the resolution
        # path; validation rejects it, so the client keeps honest servers.
        victim_host = testbed.network.add_host("victim", "192.0.2.200")
        victim = SystemdTimesyncdClient(victim_host, testbed.simulator, resolver.ip, config=self._client_config())
        victim.start()
        testbed.run_for(300)
        assert abs(victim.clock_error()) < 1.0
        assert set(victim.usable_server_ips()) <= set(testbed.pool.addresses)

    def test_unsigned_pool_domain_gets_no_protection(self):
        """Only one NTP domain was signed in the paper's measurements; the
        pool itself is unsigned, so even a validating resolver caches the
        attacker's records."""
        testbed = build_testbed(TestbedConfig(pool_size=16, seed=83, pool_rotation="fixed", resolver_validates_dnssec=True))
        attack = BootTimeAttack(
            attacker=testbed.attacker,
            simulator=testbed.simulator,
            resolver=testbed.resolver,
            nameserver_ip=NAMESERVER_IP,
        )
        attack.launch_poisoning()
        testbed.run_for(10)
        victim = testbed.add_client(SystemdTimesyncdClient)
        result = attack.evaluate(victim, observation_period=300)
        assert result.success


class TestChronosHardening:
    def test_ttl_and_address_caps_blunt_the_chronos_attack(self):
        from repro.core.chronos_attack import ChronosAttack
        from repro.ntp.chronos.client import ChronosConfig
        from repro.ntp.chronos.pool_generation import PoolGenerationConfig

        testbed = build_testbed(TestbedConfig(pool_size=160, seed=84))
        hardened = ChronosConfig(
            pool_generation=PoolGenerationConfig(
                lookup_interval=300.0,
                total_lookups=24,
                max_addresses_per_response=4,
                max_accepted_ttl=300,
            ),
            servers_per_round=11,
            poll_interval=150.0,
        )
        victim = testbed.add_chronos_client(config=hardened)
        attack = ChronosAttack(
            attacker=testbed.attacker,
            simulator=testbed.simulator,
            resolver=testbed.resolver,
            victim=victim,
        )
        result = attack.run(poison_after_lookups=5, observe_rounds=3)
        assert not result.attacker_controls_pool
        assert not result.success
        assert abs(result.clock_shift_achieved) < 1.0
