"""Tests for the defragmentation cache — the attack's point of entry."""

from repro.netsim.defrag import DefragmentationCache, ReassemblyPolicy
from repro.netsim.fragmentation import fragment_packet
from repro.netsim.packet import IPProtocol, IPv4Packet


def make_fragments(size=600, ipid=1, mtu=296, src="10.0.0.1", dst="10.0.0.2"):
    packet = IPv4Packet(
        src=src, dst=dst, protocol=IPProtocol.UDP, payload=bytes(size), ipid=ipid
    )
    return packet, fragment_packet(packet, mtu)


class TestBasicReassembly:
    def test_non_fragment_passes_through(self):
        cache = DefragmentationCache()
        packet = IPv4Packet(src="1.1.1.1", dst="2.2.2.2", protocol=IPProtocol.UDP, payload=b"x")
        assert cache.add_fragment(packet, now=0.0) is packet

    def test_reassembles_when_all_fragments_arrive(self):
        cache = DefragmentationCache()
        packet, fragments = make_fragments()
        results = [cache.add_fragment(f, now=0.0) for f in fragments]
        assert results[:-1] == [None] * (len(fragments) - 1)
        assert results[-1].payload == packet.payload
        assert cache.stats.packets_reassembled == 1

    def test_out_of_order_arrival(self):
        cache = DefragmentationCache()
        packet, fragments = make_fragments()
        results = [cache.add_fragment(f, now=0.0) for f in reversed(fragments)]
        assert results[-1] is not None and results[-1].payload == packet.payload

    def test_different_ipids_not_mixed(self):
        cache = DefragmentationCache()
        _, a = make_fragments(ipid=1)
        _, b = make_fragments(ipid=2)
        assert cache.add_fragment(a[0], 0.0) is None
        assert cache.add_fragment(b[1], 0.0) is None
        assert cache.pending_buckets() == 2


class TestTimeout:
    def test_expired_bucket_is_purged(self):
        cache = DefragmentationCache(timeout=30.0)
        _, fragments = make_fragments()
        cache.add_fragment(fragments[0], now=0.0)
        assert cache.pending_buckets() == 1
        cache.purge_expired(now=31.0)
        assert cache.pending_buckets() == 0
        assert cache.stats.buckets_expired == 1

    def test_fragment_surviving_within_timeout_still_reassembles(self):
        cache = DefragmentationCache(timeout=30.0)
        packet, fragments = make_fragments()
        cache.add_fragment(fragments[1], now=0.0)
        result = None
        for fragment in [fragments[0]] + fragments[2:]:
            result = cache.add_fragment(fragment, now=29.0)
        assert result is not None and result.payload == packet.payload

    def test_late_fragment_does_not_reassemble_with_expired_one(self):
        cache = DefragmentationCache(timeout=30.0)
        _, fragments = make_fragments(size=400)
        cache.add_fragment(fragments[1], now=0.0)
        results = [cache.add_fragment(f, now=35.0) for f in fragments[:1]]
        assert all(r is None for r in results)


class TestFragmentLimits:
    def test_per_peer_bucket_limit_enforced(self):
        cache = DefragmentationCache(max_pending_per_peer=64)
        for ipid in range(80):
            _, fragments = make_fragments(ipid=ipid)
            cache.add_fragment(fragments[1], now=0.0)
        assert cache.pending_for_peer("10.0.0.1", "10.0.0.2") == 64
        assert cache.stats.fragments_dropped_limit == 16

    def test_windows_profile_allows_100(self):
        cache = DefragmentationCache(max_pending_per_peer=100)
        for ipid in range(120):
            _, fragments = make_fragments(ipid=ipid)
            cache.add_fragment(fragments[1], now=0.0)
        assert cache.pending_for_peer("10.0.0.1", "10.0.0.2") == 100

    def test_limit_is_per_peer_not_global(self):
        cache = DefragmentationCache(max_pending_per_peer=4)
        for ipid in range(4):
            _, fragments = make_fragments(ipid=ipid, src="10.0.0.1")
            cache.add_fragment(fragments[1], now=0.0)
        _, other = make_fragments(ipid=50, src="10.9.9.9")
        cache.add_fragment(other[1], now=0.0)
        assert cache.pending_for_peer("10.9.9.9", "10.0.0.2") == 1


class TestSpoofedFragmentReplacement:
    def _spoofed_second(self, fragments):
        spoofed = fragments[1].copy(payload=bytes([0xAA]) * len(fragments[1].payload))
        spoofed.metadata["spoofed"] = True
        return spoofed

    def test_planted_fragment_reassembles_with_real_first(self):
        cache = DefragmentationCache()
        packet, fragments = make_fragments(size=500, mtu=296)
        assert len(fragments) == 2
        cache.add_fragment(self._spoofed_second(fragments), now=0.0)
        result = cache.add_fragment(fragments[0], now=5.0)
        assert result is not None
        assert bytes([0xAA]) * len(fragments[1].payload) in result.payload
        assert result.metadata.get("reassembled_with_spoofed_fragment")
        assert cache.stats.spoofed_fragments_used == 1

    def test_first_wins_policy_prefers_planted_fragment(self):
        cache = DefragmentationCache(policy=ReassemblyPolicy.FIRST_WINS)
        packet, fragments = make_fragments(size=500, mtu=296)
        cache.add_fragment(self._spoofed_second(fragments), now=0.0)
        cache.add_fragment(fragments[1], now=1.0)  # real second fragment later
        result = cache.add_fragment(fragments[0], now=2.0)
        assert result is not None
        assert bytes([0xAA]) in result.payload

    def test_last_wins_policy_prefers_real_fragment(self):
        cache = DefragmentationCache(policy=ReassemblyPolicy.LAST_WINS)
        packet, fragments = make_fragments(size=500, mtu=296)
        cache.add_fragment(self._spoofed_second(fragments), now=0.0)
        cache.add_fragment(fragments[1], now=1.0)
        result = cache.add_fragment(fragments[0], now=2.0)
        assert result is not None
        assert bytes([0xAA]) not in result.payload

    def test_planted_fragments_listing(self):
        cache = DefragmentationCache()
        _, fragments = make_fragments(size=500, mtu=296)
        cache.add_fragment(self._spoofed_second(fragments), now=0.0)
        assert len(cache.planted_fragments("10.0.0.1", "10.0.0.2")) == 1
        assert cache.planted_fragments("9.9.9.9", "10.0.0.2") == []
