"""Tests for domain-name handling and wire encoding."""

import pytest

from repro.dns.errors import NameError_
from repro.dns.names import (
    decode_name,
    encode_name,
    name_in_zone,
    normalize_name,
    parent_zones,
)


class TestNormalization:
    def test_lowercases_and_strips_trailing_dot(self):
        assert normalize_name("Pool.NTP.org.") == "pool.ntp.org"

    def test_empty_root_name(self):
        assert normalize_name("") == ""
        assert normalize_name(".") == ""

    def test_rejects_long_name(self):
        with pytest.raises(NameError_):
            normalize_name("a" * 300)

    def test_rejects_long_label(self):
        with pytest.raises(NameError_):
            normalize_name("a" * 64 + ".example")

    def test_rejects_empty_label(self):
        with pytest.raises(NameError_):
            normalize_name("pool..ntp.org")


class TestBailiwick:
    def test_name_in_its_own_zone(self):
        assert name_in_zone("pool.ntp.org", "pool.ntp.org")

    def test_subdomain_in_zone(self):
        assert name_in_zone("0.pool.ntp.org", "pool.ntp.org")

    def test_sibling_not_in_zone(self):
        assert not name_in_zone("example.org", "pool.ntp.org")

    def test_suffix_trick_rejected(self):
        # evilpool.ntp.org must not match pool.ntp.org.
        assert not name_in_zone("evilpool.ntp.org", "pool.ntp.org")
        assert not name_in_zone("xpool.ntp.org", "pool.ntp.org")

    def test_root_zone_contains_everything(self):
        assert name_in_zone("anything.example", "")

    def test_parent_zones(self):
        assert parent_zones("0.pool.ntp.org") == ["pool.ntp.org", "ntp.org", "org", ""]


class TestWireEncoding:
    def test_simple_round_trip(self):
        wire = encode_name("pool.ntp.org")
        name, offset = decode_name(wire, 0)
        assert name == "pool.ntp.org"
        assert offset == len(wire)

    def test_root_name_encoding(self):
        assert encode_name("") == b"\x00"

    def test_label_lengths_in_wire_format(self):
        wire = encode_name("ab.cde")
        assert wire == b"\x02ab\x03cde\x00"

    def test_compression_pointer_emitted_for_repeated_suffix(self):
        compression = {}
        first = encode_name("pool.ntp.org", compression, offset=12)
        second = encode_name("0.pool.ntp.org", compression, offset=12 + len(first))
        # The second encoding should end in a 2-byte pointer, not repeat labels.
        assert len(second) < len(encode_name("0.pool.ntp.org"))
        assert second[-2] & 0xC0 == 0xC0

    def test_compressed_name_decodes_against_full_message(self):
        compression = {}
        message = bytearray(b"\x00" * 12)
        first = encode_name("pool.ntp.org", compression, offset=len(message))
        message += first
        second_offset = len(message)
        message += encode_name("0.pool.ntp.org", compression, offset=second_offset)
        name, _ = decode_name(bytes(message), second_offset)
        assert name == "0.pool.ntp.org"

    def test_decode_rejects_truncation(self):
        wire = encode_name("pool.ntp.org")
        with pytest.raises(NameError_):
            decode_name(wire[:-3], 0)

    def test_decode_rejects_pointer_loop(self):
        # A pointer pointing at itself.
        data = b"\xc0\x00"
        with pytest.raises(NameError_):
            decode_name(data, 0)
