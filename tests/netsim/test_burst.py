"""Unit tests for the burst engine: simulator entries, delivery, handlers."""

from __future__ import annotations

import pytest

from repro.netsim.errors import SimulationError
from repro.netsim.network import Network
from repro.netsim.packet import IPProtocol, IPv4Packet
from repro.netsim.simulator import Simulator
from repro.netsim.udp import UDPDatagram, encode_udp
from repro.ntp.packet import NTPPacket, NTP_PORT
from repro.ntp.server import NTPServer, NTPServerConfig


class TestPostBurst:
    def test_burst_members_fire_in_order_with_neighbours(self):
        sim = Simulator()
        order = []
        sim.post(1.0, order.append, "before")
        sim.post_burst(1.0, order.append, ["b1", "b2", "b3"])
        sim.post(1.0, order.append, "after")
        sim.run()
        assert order == ["before", "b1", "b2", "b3", "after"]

    def test_burst_consumes_one_sequence_number_per_member(self):
        sim = Simulator()
        sim.post_burst(1.0, lambda _: None, [1, 2, 3, 4])
        assert sim.pending() == 4
        sim.run()
        assert sim.pending() == 0
        assert sim.events_processed == 4
        assert sim.bursts_posted == 1

    def test_empty_burst_schedules_nothing(self):
        sim = Simulator()
        sim.post_burst(1.0, lambda _: None, [])
        assert sim.pending() == 0
        assert sim.run() == 0

    def test_single_member_degrades_to_post(self):
        sim = Simulator()
        fired = []
        sim.post_burst(1.0, fired.append, ["only"])
        assert sim.bursts_posted == 0  # plain anonymous entry
        sim.run()
        assert fired == ["only"]
        assert sim.events_processed == 1

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.post_burst(-0.5, lambda _: None, [1])

    def test_burst_is_atomic_under_max_events(self):
        sim = Simulator()
        fired = []
        sim.post_burst(1.0, fired.append, [1, 2, 3])
        processed = sim.run(max_events=1)
        # Bursts never split: the entry drains whole and counts 3.
        assert processed == 3
        assert fired == [1, 2, 3]

    def test_step_executes_whole_burst(self):
        sim = Simulator()
        fired = []
        sim.post_burst(2.0, fired.append, ["x", "y"])
        event = sim.step()
        assert fired == ["x", "y"]
        assert event is not None and event.time == 2.0
        assert sim.events_processed == 2

    def test_burst_members_can_post_more_work(self):
        sim = Simulator()
        fired = []

        def member(tag):
            fired.append(tag)
            if tag == "a":
                sim.post(0.0, fired.append, "child-of-a")

        sim.post_burst(1.0, member, ["a", "b"])
        sim.run()
        # The child fires after the rest of the burst (it got a later
        # sequence number), exactly as N singular posts would order it.
        assert fired == ["a", "b", "child-of-a"]

    def test_run_until_respects_burst_time(self):
        sim = Simulator()
        fired = []
        sim.post_burst(5.0, fired.append, [1, 2])
        sim.run(until=2.0)
        assert fired == []
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 2]

    def test_post_burst_entry_custom_object(self):
        class CountingBurst:
            count = 3

            def __init__(self):
                self.ran = 0

            def run(self):
                self.ran += 1

        sim = Simulator()
        burst = CountingBurst()
        sim.post_burst_entry(1.0, burst)
        assert sim.pending() == 3
        sim.run()
        assert burst.ran == 1
        assert sim.events_processed == 3


class TestCoalescedDrainCancellation:
    """Cancelled events inside a coalesced equal-timestamp run must be
    skipped without distorting events_processed or pending()."""

    def test_cancelled_mid_run_not_counted(self):
        sim = Simulator()
        fired = []
        first = sim.schedule(1.0, lambda: fired.append("first"))
        middle = sim.schedule(1.0, lambda: fired.append("middle"))
        last = sim.schedule(1.0, lambda: fired.append("last"))
        middle.cancel()
        processed = sim.run(until=2.0)
        assert fired == ["first", "last"]
        assert processed == 2
        assert sim.events_processed == 2
        assert sim.pending() == 0
        assert first.time == last.time == 1.0

    def test_callback_cancels_same_instant_event(self):
        """An event cancelling a later same-instant event mid-coalesced-run."""
        sim = Simulator()
        fired = []
        events = {}

        def first():
            fired.append("first")
            events["victim"].cancel()

        sim.schedule(1.0, first)
        events["victim"] = sim.schedule(1.0, lambda: fired.append("victim"))
        sim.schedule(1.0, lambda: fired.append("third"))
        sim.run(until=5.0)
        assert fired == ["first", "third"]
        assert sim.events_processed == 2
        assert sim.pending() == 0

    def test_trailing_cancelled_run_keeps_pending_exact(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        for _ in range(3):
            sim.schedule(1.0, lambda: None).cancel()
        sim.run(until=3.0)
        assert sim.events_processed == 1
        assert sim.pending() == 0


def star_world(count: int, latency: float = 0.01):
    sim = Simulator(seed=1)
    network = Network(sim, default_latency=latency)
    src = "192.0.2.1"
    network.add_host("sender", src)
    received = []
    packets = []
    for index in range(count):
        dst = f"203.0.113.{index + 1}"
        host = network.add_host(f"r{index}", dst)
        host.bind(
            4242,
            lambda payload, ip, port, _dst=dst: received.append((_dst, payload)),
        )
        payload = encode_udp(src, dst, UDPDatagram(5353, 4242, b"x" * 48))
        packets.append(IPv4Packet.udp(src, dst, payload, index & 0xFFFF))
    return sim, network, received, packets


class TestTransmitBurstDelivery:
    def test_spray_delivers_in_order_as_one_heap_entry(self):
        sim, network, received, packets = star_world(8)
        network.transmit_burst(packets)
        assert sim.bursts_posted == 1
        assert sim.pending() == 8
        sim.run()
        assert [dst for dst, _ in received] == [p.dst for p in packets]
        assert sim.events_processed == 8

    def test_mixed_latency_spray_splits_groups(self):
        sim, network, received, packets = star_world(4)
        from repro.netsim.network import Link

        # Middle destination gets a slower link: the spray splits into
        # same-instant groups around it, preserving delivery order per time.
        network.set_link("192.0.2.1", packets[1].dst, Link(latency=0.5))
        network.transmit_burst(packets)
        sim.run()
        fast = [p.dst for i, p in enumerate(packets) if i != 1]
        assert [dst for dst, _ in received] == fast + [packets[1].dst]

    def test_corrupted_checksum_counted_per_host(self):
        sim, network, received, packets = star_world(6)
        bad = packets[2]
        payload = encode_udp("9.9.9.9", bad.dst, UDPDatagram(5353, 4242, b"y" * 48))
        packets[2] = IPv4Packet.udp(bad.src, bad.dst, payload, 2)
        network.transmit_burst(packets)
        sim.run()
        assert len(received) == 5
        assert network.host(bad.dst).stats.udp_checksum_failures == 1
        for index, packet in enumerate(packets):
            if index != 2:
                assert network.host(packet.dst).stats.udp_received == 1


def build_server(rate_limiting: bool = True, respond_probability: float = 1.0):
    sim = Simulator(seed=9)
    network = Network(sim)
    host = network.add_host("server", "203.0.113.5")
    config = NTPServerConfig(
        rate_limiting=rate_limiting,
        send_kod=True,
        average_interval=8.0,
        burst_tolerance=16.0,
        respond_probability=respond_probability,
    )
    server = NTPServer(host, sim, config=config)
    return sim, network, server


def query_payloads(sim, n):
    wire = NTPPacket.client_query_wire(sim.now)
    return [wire for _ in range(n)]


class TestServerBurstHandler:
    def test_burst_equivalent_to_sequential(self):
        sim_a, _, server_a = build_server()
        sim_b, _, server_b = build_server()
        src = "192.0.2.77"
        payloads = query_payloads(sim_a, 7)
        for payload in payloads:
            server_a._on_packet(payload, src, 123)
        server_b._on_packet_burst(list(payloads), src, 123)
        for name in (
            "queries_received",
            "responses_sent",
            "kods_sent",
            "queries_dropped",
        ):
            assert getattr(server_a.stats, name) == getattr(server_b.stats, name), name
        state_a = server_a.rate_limiter.sources[src]
        state_b = server_b.rate_limiter.sources[src]
        assert (state_a.score, state_a.last_seen, state_a.kod_sent, state_a.drops) == (
            state_b.score,
            state_b.last_seen,
            state_b.kod_sent,
            state_b.drops,
        )
        # The same responses went on the wire in the same order.
        assert sim_a.pending() == sim_b.pending()

    def test_heterogeneous_burst_falls_back_to_sequential(self):
        sim, _, server = build_server()
        src = "192.0.2.78"
        payloads = query_payloads(sim, 3) + [b"\x06" + b"\x00" * 47]  # mode 6
        server._on_packet_burst(payloads, src, 123)
        assert server.stats.queries_received == 3  # mode 6 not counted

    def test_probabilistic_responder_falls_back(self):
        sim_a, _, server_a = build_server(respond_probability=0.5)
        sim_b, _, server_b = build_server(respond_probability=0.5)
        src = "192.0.2.79"
        payloads = query_payloads(sim_a, 10)
        for payload in payloads:
            server_a._on_packet(payload, src, 123)
        server_b._on_packet_burst(list(payloads), src, 123)
        # Identically seeded worlds: the fallback must consume the RNG in
        # the same per-query order, so the outcomes match exactly.
        assert server_a.stats.responses_sent == server_b.stats.responses_sent
        assert server_a.stats.queries_dropped == server_b.stats.queries_dropped


class TestInboxModeSocketKeepsPerPacketDelivery:
    def test_burst_handler_not_used_when_on_datagram_is_none(self):
        """An inbox-mode socket (no on_datagram) must queue datagrams
        individually even when a burst handler is installed — delivery
        semantics cannot depend on heap-entry shape."""
        sim = Simulator(seed=8)
        network = Network(sim)
        network.add_host("sender", "192.0.2.60")
        receiver = network.add_host("receiver", "203.0.113.20")
        socket = receiver.bind(4000)  # inbox mode
        socket.on_datagram_burst = lambda payloads, src, port: (_ for _ in ()).throw(
            AssertionError("burst handler must not fire for inbox sockets")
        )
        payload = encode_udp(
            "192.0.2.60", "203.0.113.20", UDPDatagram(5000, 4000, b"q" * 20)
        )
        packets = [
            IPv4Packet.udp("192.0.2.60", "203.0.113.20", payload, i) for i in range(6)
        ]
        network.transmit_burst(packets)
        sim.run()
        assert len(socket.inbox) == 6


class TestFloodThroughBurstEngine:
    def test_same_destination_flood_uses_burst_handler(self):
        """End to end: a spoofed same-(src,dst) flood reaches the server's
        burst handler via run detection and produces the exact outcomes of
        singular delivery."""

        def run_flood(use_burst: bool):
            sim = Simulator(seed=5)
            network = Network(sim)
            network.add_host("victim", "192.0.2.50")
            host = network.add_host("server", "203.0.113.9")
            server = NTPServer(
                host,
                sim,
                config=NTPServerConfig(
                    rate_limiting=True, send_kod=True, burst_tolerance=24.0
                ),
            )
            wire = NTPPacket.client_query_wire(sim.now)
            payload = encode_udp(
                "192.0.2.50", "203.0.113.9", UDPDatagram(NTP_PORT, NTP_PORT, wire)
            )
            packets = [
                IPv4Packet.udp("192.0.2.50", "203.0.113.9", payload, i)
                for i in range(20)
            ]
            if use_burst:
                network.transmit_burst(packets)
            else:
                for packet in packets:
                    network.transmit(packet)
            sim.run()
            return (
                server.stats.queries_received,
                server.stats.responses_sent,
                server.stats.kods_sent,
                server.stats.queries_dropped,
                server.rate_limiter.queries_dropped,
                host.stats.udp_received,
                sim.events_processed,
            )

        assert run_flood(True) == run_flood(False)

    def test_trusted_link_flood_still_takes_burst_handler(self):
        """Trusted links parse without the checksum pass — they must not
        fall off the burst engine (a trusted packet is the *cheapest* to
        pre-parse), and they must keep skipping the defrag sweep exactly
        like deliver_trusted."""

        def run_flood(use_burst: bool):
            sim = Simulator(seed=6)
            network = Network(sim)
            network.add_host("victim", "192.0.2.50")
            host = network.add_host("server", "203.0.113.9")
            network.trust_link("192.0.2.50", "203.0.113.9")
            server = NTPServer(
                host,
                sim,
                config=NTPServerConfig(
                    rate_limiting=True, send_kod=True, burst_tolerance=24.0
                ),
            )
            burst_calls = []
            inner = server.socket.on_datagram_burst

            def counting_burst(payloads, src_ip, src_port):
                burst_calls.append(len(payloads))
                inner(payloads, src_ip, src_port)

            server.socket.on_datagram_burst = counting_burst
            # A pending reassembly bucket: the trusted path must NOT sweep
            # it on unfragmented arrivals (deliver_trusted semantics).
            fragment = IPv4Packet(
                src="192.0.2.50",
                dst="203.0.113.9",
                protocol=IPProtocol.UDP,
                payload=b"\x00" * 16,
                ipid=999,
                more_fragments=True,
            )
            host.defrag.add_fragment(fragment, sim.now)
            wire = NTPPacket.client_query_wire(sim.now)
            payload = encode_udp(
                "192.0.2.50", "203.0.113.9", UDPDatagram(NTP_PORT, NTP_PORT, wire)
            )
            packets = [
                IPv4Packet.udp("192.0.2.50", "203.0.113.9", payload, i)
                for i in range(12)
            ]
            if use_burst:
                network.transmit_burst(packets)
            else:
                for packet in packets:
                    network.transmit(packet)
            sim.advance(40.0)  # well past the reassembly timeout
            return (
                server.stats.queries_received,
                server.stats.responses_sent,
                server.stats.kods_sent,
                server.stats.queries_dropped,
                host.stats.udp_received,
                len(host.defrag._buckets),  # trusted: bucket never swept
                burst_calls,
            )

        burst_outcome = run_flood(True)
        singular_outcome = run_flood(False)
        # The burst path used the burst handler exactly once, for all 12.
        assert burst_outcome[-1] == [12]
        assert singular_outcome[-1] == []
        # Everything else — including the unswept reassembly bucket — is
        # identical to singular trusted delivery.
        assert burst_outcome[:-1] == singular_outcome[:-1]
        assert burst_outcome[-2] == 1  # the stale bucket survived
