"""Open-resolver cache snooping for NTP pool records (Table IV, Figure 6).

Methodology of section VIII-A1, reproduced step by step:

1. **Verify the technique per resolver.**  Send an RD=0 query for a domain
   known *not* to be cached (it must come back unanswered) and an RD=0 query
   for a domain planted in the cache by a previous RD=1 query (it must come
   back answered).  Resolvers failing either check are discarded — they
   ignore the RD bit or do not respond at all.
2. **Probe the six pool names.**  For each verified resolver, send RD=0
   queries for ``pool.ntp.org IN NS``, ``pool.ntp.org IN A`` and
   ``{0..3}.pool.ntp.org IN A``.  A non-empty answer means the record is
   cached, i.e. some NTP client behind this resolver recently resolved it.
3. **Sanity-check via TTLs.**  Remaining TTLs of cached records should be
   uniformly distributed over ``[0, 150]`` if the caching inference is sound
   (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.measurement.population import OpenResolverSpec, POOL_RECORD_TTL

#: The six (name, type) probes of Table IV, in the paper's order.
POOL_QUERY_NAMES = [
    "pool.ntp.org/NS",
    "pool.ntp.org/A",
    "0.pool.ntp.org/A",
    "1.pool.ntp.org/A",
    "2.pool.ntp.org/A",
    "3.pool.ntp.org/A",
]


@dataclass
class CacheSnoopingRow:
    """One row of Table IV."""

    query: str
    cached_fraction: float
    cached_count: int
    not_cached_count: int


@dataclass
class CacheSnoopingReport:
    """The full result of the cache-snooping study."""

    resolvers_probed: int
    resolvers_responding: int
    resolvers_verified: int
    rows: list[CacheSnoopingRow] = field(default_factory=list)
    observed_ttls: list[float] = field(default_factory=list)
    ntp_client_resolvers: int = 0
    fragment_accepting_ntp_resolvers: int = 0

    def row(self, query: str) -> CacheSnoopingRow:
        """Look up one row by its query label."""
        for row in self.rows:
            if row.query == query:
                return row
        raise KeyError(query)

    def ttl_histogram(self, bins: int = 15) -> tuple[np.ndarray, np.ndarray]:
        """Histogram of cached-record TTLs (Figure 6)."""
        return np.histogram(self.observed_ttls, bins=bins, range=(0, POOL_RECORD_TTL))

    def fragment_acceptance_among_ntp_resolvers(self) -> float:
        """Fraction of NTP-serving resolvers that accept fragmented responses."""
        if self.ntp_client_resolvers == 0:
            return 0.0
        return self.fragment_accepting_ntp_resolvers / self.ntp_client_resolvers


class CacheSnoopingStudy:
    """Runs the cache-snooping methodology over a resolver population."""

    def __init__(self, resolvers: list[OpenResolverSpec]) -> None:
        self.resolvers = resolvers

    # ------------------------------------------------------------- plumbing
    @staticmethod
    def probe_rd0(resolver: OpenResolverSpec, key: str) -> bool:
        """Model one RD=0 probe: answered iff the record is cached.

        Resolvers that do not honour the RD bit resolve the query anyway and
        answer regardless; those are exactly the resolvers the verification
        step rejects.
        """
        if not resolver.responds:
            return False
        if not resolver.honors_rd_bit:
            return True  # answers everything — fails the "not cached" check
        return key in resolver.cached_records

    @classmethod
    def verify_technique(cls, resolver: OpenResolverSpec) -> bool:
        """Step 1: the not-cached probe must fail and the planted probe succeed."""
        if not resolver.responds:
            return False
        answers_uncached = cls.probe_rd0(resolver, "verification-noncached.example/A")
        if answers_uncached:
            return False
        # Plant a record with an RD=1 query, then check the RD=0 probe sees it.
        if resolver.honors_rd_bit:
            resolver.cached_records.setdefault("verification-cached.example/A", 0.0)
        return cls.probe_rd0(resolver, "verification-cached.example/A")

    # ----------------------------------------------------------------- main
    def run(self) -> CacheSnoopingReport:
        """Execute the full study and build the report."""
        responding = [r for r in self.resolvers if r.responds]
        verified = [r for r in responding if self.verify_technique(r)]
        report = CacheSnoopingReport(
            resolvers_probed=len(self.resolvers),
            resolvers_responding=len(responding),
            resolvers_verified=len(verified),
        )
        for query in POOL_QUERY_NAMES:
            cached = 0
            for resolver in verified:
                if self.probe_rd0(resolver, query):
                    cached += 1
                    ttl = resolver.cached_remaining_ttl(query)
                    if ttl is not None:
                        report.observed_ttls.append(ttl)
            report.rows.append(
                CacheSnoopingRow(
                    query=query,
                    cached_fraction=cached / len(verified) if verified else 0.0,
                    cached_count=cached,
                    not_cached_count=len(verified) - cached,
                )
            )
        ntp_resolvers = [r for r in verified if r.is_ntp_client_resolver()]
        report.ntp_client_resolvers = len(ntp_resolvers)
        report.fragment_accepting_ntp_resolvers = sum(
            1 for r in ntp_resolvers if r.accepts_fragments
        )
        return report
