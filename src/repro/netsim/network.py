"""The network fabric: hosts, links, delivery, and off-path injection.

The network delivers IPv4 packets between registered hosts with a per-link
latency and optional loss probability.  Two interfaces matter for the threat
model of the paper:

* :meth:`Network.inject` lets an *off-path* attacker put arbitrary packets —
  including packets with spoofed source addresses — onto the wire.  The
  attacker never receives a :class:`~repro.netsim.capture.PacketCapture`, so
  it cannot observe traffic between the victim resolver and the nameservers;
  everything it knows it must learn by querying the servers itself.
* :meth:`Network.attach_capture` gives tests (and explicit MitM baselines)
  visibility into delivered traffic.

Delivery runs through pipelines compiled per (src, dst) pair (see
:mod:`repro.netsim.datapath`): the transmit hot path is one dict hit that
yields the resolved latency, loss probability and the destination host's
flat deliver callable, then a single heap push.  Links carry an optional
:class:`~repro.netsim.datapath.LinkProfile` trust level; the default profile
performs full verification and is what every golden fixed-seed run uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush
from typing import Iterable, Optional

from repro.netsim.burst import DeliveryBurst, MAX_DELIVERY_BURST
from repro.netsim.capture import PacketCapture
from repro.netsim.datapath import (
    DEFAULT_LINK_PROFILE,
    DeliveryPipeline,
    LinkProfile,
    UNROUTED_PIPELINE,
    compile_deliver,
)
from repro.netsim.errors import AddressError, NoRouteError, SimulationError
from repro.netsim.faults import FaultChannel, FaultPlan, FaultStats
from repro.netsim.host import Host, OSProfile
from repro.netsim.ipid import IPIDAllocator
from repro.netsim.packet import IPv4Packet
from repro.netsim.simulator import Simulator, _BURST
from repro.netsim.udp import _address_word_sum
from repro.perf import STAGES, perf_counter


@dataclass(frozen=True)
class Link:
    """Delivery parameters between a pair of hosts (symmetric).

    Frozen: compiled pipelines bake these scalars in at first transmit, so
    in-place mutation would be silently ignored — change a link by calling
    :meth:`Network.set_link` with a new ``Link``, which also invalidates
    the compiled pipelines.
    """

    latency: float = 0.01
    loss_probability: float = 0.0
    mtu: int = 1500
    #: Optional trust level; ``None`` means the default (full verification)
    #: profile.  See :class:`repro.netsim.datapath.LinkProfile`.
    profile: Optional[LinkProfile] = None
    #: Optional fault plan; ``None`` (or an inert plan, normalised to
    #: ``None`` by :meth:`Network.set_link_faults`) keeps the exact
    #: fault-free fast paths.  See :mod:`repro.netsim.faults`.
    faults: Optional[FaultPlan] = None


#: Bound on the per-(src, dst) compiled-pipeline cache; src is attacker
#: controlled (spoofed), so the cache is cleared wholesale when full.
PIPELINE_CACHE_MAX_ENTRIES = 65536

#: Backwards-compatible alias (the pipeline cache replaced the link cache).
LINK_CACHE_MAX_ENTRIES = PIPELINE_CACHE_MAX_ENTRIES


class Network:
    """A set of hosts plus the rules for moving packets between them.

    Parameters
    ----------
    strict_routing:
        When true, :meth:`transmit` raises :class:`NoRouteError` (a typed
        :class:`~repro.netsim.errors.NetSimError`) for packets addressed to
        an unknown destination instead of silently dropping them.  The
        default keeps the Internet-like silent drop — attack scenarios
        legitimately send packets to unrouted addresses (e.g. a victim
        polling a poisoned address with no host behind it) — while strict
        mode turns typos in experiment topologies into hard errors.
    """

    def __init__(
        self,
        simulator: Simulator,
        default_latency: float = 0.01,
        default_loss: float = 0.0,
        strict_routing: bool = False,
    ) -> None:
        self.simulator = simulator
        self.default_link = Link(latency=default_latency, loss_probability=default_loss)
        self.strict_routing = strict_routing
        self._hosts: dict[str, Host] = {}
        self._links: dict[frozenset[str], Link] = {}
        #: Per-(src, dst) compiled delivery pipelines; invalidated by
        #: set_link and add_host.  Bounded (clear-on-full, like the intern
        #: tables): src is whatever the sender claims, so spoofing sweeps
        #: must not grow it unbounded.
        self._pipelines: dict[tuple[str, str], DeliveryPipeline] = {}
        #: Per-directed-pair fault channels.  Owned here — NOT in the
        #: pipeline cache — so Gilbert–Elliott chain state and the
        #: channel RNG position survive pipeline invalidation (topology
        #: edits, cache overflow from spoofing sweeps).
        self._fault_channels: dict[tuple[str, str], FaultChannel] = {}
        #: Counters of channels retired by scheduled regime swaps
        #: (:meth:`swap_link_faults`), folded into :meth:`fault_stats` so a
        #: multi-phase chaos campaign never loses accounting mid-run.
        self._retired_fault_stats: dict[tuple[str, str], FaultStats] = {}
        #: Per-directed-pair swap epoch; epoch N > 0 derives the channel's
        #: named stream as ``faults:src>dst@N`` so a swapped-in plan gets
        #: fresh draws instead of rewinding the pair's original stream.
        self._fault_epochs: dict[tuple[str, str], int] = {}
        self._captures: list[PacketCapture] = []
        self._rng = simulator.spawn_rng()
        self.packets_transmitted = 0
        self.packets_dropped = 0

    # ---------------------------------------------------------------- hosts
    def add_host(
        self,
        name: str,
        ip: str,
        profile: Optional[OSProfile] = None,
        ipid_allocator: Optional[IPIDAllocator] = None,
        interface_mtu: int = 1500,
    ) -> Host:
        """Create a host, register it under its IP address, and return it."""
        if ip in self._hosts:
            raise NoRouteError(f"address {ip} already registered")
        host = Host(
            name=name,
            ip=ip,
            network=self,
            profile=profile,
            ipid_allocator=ipid_allocator,
            interface_mtu=interface_mtu,
        )
        self._hosts[ip] = host
        # A cached "unrouted" pipeline for this address is now stale.
        self._pipelines.clear()
        return host

    def host(self, ip: str) -> Host:
        """Look up the host registered at ``ip``."""
        if ip not in self._hosts:
            raise NoRouteError(f"no host at {ip}")
        return self._hosts[ip]

    def has_host(self, ip: str) -> bool:
        """True when a host is registered at ``ip``."""
        return ip in self._hosts

    def hosts(self) -> list[Host]:
        """All registered hosts."""
        return list(self._hosts.values())

    # ---------------------------------------------------------------- links
    def set_link(self, ip_a: str, ip_b: str, link: Link) -> None:
        """Override delivery parameters between two addresses."""
        if link.latency < 0:
            raise SimulationError(f"negative link latency: {link.latency}")
        self._links[frozenset((ip_a, ip_b))] = link
        self._pipelines.clear()

    def link_between(self, ip_a: str, ip_b: str) -> Link:
        """The link used between two addresses (default if not overridden)."""
        return self._links.get(frozenset((ip_a, ip_b)), self.default_link)

    def trust_link(self, ip_a: str, ip_b: str) -> None:
        """Mark the link between two addresses as trusted (opt-in fast path).

        Keeps the current latency/loss/MTU and swaps the profile for
        :meth:`LinkProfile.trusted`, which skips UDP checksum verification
        and unfragmented-packet defrag bookkeeping on delivery.
        """
        current = self.link_between(ip_a, ip_b)
        self.set_link(
            ip_a,
            ip_b,
            Link(
                latency=current.latency,
                loss_probability=current.loss_probability,
                mtu=current.mtu,
                profile=LinkProfile.trusted(),
                faults=current.faults,
            ),
        )

    # --------------------------------------------------------------- faults
    def set_link_faults(self, ip_a: str, ip_b: str, *components) -> FaultPlan:
        """Attach fault components to the link between two addresses.

        Accepts either loose components (composed into a
        :class:`~repro.netsim.faults.FaultPlan` here) or one pre-built
        plan.  Keeps the link's latency/loss/MTU/profile and swaps in the
        plan; an inert plan (every component zero-rate — including the
        empty call, which clears faults) is normalised to ``None`` so the
        link keeps the exact fault-free fast paths.  Replacing an active
        plan resets the pair's channel state (chain states, RNG position,
        stats) on next transmit; returns the composed plan.
        """
        if len(components) == 1 and isinstance(components[0], FaultPlan):
            plan = components[0]
        else:
            plan = FaultPlan(*components)
        current = self.link_between(ip_a, ip_b)
        self.set_link(
            ip_a,
            ip_b,
            Link(
                latency=current.latency,
                loss_probability=current.loss_probability,
                mtu=current.mtu,
                profile=current.profile,
                faults=None if plan.is_inert else plan,
            ),
        )
        return plan

    def swap_link_faults(self, ip_a: str, ip_b: str, *components) -> FaultPlan:
        """Replace a link's fault plan mid-run (a scheduled regime swap).

        Like :meth:`set_link_faults`, but built for phased chaos regimes:
        the accumulated :class:`FaultStats` of both directed pairs are
        folded into a retired-counters ledger (so :meth:`fault_stats` and
        :meth:`pair_fault_stats` keep counting across swaps), and the
        replacement channels draw from fresh *epoch-tagged* named streams
        (``faults:src>dst@N``) instead of restarting — and thereby
        replaying — the pair's original stream.  An empty call retires
        the faults entirely (the link heals).
        """
        for pair in ((ip_a, ip_b), (ip_b, ip_a)):
            channel = self._fault_channels.pop(pair, None)
            if channel is not None:
                retired = self._retired_fault_stats.get(pair)
                if retired is None:
                    retired = self._retired_fault_stats[pair] = FaultStats()
                retired.merge(channel.stats)
            self._fault_epochs[pair] = self._fault_epochs.get(pair, 0) + 1
        return self.set_link_faults(ip_a, ip_b, *components)

    def apply_fault_schedule(
        self, ip_a: str, ip_b: str, schedule, extra: tuple = ()
    ) -> None:
        """Attach a :class:`~repro.netsim.faults.FaultSchedule` to a link.

        Entries at or before the current instant apply immediately via
        :meth:`set_link_faults`; later entries become simulator events
        firing :meth:`swap_link_faults` at their absolute times.  ``extra``
        components (e.g. the client's base fault regime from its
        population spec) are composed into *every* entry's plan, so a
        scheduled chaos overlay layers on top of — rather than silently
        clearing — the link's standing faults.  An inert schedule attaches
        nothing and schedules nothing: fault-free runs stay bit-identical.
        """
        if schedule.is_inert:
            return
        extra = tuple(extra)
        now = self.simulator.now
        for time, components in schedule.entries:
            merged = extra + tuple(components)
            if time <= now:
                self.set_link_faults(ip_a, ip_b, *merged)
            else:
                self.simulator.schedule(
                    time - now,
                    self.swap_link_faults,
                    label="fault-regime-swap",
                    args=(ip_a, ip_b, *merged),
                )

    def fault_channel(self, src: str, dst: str) -> Optional[FaultChannel]:
        """The live channel for one directed pair (None until traffic flows
        — channels materialise at first pipeline compile)."""
        return self._fault_channels.get((src, dst))

    def fault_stats(self) -> FaultStats:
        """Aggregate fault counters across every channel in the network.

        Includes channels retired by scheduled regime swaps — the total is
        monotone across a phased campaign.
        """
        total = FaultStats()
        for stats in self._retired_fault_stats.values():
            total.merge(stats)
        for channel in self._fault_channels.values():
            total.merge(channel.stats)
        return total

    def pair_fault_stats(self, src: str, dst: str) -> FaultStats:
        """Accumulated counters for one directed pair (retired + live)."""
        total = FaultStats()
        retired = self._retired_fault_stats.get((src, dst))
        if retired is not None:
            total.merge(retired)
        channel = self._fault_channels.get((src, dst))
        if channel is not None:
            total.merge(channel.stats)
        return total

    def per_pair_fault_stats(self) -> dict[tuple[str, str], FaultStats]:
        """Merged (retired + live) counters for every directed pair seen.

        This is what surfaces per-link fault evidence into population
        aggregates: callers group the directed pairs however they like
        (per client, per correlation group) and merge.
        """
        merged: dict[tuple[str, str], FaultStats] = {}
        for pair, stats in self._retired_fault_stats.items():
            copy = FaultStats()
            copy.merge(stats)
            merged[pair] = copy
        for pair, channel in self._fault_channels.items():
            copy = merged.get(pair)
            if copy is None:
                copy = merged[pair] = FaultStats()
            copy.merge(channel.stats)
        return merged

    # ------------------------------------------------------------ pipelines
    def pipeline_for(self, src: str, dst: str) -> DeliveryPipeline:
        """The compiled pipeline used from ``src`` to ``dst`` (cached).

        Raises :class:`NoRouteError` when the destination is unknown —
        callers that want the transmit-path drop semantics go through
        :meth:`transmit` instead.
        """
        pipeline = self._pipelines.get((src, dst))
        if pipeline is None:
            pipeline = self._compile_pipeline(src, dst)
        if pipeline.deliver is None:
            raise NoRouteError(f"no host at {dst}")
        return pipeline

    def _compile_pipeline(self, src: str, dst: str) -> DeliveryPipeline:
        """Resolve host, link and trust profile into one cached pipeline."""
        host = self._hosts.get(dst)
        if host is None:
            pipeline = UNROUTED_PIPELINE
        else:
            link = self.link_between(src, dst)
            if link.latency < 0:
                raise SimulationError(f"negative link latency: {link.latency}")
            profile = link.profile or DEFAULT_LINK_PROFILE
            # Would this pair's scalar path verify checksums at all?  Only
            # then does the burst engine need a pseudo-header sum — and
            # ``src`` is whatever the sender claims, so a syntactically
            # invalid spoofed source cannot bake one; such pairs keep the
            # scalar verify path (which reports the same failure it always
            # did, at delivery time rather than here).
            vector_verify = profile.verify_checksum and host.datapath.verify_checksum
            burst_parse = True
            addr_sum = 0
            if vector_verify:
                try:
                    addr_sum = _address_word_sum(src) + _address_word_sum(dst)
                except AddressError:
                    # The scalar path raises on this source at delivery
                    # time (when a checksummed packet arrives); keep the
                    # pair off the pre-parsed path so it still does.
                    vector_verify = False
                    burst_parse = False
            channel = None
            plan = link.faults
            if plan is not None:
                # Channels outlive the pipeline cache (state must survive
                # invalidation); a *different* plan on the link means the
                # experimenter replaced it — start a fresh channel.
                channel = self._fault_channels.get((src, dst))
                if channel is None or channel.plan is not plan:
                    # Epoch 0 keeps the original stream name (bit-identity
                    # with pre-swap behaviour); swapped-in plans get their
                    # own stream so they never replay earlier draws.
                    epoch = self._fault_epochs.get((src, dst), 0)
                    name = (
                        f"faults:{src}>{dst}"
                        if epoch == 0
                        else f"faults:{src}>{dst}@{epoch}"
                    )
                    channel = FaultChannel(
                        plan, self.simulator.spawn_named_rng(name)
                    )
                    self._fault_channels[(src, dst)] = channel
            pipeline = DeliveryPipeline(
                link.latency,
                link.loss_probability,
                compile_deliver(host.datapath, profile),
                datapath=host.datapath,
                burst_parse=burst_parse,
                vector_verify=vector_verify,
                burst_bookkeeping=profile.defrag_bookkeeping,
                addr_sum=addr_sum,
                faults=channel,
            )
        if len(self._pipelines) >= PIPELINE_CACHE_MAX_ENTRIES:
            self._pipelines.clear()
        self._pipelines[(src, dst)] = pipeline
        return pipeline

    def invalidate_pipelines(self) -> None:
        """Drop every compiled pipeline (they recompile on next transmit)."""
        self._pipelines.clear()

    # ------------------------------------------------------------- captures
    def attach_capture(self, capture: PacketCapture) -> None:
        """Attach a capture that observes every delivered packet."""
        self._captures.append(capture)

    def detach_capture(self, capture: PacketCapture) -> None:
        """Remove a previously attached capture."""
        self._captures.remove(capture)

    # ------------------------------------------------------------- delivery
    def transmit(self, packet: IPv4Packet) -> None:
        """Deliver a packet from its (claimed) source to its destination.

        Packets addressed to unknown destinations are silently dropped, like
        the real Internet does for unrouted addresses — unless the network
        was built with ``strict_routing=True``, in which case a typed
        :class:`NoRouteError` is raised.
        """
        self.packets_transmitted += 1
        pipeline = self._pipelines.get((packet.src, packet.dst))
        if pipeline is None:
            pipeline = self._compile_pipeline(packet.src, packet.dst)
        deliver = pipeline.deliver
        if deliver is None:
            if self.strict_routing:
                raise NoRouteError(f"no host at {packet.dst}")
            self.packets_dropped += 1
            return
        if pipeline.loss_probability > 0 and self._rng.random() < pipeline.loss_probability:
            self.packets_dropped += 1
            return
        if pipeline.faults is not None:
            # Faulted pair: off the inlined fast path onto the channel's
            # slow path.  Base-loss draws above already came from the
            # network RNG in their usual order, so fault-free pairs in the
            # same run stay bit-identical.
            return self._transmit_faulted(pipeline, packet)
        simulator = self.simulator
        if self._captures:
            now = simulator._now
            for capture in self._captures:
                capture.observe(packet, now)
        # Hot path: an inlined Simulator.post — compiled pipelines verified
        # their latency non-negative at compile time, so the delay check and
        # the call frame are both skipped.  One anonymous heap entry per
        # packet, identical to what post() would push.
        sequence = simulator._sequence
        simulator._sequence = sequence + 1
        heappush(
            simulator._queue,
            (simulator._now + pipeline.latency, sequence, deliver, packet),
        )

    def transmit_batch(self, packets: Iterable[IPv4Packet]) -> None:
        """Deliver a whole burst of packets as one call.

        Event-for-event equivalent to calling :meth:`transmit` once per
        packet in order (pinned by a property test): the same heap entries
        with the same sequence numbers, the same loss draws in the same
        order, the same capture observations and the same counters.  The
        win is constant-factor only — lookups, bound methods and the
        simulator handles are hoisted out of the per-packet loop, which is
        what the spoofed-burst attack loops hand the simulator.
        """
        pipelines = self._pipelines
        compile_pipeline = self._compile_pipeline
        captures = self._captures
        rng_random = self._rng.random
        strict = self.strict_routing
        simulator = self.simulator
        queue = simulator._queue
        now = simulator._now  # constant: no event runs mid-batch
        for packet in packets:
            self.packets_transmitted += 1
            pipeline = pipelines.get((packet.src, packet.dst))
            if pipeline is None:
                pipeline = compile_pipeline(packet.src, packet.dst)
            deliver = pipeline.deliver
            if deliver is None:
                if strict:
                    raise NoRouteError(f"no host at {packet.dst}")
                self.packets_dropped += 1
                continue
            if pipeline.loss_probability > 0 and rng_random() < pipeline.loss_probability:
                self.packets_dropped += 1
                continue
            if pipeline.faults is not None:
                self._transmit_faulted(pipeline, packet)
                continue
            if captures:
                for capture in captures:
                    capture.observe(packet, now)
            sequence = simulator._sequence
            simulator._sequence = sequence + 1
            heappush(queue, (now + pipeline.latency, sequence, deliver, packet))

    def _transmit_faulted(self, pipeline: DeliveryPipeline, packet: IPv4Packet) -> None:
        """Schedule one packet through a faulted pair's channel.

        The event-for-event-equivalent slow path behind
        :meth:`transmit` / :meth:`transmit_batch` for links carrying an
        active fault plan: the channel decides drop / corrupt / delay /
        duplicate, and each surviving delivery is scheduled as the exact
        anonymous heap entry the fast path would have pushed (at the link
        latency plus the fault-assigned extra delay).  Captures observe
        the surviving deliveries — what actually travels the wire,
        corrupted bytes and duplicates included — mirroring how the
        fault-free path only observes packets that passed the loss draw.
        """
        simulator = self.simulator
        if STAGES.enabled:
            t0 = perf_counter()
            deliveries = pipeline.faults.process(packet, simulator._now)
            STAGES.add_many("faults", perf_counter() - t0, 1)
        else:
            deliveries = pipeline.faults.process(packet, simulator._now)
        if not deliveries:
            self.packets_dropped += 1
            return
        deliver = pipeline.deliver
        latency = pipeline.latency
        captures = self._captures
        queue = simulator._queue
        now = simulator._now
        for extra, delivered in deliveries:
            if captures:
                for capture in captures:
                    capture.observe(delivered, now)
            sequence = simulator._sequence
            simulator._sequence = sequence + 1
            heappush(queue, (now + latency + extra, sequence, deliver, delivered))

    def transmit_burst(self, packets: Iterable[IPv4Packet]) -> None:
        """Deliver a burst through the coalesced burst engine.

        *Logically* event-for-event equivalent to calling :meth:`transmit`
        once per packet in order (pinned by a property test): the same
        sequence-number allocation, the same execution order, the same
        loss draws, capture observations, counters and delivered bytes.
        The heap-entry *shape* differs — consecutive packets delivered at
        the same instant are pushed as one
        :class:`~repro.netsim.burst.DeliveryBurst` entry (capped at
        :data:`~repro.netsim.burst.MAX_DELIVERY_BURST` packets), whose
        drain verifies UDP checksums in a single vectorised pass — which
        is what makes an injected spray cost one heap push instead of N.
        Callers that need the per-packet entry shape (anything that mixes
        bounded ``run(max_events=...)`` stepping with exact event counts)
        keep using :meth:`transmit_batch`.
        """
        pipelines_get = self._pipelines.get
        compile_pipeline = self._compile_pipeline
        captures = self._captures
        rng_random = self._rng.random
        strict = self.strict_routing
        simulator = self.simulator
        now = simulator._now  # constant: no event runs mid-burst
        group: list = []
        group_time = 0.0
        flush = self._flush_burst_group
        # Counters accumulate locally and reconcile once (and before the
        # strict-routing raise), keeping the per-packet loop free of
        # attribute read-modify-writes.
        transmitted = 0
        dropped = 0
        try:
            for packet in packets:
                transmitted += 1
                pipeline = pipelines_get((packet.src, packet.dst))
                if pipeline is None:
                    pipeline = compile_pipeline(packet.src, packet.dst)
                if pipeline.deliver is None:
                    if strict:
                        # Keep exception semantics aligned with singular
                        # calls: everything before the unroutable packet is
                        # already on the wire.
                        if group:
                            flush(group, group_time)
                            group = []
                        raise NoRouteError(f"no host at {packet.dst}")
                    dropped += 1
                    continue
                if pipeline.loss_probability > 0 and rng_random() < pipeline.loss_probability:
                    dropped += 1
                    continue
                if pipeline.faults is not None:
                    # Faulted pair: the channel's deliveries feed the same
                    # grouping, so a corrupted copy landing at the group's
                    # instant enters the DeliveryBurst and is rejected by
                    # the *batched* checksum verify (falling back to the
                    # scalar path, which counts the derived failure);
                    # jittered/duplicated deliveries at other instants
                    # split the group exactly as a latency change would.
                    if STAGES.enabled:
                        t0 = perf_counter()
                        deliveries = pipeline.faults.process(packet, now)
                        STAGES.add_many("faults", perf_counter() - t0, 1)
                    else:
                        deliveries = pipeline.faults.process(packet, now)
                    if not deliveries:
                        dropped += 1
                        continue
                    for extra, delivered in deliveries:
                        if captures:
                            for capture in captures:
                                capture.observe(delivered, now)
                        deliver_at = now + pipeline.latency + extra
                        if group:
                            if deliver_at == group_time and len(group) < MAX_DELIVERY_BURST:
                                group.append((pipeline, delivered))
                                continue
                            flush(group, group_time)
                        group = [(pipeline, delivered)]
                        group_time = deliver_at
                    continue
                if captures:
                    for capture in captures:
                        capture.observe(packet, now)
                deliver_at = now + pipeline.latency
                if group:
                    if deliver_at == group_time and len(group) < MAX_DELIVERY_BURST:
                        group.append((pipeline, packet))
                        continue
                    flush(group, group_time)
                group = [(pipeline, packet)]
                group_time = deliver_at
            if group:
                flush(group, group_time)
        finally:
            self.packets_transmitted += transmitted
            self.packets_dropped += dropped

    def _flush_burst_group(self, group: list, deliver_at: float) -> None:
        """Push one same-instant delivery group as a single heap entry.

        A single-packet group degrades to the exact anonymous entry
        :meth:`transmit` would have pushed; larger groups become one
        :class:`~repro.netsim.burst.DeliveryBurst` entry consuming one
        sequence number per packet (friend access to the simulator's heap,
        mirroring the inlined post of the singular path).
        """
        simulator = self.simulator
        sequence = simulator._sequence
        count = len(group)
        if count == 1:
            pipeline, packet = group[0]
            simulator._sequence = sequence + 1
            heappush(
                simulator._queue, (deliver_at, sequence, pipeline.deliver, packet)
            )
            return
        simulator._sequence = sequence + count
        simulator.bursts_posted += 1
        heappush(simulator._queue, (deliver_at, sequence, DeliveryBurst(group), _BURST))

    def inject_burst(
        self, packets: Iterable[IPv4Packet], mark_spoofed: bool = True
    ) -> None:
        """Off-path injection through the burst engine (see :meth:`transmit_burst`)."""
        packets = list(packets)
        if mark_spoofed:
            for packet in packets:
                packet.metadata.setdefault("spoofed", True)
        self.transmit_burst(packets)

    def inject(self, packet: IPv4Packet, mark_spoofed: bool = True) -> None:
        """Off-path injection of a (typically source-spoofed) packet.

        The packet is delivered exactly like normal traffic; ``mark_spoofed``
        tags it so tests and the defragmentation cache can count how often a
        spoofed fragment ends up in a reassembled packet.  The tag models
        ground truth available to the experimenter, not to the victim.
        """
        if mark_spoofed:
            packet.metadata.setdefault("spoofed", True)
        self.transmit(packet)

    def inject_batch(
        self, packets: Iterable[IPv4Packet], mark_spoofed: bool = True
    ) -> None:
        """Off-path injection of a whole burst (see :meth:`transmit_batch`)."""
        packets = list(packets)
        if mark_spoofed:
            for packet in packets:
                packet.metadata.setdefault("spoofed", True)
        self.transmit_batch(packets)
