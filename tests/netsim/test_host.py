"""Tests for the host network stack (UDP, PMTUD, defragmentation, profiles)."""

import pytest

from repro.netsim.errors import PortInUseError
from repro.netsim.host import OSProfile
from repro.netsim.icmp import frag_needed
from repro.netsim.network import Network
from repro.netsim.packet import IPProtocol, IPv4Packet
from repro.netsim.simulator import Simulator
from repro.netsim.udp import UDPDatagram, encode_udp


def build_pair(profile=None):
    sim = Simulator(seed=1)
    net = Network(sim)
    sender = net.add_host("sender", "10.0.0.1")
    receiver = net.add_host("receiver", "10.0.0.2", profile=profile)
    return sim, net, sender, receiver


class TestUDPDelivery:
    def test_datagram_delivered_to_bound_port(self):
        sim, net, sender, receiver = build_pair()
        received = []
        receiver.bind(53, lambda payload, ip, port: received.append((payload, ip, port)))
        sender.bind(4000).sendto(b"hello", "10.0.0.2", 53)
        sim.run()
        assert received == [(b"hello", "10.0.0.1", 4000)]

    def test_datagram_to_unbound_port_dropped(self):
        sim, net, sender, receiver = build_pair()
        sender.bind(4000).sendto(b"hello", "10.0.0.2", 9999)
        sim.run()
        assert receiver.stats.udp_received == 1  # parsed fine, no socket

    def test_inbox_mode_without_handler(self):
        sim, net, sender, receiver = build_pair()
        socket = receiver.bind(53)
        sender.bind(4000).sendto(b"queued", "10.0.0.2", 53)
        sim.run()
        assert len(socket.inbox) == 1
        assert socket.inbox[0].payload == b"queued"

    def test_port_conflict_rejected(self):
        _, _, _, receiver = build_pair()
        receiver.bind(53)
        with pytest.raises(PortInUseError):
            receiver.bind(53)

    def test_ephemeral_ports_are_in_range_and_unique(self):
        _, _, sender, _ = build_pair()
        ports = {sender.bind(0).port for _ in range(50)}
        assert all(49152 <= p <= 65535 for p in ports)
        assert len(ports) == 50

    def test_closed_socket_releases_port(self):
        _, _, _, receiver = build_pair()
        socket = receiver.bind(53)
        socket.close()
        receiver.bind(53)  # no exception


class TestPMTUDAndFragmentation:
    def test_icmp_frag_needed_lowers_path_mtu(self):
        sim, net, sender, receiver = build_pair()
        message = frag_needed(296)
        message.metadata["about_destination"] = "10.0.0.2"
        sender._handle_icmp(message, "10.0.0.99")
        assert sender.path_mtu("10.0.0.2") == 296
        assert sender.path_mtu("10.0.0.3") == 1500

    def test_large_datagram_fragmented_and_reassembled(self):
        sim, net, sender, receiver = build_pair()
        received = []
        receiver.bind(53, lambda payload, ip, port: received.append(payload))
        message = frag_needed(296)
        message.metadata["about_destination"] = "10.0.0.2"
        sender._handle_icmp(message, "10.0.0.99")
        payload = bytes(range(256)) * 4
        sender.bind(0).sendto(payload, "10.0.0.2", 53)
        sim.run()
        assert received == [payload]
        assert sender.stats.packets_fragmented == 1
        assert receiver.defrag.stats.packets_reassembled == 1

    def test_icmp_cannot_raise_mtu(self):
        sim, net, sender, receiver = build_pair()
        low = frag_needed(296)
        low.metadata["about_destination"] = "10.0.0.2"
        sender._handle_icmp(low, "x")
        high = frag_needed(1400)
        high.metadata["about_destination"] = "10.0.0.2"
        sender._handle_icmp(high, "x")
        assert sender.path_mtu("10.0.0.2") == 296

    def test_hardened_profile_ignores_frag_needed(self):
        sim, net, sender, receiver = build_pair()
        hardened = net.add_host("hardened", "10.0.0.3", profile=OSProfile.hardened())
        message = frag_needed(296)
        message.metadata["about_destination"] = "10.0.0.2"
        hardened._handle_icmp(message, "x")
        assert hardened.path_mtu("10.0.0.2") == 1500

    def test_mtu_clamped_to_profile_minimum(self):
        sim, net, sender, receiver = build_pair()
        message = frag_needed(40)
        message.metadata["about_destination"] = "10.0.0.2"
        sender._handle_icmp(message, "x")
        assert sender.path_mtu("10.0.0.2") == sender.profile.min_pmtu

    def test_forget_pmtu(self):
        sim, net, sender, receiver = build_pair()
        message = frag_needed(296)
        message.metadata["about_destination"] = "10.0.0.2"
        sender._handle_icmp(message, "x")
        sender.forget_pmtu("10.0.0.2")
        assert sender.path_mtu("10.0.0.2") == 1500

    def test_send_icmp_over_network(self):
        sim, net, sender, receiver = build_pair()
        message = frag_needed(552)
        message.metadata["about_destination"] = "10.0.0.1"
        sender.send_icmp("10.0.0.2", message)
        sim.run()
        assert receiver.stats.icmp_received == 1
        assert receiver.path_mtu("10.0.0.1") == 552


class TestChecksumEnforcement:
    def _spoofed_packet(self, payload_src: str, claimed_src: str) -> IPv4Packet:
        datagram = UDPDatagram(src_port=53, dst_port=53, payload=b"forged response")
        payload = encode_udp(payload_src, "10.0.0.2", datagram)
        return IPv4Packet(
            src=claimed_src, dst="10.0.0.2", protocol=IPProtocol.UDP, payload=payload
        )

    def test_bad_checksum_dropped(self):
        sim, net, sender, receiver = build_pair()
        received = []
        receiver.bind(53, lambda payload, ip, port: received.append(payload))
        # Payload checksummed for a different source than the IP header claims.
        net.inject(self._spoofed_packet("9.9.9.9", "10.0.0.1"))
        sim.run()
        assert received == []
        assert receiver.stats.udp_checksum_failures == 1

    def test_correct_checksum_accepted(self):
        sim, net, sender, receiver = build_pair()
        received = []
        receiver.bind(53, lambda payload, ip, port: received.append(payload))
        net.inject(self._spoofed_packet("10.0.0.1", "10.0.0.1"))
        sim.run()
        assert received == [b"forged response"]

    def test_verification_disabled_by_profile(self):
        profile = OSProfile(name="lax", verify_udp_checksum=False)
        sim, net, sender, receiver = build_pair(profile=profile)
        received = []
        receiver.bind(53, lambda payload, ip, port: received.append(payload))
        net.inject(self._spoofed_packet("9.9.9.9", "10.0.0.1"))
        sim.run()
        assert received == [b"forged response"]


class TestProfiles:
    def test_linux_profile_defaults(self):
        profile = OSProfile.linux()
        assert profile.reassembly_timeout == 30.0
        assert profile.max_pending_fragments == 64

    def test_windows_profiles(self):
        assert OSProfile.windows().reassembly_timeout == 60.0
        assert OSProfile.windows().max_pending_fragments == 100
        assert OSProfile.windows_slow_expiry().reassembly_timeout == 120.0

    def test_fragment_filtering_profile_drops_fragments(self):
        sim, net, sender, receiver = build_pair(profile=OSProfile.fragment_filtering())
        received = []
        receiver.bind(53, lambda payload, ip, port: received.append(payload))
        message = frag_needed(296)
        message.metadata["about_destination"] = "10.0.0.2"
        sender._handle_icmp(message, "x")
        sender.bind(0).sendto(bytes(1000), "10.0.0.2", 53)
        sim.run()
        assert received == []

    def test_packet_tap_sees_incoming_packets(self):
        sim, net, sender, receiver = build_pair()
        seen = []
        receiver.packet_tap = seen.append
        receiver.bind(53)
        sender.bind(0).sendto(b"x", "10.0.0.2", 53)
        sim.run()
        assert len(seen) == 1 and seen[0].src == "10.0.0.1"
