"""Chronos' Byzantine-tolerant sample selection.

Given offset samples from a random subset of the pool, Chronos:

1. sorts the samples and discards the lowest third and the highest third,
2. checks that the surviving samples agree with each other (spread below
   ``agreement_bound``) and do not diverge too far from the local clock
   (``drift_bound``, the `ERR` bound of the proposal),
3. if both checks pass, averages the survivors; otherwise it re-samples, and
   after ``max_retries`` failures enters *panic mode*, querying the entire
   pool and averaging the middle third of all responses.

The guarantee — an attacker must control more than two thirds of the pool to
shift time — is exactly what the DNS attack of the paper defeats by stuffing
the pool with attacker addresses during generation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ChronosSelectionResult:
    """Outcome of one selection round."""

    accepted: bool
    offset: float
    surviving_samples: list[float]
    discarded_low: int
    discarded_high: int
    reason: str = ""

    @property
    def sample_count(self) -> int:
        """Number of samples that survived trimming."""
        return len(self.surviving_samples)


def chronos_select(
    samples: list[float],
    local_offset_estimate: float = 0.0,
    agreement_bound: float = 0.025,
    drift_bound: float = 0.125,
) -> ChronosSelectionResult:
    """Run one round of Chronos sample selection.

    Parameters
    ----------
    samples:
        Offset samples (seconds) measured against the queried servers.
    local_offset_estimate:
        The client's current belief about its own offset (0 for a disciplined
        clock); survivors must not diverge from it by more than ``drift_bound``.
    agreement_bound:
        Maximum spread allowed between the surviving samples (the proposal
        uses a few tens of milliseconds).
    drift_bound:
        Maximum distance of the surviving average from the local estimate
        before the round is rejected.
    """
    if not samples:
        return ChronosSelectionResult(
            accepted=False,
            offset=0.0,
            surviving_samples=[],
            discarded_low=0,
            discarded_high=0,
            reason="no samples",
        )
    ordered = sorted(samples)
    third = len(ordered) // 3
    survivors = ordered[third : len(ordered) - third] if third > 0 else list(ordered)
    if not survivors:
        survivors = list(ordered)

    spread = max(survivors) - min(survivors)
    average = float(np.mean(survivors))
    if spread > agreement_bound:
        return ChronosSelectionResult(
            accepted=False,
            offset=average,
            surviving_samples=survivors,
            discarded_low=third,
            discarded_high=third,
            reason=f"survivors disagree (spread {spread:.3f}s)",
        )
    if abs(average - local_offset_estimate) > drift_bound:
        return ChronosSelectionResult(
            accepted=False,
            offset=average,
            surviving_samples=survivors,
            discarded_low=third,
            discarded_high=third,
            reason=f"survivors diverge from local clock ({average:+.3f}s)",
        )
    return ChronosSelectionResult(
        accepted=True,
        offset=average,
        surviving_samples=survivors,
        discarded_low=third,
        discarded_high=third,
    )


def panic_select(samples: list[float]) -> float:
    """Panic-mode time calculation: average the middle third of all samples.

    Panic mode queries every server in the pool.  With the attacker
    controlling more than two thirds of the pool, even the middle third is
    attacker controlled, so panic mode converges to the attacker's time —
    the quantitative point behind the ``2/3`` bound of section VI-C.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    third = len(ordered) // 3
    middle = ordered[third : len(ordered) - third] if third > 0 else list(ordered)
    if not middle:
        middle = list(ordered)
    return float(np.mean(middle))


def minimum_attacker_fraction_to_shift() -> float:
    """The attacker-control fraction above which Chronos' guarantee fails."""
    return 2.0 / 3.0
