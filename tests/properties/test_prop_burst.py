"""Property tests pinning the burst engine to the singular paths.

Three pinned equivalences:

* ``Network.transmit_burst`` must be *logically* event-for-event
  equivalent to N single ``transmit`` calls under a fixed seed — same
  sequence-number consumption, same delivery order and bytes, same loss
  draws, captures and counters — even though the heap-entry shape differs
  (same-instant groups coalesce into one burst entry).  The property
  reuses the worlds of ``test_prop_batch_delivery``.
* ``RateLimiter.consume_burst(source, n, now)`` must match ``n``
  sequential ``consume()`` calls bit-for-bit: decisions in order, final
  bucket state, and every aggregate counter, across token levels, refill
  boundaries and fractional rates.
* The burst checksum verify (both the flat arithmetic pass and the numpy
  stacked pass) must accept/reject exactly the packets the scalar
  word-sum fold accepts/rejects, byte-for-byte.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.burst import DeliveryBurst
from repro.netsim.packet import IPv4Packet
from repro.netsim.simulator import Simulator
from repro.netsim.network import Network
from repro.netsim.udp import UDPDatagram, encode_udp, udp_checksum_arith
from repro.ntp.rate_limit import RateLimitDecision, RateLimiter

from tests.properties.test_prop_batch_delivery import (
    HOST_IPS,
    build_packets,
    build_world,
    observable_state,
    sends,
)


class TestTransmitBurstEquivalence:
    @given(st.lists(sends, min_size=1, max_size=25), st.sampled_from([0.0, 0.35]))
    @settings(max_examples=60, deadline=None)
    def test_burst_is_logically_equivalent_to_singles(self, plan, loss):
        # World A: N singular transmit/inject calls.
        sim_a, net_a, recv_a, cap_a = build_world(loss)
        for packet, spoof in build_packets(plan):
            if spoof:
                net_a.inject(packet)
            else:
                net_a.transmit(packet)
        sim_a.run()
        state_a = observable_state(sim_a, net_a, recv_a, cap_a, net_a.hosts)

        # World B: the same interleaving through the burst engine, split
        # into one inject_burst (spoofed) per contiguous run to preserve
        # ordering exactly as the singular calls produced it.
        sim_b, net_b, recv_b, cap_b = build_world(loss)
        pending: list[IPv4Packet] = []
        pending_spoof: bool | None = None

        def flush():
            nonlocal pending, pending_spoof
            if not pending:
                return
            if pending_spoof:
                net_b.inject_burst(pending)
            else:
                net_b.transmit_burst(pending)
            pending = []
            pending_spoof = None

        for packet, spoof in build_packets(plan):
            if pending_spoof is not None and spoof != pending_spoof:
                flush()
            pending.append(packet)
            pending_spoof = spoof
        flush()
        sim_b.run()
        state_b = observable_state(sim_b, net_b, recv_b, cap_b, net_b.hosts)

        assert state_a == state_b


# ------------------------------------------------------------- rate limiter
def limiter_pair(average_interval, burst_tolerance, send_kod, enabled):
    return (
        RateLimiter(
            average_interval=average_interval,
            burst_tolerance=burst_tolerance,
            send_kod=send_kod,
            enabled=enabled,
        ),
        RateLimiter(
            average_interval=average_interval,
            burst_tolerance=burst_tolerance,
            send_kod=send_kod,
            enabled=enabled,
        ),
    )


def limiter_state(limiter: RateLimiter, source: str):
    state = limiter.sources.get(source)
    return (
        limiter.queries_seen,
        limiter.queries_dropped,
        limiter.kods_sent,
        None
        if state is None
        else (state.last_seen, state.score, state.kod_sent, state.drops),
    )


#: Rates chosen to exercise integer buckets, fractional accumulation that
#: rounds at the tolerance boundary, and the zero-cost edge.
rates = st.sampled_from([8.0, 2.0, 0.1, 1.0 / 3.0, 0.0, 7.77])
tolerances = st.sampled_from([100.0, 10.0, 1.0, 0.3, 0.0])
#: Arrival plan: (gap seconds before the burst, burst size).
bursts = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        st.integers(min_value=1, max_value=40),
    ),
    min_size=1,
    max_size=12,
)


class TestConsumeBurstPinnedToSequential:
    @given(rates, tolerances, st.booleans(), st.booleans(), bursts)
    @settings(max_examples=200, deadline=None)
    def test_consume_burst_matches_n_sequential_consumes(
        self, rate, tolerance, send_kod, enabled, plan
    ):
        source = "192.0.2.200"
        bulk, sequential = limiter_pair(rate, tolerance, send_kod, enabled)
        now = 0.0
        for gap, n in plan:
            now += gap
            outcome = bulk.consume_burst(source, n, now)
            decisions = [sequential.consume(source, now) for _ in range(n)]

            # Decision layout: RESPOND × responds, then at most one KOD,
            # then DROPs — and the counts must match exactly.
            expected = [RateLimitDecision.RESPOND] * outcome.responds
            if outcome.kod:
                expected.append(RateLimitDecision.KOD)
            expected.extend([RateLimitDecision.DROP] * outcome.drops)
            assert decisions == expected

            # Bucket state and aggregate counters must match bit-for-bit:
            # switching a flow from per-query to burst accounting must not
            # perturb any later decision.
            assert limiter_state(bulk, source) == limiter_state(sequential, source)

    @given(rates, tolerances, bursts)
    @settings(max_examples=100, deadline=None)
    def test_consume_burst_interleaves_with_checks(self, rate, tolerance, plan):
        """Bursts and singular checks mix freely on one limiter."""
        source = "203.0.113.77"
        bulk, sequential = limiter_pair(rate, tolerance, True, True)
        now = 0.0
        for index, (gap, n) in enumerate(plan):
            now += gap
            if index % 2 == 0:
                bulk.consume_burst(source, n, now)
                for _ in range(n):
                    sequential.consume(source, now)
            else:
                for _ in range(n):
                    bulk.consume(source, now)
                sequential.consume_burst(source, n, now)
            assert limiter_state(bulk, source) == limiter_state(sequential, source)


class TestConsumeTimesClosedForm:
    @given(
        st.sampled_from([8.0, 2.0, 1.0, 0.0]),
        st.sampled_from([100.0, 10.0, 3.0]),
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_integer_schedules_match_sequential_exactly(self, rate, tolerance, gaps):
        """On integer-valued schedules the vectorised algebra is exact."""
        source = "198.51.100.44"
        closed, sequential = limiter_pair(rate, tolerance, True, True)
        times = []
        now = 0.0
        for gap in gaps:
            now += gap
            times.append(now)
        decisions = closed.consume_times(source, times)
        expected = [sequential.consume(source, t) for t in times]
        assert decisions == expected
        assert limiter_state(closed, source)[:3] == limiter_state(sequential, source)[:3]
        state_a = closed.sources[source]
        state_b = sequential.sources[source]
        assert state_a.last_seen == state_b.last_seen
        assert math.isclose(state_a.score, state_b.score, abs_tol=1e-9)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_float_schedules_track_sequential_scores(self, gaps):
        """Scores agree to float tolerance on arbitrary schedules."""
        source = "198.51.100.45"
        closed, sequential = limiter_pair(7.77, 40.0, True, True)
        times = []
        now = 0.0
        for gap in gaps:
            now += gap
            times.append(now)
        closed.consume_times(source, times)
        for t in times:
            sequential.consume(source, t)
        state_a = closed.sources[source]
        state_b = sequential.sources[source]
        assert math.isclose(state_a.score, state_b.score, rel_tol=1e-9, abs_tol=1e-6)


# ---------------------------------------------------------- burst checksums
def burst_world(count: int, corrupt_mask: int, payload_seed: int):
    """A star topology: one sender, ``count`` receivers, crafted packets."""
    simulator = Simulator(seed=3)
    network = Network(simulator)
    src = "10.9.9.1"
    network.add_host("sender", src)
    items = []
    for index in range(count):
        dst = f"10.9.10.{index + 1}"
        network.add_host(f"r{index}", dst)
        body = bytes(
            (payload_seed + index * 7 + offset) & 0xFF
            for offset in range((payload_seed + index) % 64)
        )
        checksum_src = "9.9.9.9" if corrupt_mask & (1 << index) else src
        payload = encode_udp(checksum_src, dst, UDPDatagram(4000, 53, body))
        packet = IPv4Packet.udp(src, dst, payload, index & 0xFFFF)
        items.append((network.pipeline_for(src, dst), packet))
    return items


class TestBurstChecksumPinnedToScalar:
    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=0xFFF),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=120, deadline=None)
    def test_flat_pass_matches_scalar_word_sum(self, count, corrupt_mask, seed):
        items = burst_world(count, corrupt_mask, seed)
        parsed = DeliveryBurst._vector_verify(items)
        if parsed is None:
            # Nothing verified (e.g. every checksum corrupted): treated as
            # all-scalar dispatch, i.e. an all-None parsed list.
            parsed = [None] * len(items)
        for (pipeline, packet), info in zip(items, parsed):
            data = packet.payload
            src_port = int.from_bytes(data[0:2], "big")
            dst_port = int.from_bytes(data[2:4], "big")
            checksum = int.from_bytes(data[6:8], "big")
            expected_ok = checksum == 0 or checksum == udp_checksum_arith(
                packet.src, packet.dst, src_port, dst_port, data[8:]
            )
            if expected_ok:
                assert info == (src_port, dst_port)
            else:
                assert info is None

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=0x3FF),
    )
    @settings(max_examples=60, deadline=None)
    def test_stacked_pass_matches_flat_pass(self, count, corrupt_mask):
        """The numpy stacked pass and the flat big-int pass are one fold.

        Uniform-size bursts only (the stacked pass's precondition); the
        threshold is bypassed by calling the passes directly.
        """
        simulator = Simulator(seed=4)
        network = Network(simulator)
        src = "10.8.8.1"
        network.add_host("sender", src)
        items = []
        for index in range(count):
            dst = f"10.8.9.{index + 1}"
            network.add_host(f"r{index}", dst)
            body = bytes((index * 13 + offset) & 0xFF for offset in range(40))
            checksum_src = "9.9.9.9" if corrupt_mask & (1 << index) else src
            payload = encode_udp(checksum_src, dst, UDPDatagram(123, 123, body))
            items.append(
                (network.pipeline_for(src, dst), IPv4Packet.udp(src, dst, payload, index))
            )
        stacked = DeliveryBurst._verify_stacked(items)
        flat = DeliveryBurst._verify_flat(items)
        assert stacked is not None
        if flat is None:  # nothing verified: the flat pass signals it as None
            assert all(info is None for info in stacked)
        else:
            assert stacked == flat
