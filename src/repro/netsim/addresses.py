"""IPv4 address helpers.

Addresses are passed around as dotted-quad strings (the most readable
representation in logs and tests); this module provides conversion to and
from 32-bit integers plus a tiny value type used where a distinct type aids
readability (e.g. attacker address pools).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.netsim.errors import AddressError

# The simulator converts the same handful of testbed/pool addresses millions
# of times per experiment (every packet encode, UDP checksum and fragment
# touches them), so the string<->int conversions are memoised.  Addresses are
# immutable strings and the functions are pure, which makes caching safe.


@lru_cache(maxsize=65536)
def ip_to_int(address: str) -> int:
    """Convert a dotted-quad IPv4 address to its 32-bit integer value.

    Raises :class:`AddressError` if the string is not a valid IPv4 address.
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise AddressError(f"not a dotted quad: {address!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"non-numeric octet in {address!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {address!r}")
        value = (value << 8) | octet
    return value


@lru_cache(maxsize=65536)
def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to a dotted-quad IPv4 address string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise AddressError(f"value out of range for IPv4: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@lru_cache(maxsize=65536)
def ip_to_bytes(address: str) -> bytes:
    """The 4-byte big-endian wire form of a dotted-quad address (cached)."""
    return ip_to_int(address).to_bytes(4, "big")


def same_slash24(first: str, second: str) -> bool:
    """Return True when two addresses share the same /24 network.

    The shared-resolver study (paper section VIII-B3) scans the /24 networks
    of resolvers for SMTP servers, so /24 co-location is the notion of
    "same network" used throughout the measurement package.
    """
    return ip_to_int(first) >> 8 == ip_to_int(second) >> 8


@dataclass(frozen=True, order=True)
class IPv4Address:
    """A validated IPv4 address value object.

    Most of the simulator accepts plain strings for convenience; this class
    exists for code that wants validation or ordering semantics (e.g. address
    pool generators).
    """

    value: int

    @classmethod
    def parse(cls, address: str) -> "IPv4Address":
        """Parse a dotted-quad string into an :class:`IPv4Address`."""
        return cls(ip_to_int(address))

    def __str__(self) -> str:
        return int_to_ip(self.value)

    def offset(self, delta: int) -> "IPv4Address":
        """Return the address ``delta`` positions away (wrapping at 2^32)."""
        return IPv4Address((self.value + delta) % (1 << 32))

    @property
    def slash24(self) -> int:
        """The integer value of the enclosing /24 prefix."""
        return self.value >> 8


def address_range(start: str, count: int) -> list[str]:
    """Generate ``count`` consecutive addresses starting at ``start``.

    Used to build attacker-controlled address pools (e.g. the 89 addresses
    injected in the Chronos attack) and synthetic server populations.
    """
    base = IPv4Address.parse(start)
    return [str(base.offset(i)) for i in range(count)]
