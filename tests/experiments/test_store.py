"""Durable run store: manifests, segments, repair, fsck, compaction, CLI."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import (
    ExperimentRunner,
    RunSpec,
    RunStore,
    StoreError,
    scenario,
)
from repro.experiments.store import (
    STORE_SCHEMA,
    atomic_write_json,
    outcome_document,
    repair_segment,
    scan_records,
)
from repro.experiments.store import main as store_cli


@scenario("_test_store_double")
def _test_store_double(x: int = 1) -> int:
    return 2 * x


@scenario("_test_store_fail")
def _test_store_fail() -> None:
    raise RuntimeError("store test failure")


@scenario("_test_store_unjson")
def _test_store_unjson() -> object:
    return object()  # not JSON-serialisable: breaks the store append


def _specs(n: int = 4) -> list[RunSpec]:
    return [RunSpec.make("_test_store_double", x=i) for i in range(n)]


class TestManifest:
    def test_begin_sweep_commits_manifest_before_records(self, tmp_path):
        store = RunStore(str(tmp_path))
        writer = store.begin_sweep("t", _specs(), sweep_id="s1", seed=7)
        manifest = store.manifest("s1")
        assert manifest["schema"] == STORE_SCHEMA
        assert manifest["status"] == "running"
        assert manifest["seed"] == 7
        assert len(manifest["specs"]) == 4
        writer.finish("complete")
        assert store.manifest("s1")["status"] == "complete"

    def test_begin_refuses_existing_sweep(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.begin_sweep("t", sweep_id="dup").close()
        with pytest.raises(StoreError, match="already exists"):
            store.begin_sweep("t", sweep_id="dup")

    def test_invalid_sweep_ids_rejected(self, tmp_path):
        store = RunStore(str(tmp_path))
        for bad in ("", ".", "..", f"a{os.sep}b"):
            with pytest.raises(StoreError):
                store.sweep_dir(bad)

    def test_atomic_write_replaces_never_tears(self, tmp_path):
        path = str(tmp_path / "doc.json")
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        with open(path) as handle:
            assert json.load(handle) == {"v": 2}
        # no stale temp files left behind
        assert os.listdir(tmp_path) == ["doc.json"]

    def test_specs_roundtrip_through_manifest(self, tmp_path):
        store = RunStore(str(tmp_path))
        declared = _specs(3)
        store.begin_sweep("t", declared, sweep_id="s").close()
        assert store.specs("s") == declared

    def test_specs_missing_is_actionable(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.begin_sweep("t", None, sweep_id="s").close()
        with pytest.raises(StoreError, match="no spec list"):
            store.specs("s")


class TestSegments:
    def test_records_append_in_order_across_segments(self, tmp_path):
        store = RunStore(str(tmp_path))
        store.begin_sweep("t", sweep_id="s").close()
        for batch in range(3):
            writer = store.open_sweep("s")
            writer.append_record({"batch": batch})
            writer.close()
        assert [r["batch"] for r in store.records("s")] == [0, 1, 2]
        # begin_sweep opened segment 1; each resume opened a fresh one
        assert len(store._segment_paths("s")) == 4

    def test_segment_rolls_at_size_limit(self, tmp_path):
        store = RunStore(str(tmp_path), segment_bytes=64)
        writer = store.begin_sweep("t", sweep_id="s")
        for i in range(8):
            writer.append_record({"i": i, "pad": "x" * 40})
        writer.close()
        assert len(store._segment_paths("s")) > 1
        assert [r["i"] for r in store.records("s")] == list(range(8))

    def test_closed_writer_refuses_appends(self, tmp_path):
        store = RunStore(str(tmp_path))
        writer = store.begin_sweep("t", sweep_id="s")
        writer.close()
        with pytest.raises(StoreError, match="closed"):
            writer.append_record({"x": 1})

    def test_unserialisable_record_is_typed_error(self, tmp_path):
        store = RunStore(str(tmp_path))
        writer = store.begin_sweep("t", sweep_id="s")
        with pytest.raises(StoreError, match="JSON-serialisable"):
            writer.append_record({"bad": object()})
        writer.close()


class TestScanRepair:
    def _segment(self, tmp_path, payload: bytes) -> str:
        path = str(tmp_path / "segment-0001.jsonl")
        with open(path, "wb") as handle:
            handle.write(payload)
        return path

    def test_torn_tail_skipped_and_reported(self, tmp_path):
        path = self._segment(tmp_path, b'{"a": 1}\n{"b": 2}\n{"c": ')
        records, repairs = scan_records(path)
        assert records == [{"a": 1}, {"b": 2}]
        assert [e.reason for e in repairs] == ["torn-tail"]

    def test_parseable_torn_tail_is_kept_but_reported(self, tmp_path):
        path = self._segment(tmp_path, b'{"a": 1}\n{"b": 2}')
        records, repairs = scan_records(path)
        assert records == [{"a": 1}, {"b": 2}]
        assert [e.reason for e in repairs] == ["torn-tail"]

    def test_midfile_corruption_skipped_not_fatal(self, tmp_path):
        path = self._segment(
            tmp_path, b'{"a": 1}\ngarbage not json\n{"c": 3}\n'
        )
        records, repairs = scan_records(path)
        assert records == [{"a": 1}, {"c": 3}]
        assert [e.reason for e in repairs] == ["corrupt-record"]
        assert repairs[0].line_number == 2

    def test_nul_hole_from_truncation_detected(self, tmp_path):
        path = self._segment(tmp_path, b'{"a": 1}\n' + b"\x00" * 32 + b'\n{"c": 3}\n')
        records, repairs = scan_records(path)
        assert records == [{"a": 1}, {"c": 3}]
        assert [e.reason for e in repairs] == ["corrupt-record"]

    def test_non_object_json_line_reported(self, tmp_path):
        path = self._segment(tmp_path, b'{"a": 1}\n[1, 2, 3]\n')
        records, repairs = scan_records(path)
        assert records == [{"a": 1}]
        assert [e.reason for e in repairs] == ["not-an-object"]

    def test_repair_preserves_valid_lines_byte_for_byte(self, tmp_path):
        good = b'{"a": 1, "deep": {"k": [1, 2]}}\n'
        path = self._segment(tmp_path, good + b"junk\n" + good + b'{"torn": ')
        events = repair_segment(path)
        assert len(events) == 2
        with open(path, "rb") as handle:
            assert handle.read() == good + good
        # a second repair is a no-op
        assert repair_segment(path) == []

    def test_missing_segment_reads_empty(self, tmp_path):
        records, repairs = scan_records(str(tmp_path / "nope.jsonl"))
        assert records == [] and repairs == []


class TestLoadOutcomes:
    def test_later_records_win(self, tmp_path):
        store = RunStore(str(tmp_path))
        specs = _specs(2)
        writer = store.begin_sweep("t", specs, sweep_id="s")
        runner = ExperimentRunner(max_workers=1)
        outcomes = runner.run(specs)
        writer.append(0, outcomes[0])
        writer.append(1, outcomes[1])
        writer.append(0, outcomes[0])  # retry/resume duplicate
        writer.close()
        done = store.load_outcomes("s")
        assert sorted(done) == [0, 1]
        assert done[0].result == 0 and done[1].result == 2

    def test_out_of_range_index_raises(self, tmp_path):
        store = RunStore(str(tmp_path))
        writer = store.begin_sweep("t", _specs(1), sweep_id="s")
        writer.append_record({"index": 9, "spec": {"scenario": "x", "params": []}})
        writer.close()
        with pytest.raises(StoreError, match="out of range"):
            store.load_outcomes("s")

    def test_foreign_spec_raises(self, tmp_path):
        store = RunStore(str(tmp_path))
        specs = _specs(1)
        writer = store.begin_sweep("t", specs, sweep_id="s")
        writer.append_record(
            {"index": 0, "spec": {"scenario": "other", "params": []}}
        )
        writer.close()
        with pytest.raises(StoreError, match="different sweep"):
            store.load_outcomes("s")

    def test_metric_samples_ignored_by_outcome_loader(self, tmp_path):
        store = RunStore(str(tmp_path))
        writer = store.begin_sweep("t", _specs(1), sweep_id="s")
        writer.append_record({"kind": "bench-sample", "metrics": {"m": 1.0}})
        writer.close()
        assert store.load_outcomes("s") == {}

    def test_metric_history_excludes_non_numeric_and_bools(self, tmp_path):
        store = RunStore(str(tmp_path))
        writer = store.begin_sweep("t", sweep_id="s")
        for value in (1.0, True, "nope", 3, None):
            writer.append_record({"metrics": {"m": value}})
        writer.close()
        assert store.metric_history("s", "m") == [1.0, 3.0]
        assert store.metric_history("s", "m", limit=1) == [3.0]


class TestFsckCompaction:
    def _stored_sweep(self, tmp_path, n: int = 4) -> RunStore:
        store = RunStore(str(tmp_path))
        runner = ExperimentRunner(max_workers=1)
        runner.run_stored(store, "t", _specs(n), sweep_id="s")
        return store

    def test_clean_store_passes(self, tmp_path):
        store = self._stored_sweep(tmp_path)
        report = store.fsck()
        assert report.ok and report.records == 4 and not report.repaired

    def test_damage_found_then_repaired(self, tmp_path):
        store = self._stored_sweep(tmp_path)
        segment = store._segment_paths("s")[0]
        with open(segment, "ab") as handle:
            handle.write(b'{"index": 3, "torn')
        report = store.fsck()
        assert report.ok and len(report.repaired) == 1
        report = store.fsck(repair=True)
        assert len(report.repaired) == 1
        assert store.fsck().repaired == []

    def test_repair_removes_stale_tmp_and_empty_segments(self, tmp_path):
        store = self._stored_sweep(tmp_path)
        directory = store.sweep_dir("s")
        stale = os.path.join(directory, "MANIFEST.json.tmp.999")
        open(stale, "w").close()
        empty = os.path.join(directory, "segment-0099.jsonl")
        open(empty, "w").close()
        report = store.fsck(repair=True)
        assert sorted(report.removed_files) == sorted([stale, empty])
        assert not os.path.exists(stale) and not os.path.exists(empty)

    def test_schema_mismatch_is_an_error(self, tmp_path):
        store = self._stored_sweep(tmp_path)
        manifest = store.manifest("s")
        manifest["schema"] = "something-else/9"
        atomic_write_json(store._manifest_path("s"), manifest)
        report = store.fsck()
        assert not report.ok and "schema" in report.errors[0]

    def test_compaction_dedupes_and_loads_identically(self, tmp_path):
        store = RunStore(str(tmp_path))
        specs = _specs(3)
        runner = ExperimentRunner(max_workers=1)
        runner.run_stored(store, "t", specs, sweep_id="s")
        # a resume writes duplicate outcome records into a second segment
        writer = store.open_sweep("s")
        done = store.load_outcomes("s")
        for index in done:
            writer.append(index, done[index])
        writer.append_record({"kind": "bench-sample", "metrics": {"m": 1.0}})
        writer.close()
        before = store.load_outcomes("s")
        report = store.compact("s")
        assert report.segments_after == 1
        assert report.records_before == 7 and report.records_after == 4
        after = store.load_outcomes("s")
        assert {i: o.result for i, o in after.items()} == {
            i: o.result for i, o in before.items()
        }
        assert store.metric_history("s", "m") == [1.0]


class TestRunnerIntegration:
    def test_run_stored_and_resume_identical(self, tmp_path):
        store = RunStore(str(tmp_path))
        specs = _specs(5)
        runner = ExperimentRunner(max_workers=1)
        outcomes = runner.run_stored(store, "t", specs, sweep_id="s")
        assert [o.result for o in outcomes] == [0, 2, 4, 6, 8]
        assert store.manifest("s")["status"] == "complete"
        resumed = runner.resume_stored(store, "s")
        assert [(o.spec, o.result) for o in resumed] == [
            (o.spec, o.result) for o in outcomes
        ]

    def test_resume_stored_rebuilds_specs_from_manifest(self, tmp_path):
        store = RunStore(str(tmp_path))
        specs = _specs(3)
        runner = ExperimentRunner(max_workers=1)
        runner.run_stored(store, "t", specs, sweep_id="s")
        # resume with specs=None: only the manifest knows the grid
        fresh_runner = ExperimentRunner(max_workers=1)
        resumed = fresh_runner.resume_stored(store, "s")
        assert [o.result for o in resumed] == [0, 2, 4]

    def test_failed_sweep_stamps_failed_status(self, tmp_path):
        store = RunStore(str(tmp_path))
        runner = ExperimentRunner(max_workers=1)
        specs = [RunSpec.make("_test_store_unjson")]
        with pytest.raises(StoreError):
            runner.run_stored(store, "t", specs, sweep_id="s")
        assert store.manifest("s")["status"] == "failed"

    def test_errors_recorded_not_raised(self, tmp_path):
        store = RunStore(str(tmp_path))
        specs = [RunSpec.make("_test_store_fail")]
        runner = ExperimentRunner(max_workers=1, retry=None)
        outcomes = runner.run_stored(store, "t", specs, sweep_id="s")
        assert outcomes[0].error_kind == "scenario-error"
        done = store.load_outcomes("s")
        assert done[0].error_kind == "scenario-error"
        assert store.manifest("s")["status"] == "complete"


class TestCli:
    def _store_with_sweep(self, tmp_path) -> RunStore:
        store = RunStore(str(tmp_path))
        runner = ExperimentRunner(max_workers=1)
        runner.run_stored(store, "cli", _specs(2), sweep_id="s")
        return store

    def test_fsck_clean_exits_zero(self, tmp_path, capsys):
        self._store_with_sweep(tmp_path)
        assert store_cli(["fsck", str(tmp_path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_fsck_missing_store(self, tmp_path, capsys):
        missing = str(tmp_path / "nowhere")
        assert store_cli(["fsck", missing]) == 2
        assert store_cli(["fsck", missing, "--allow-missing"]) == 0

    def test_fsck_reports_errors_exit_one(self, tmp_path, capsys):
        store = self._store_with_sweep(tmp_path)
        manifest = store.manifest("s")
        manifest["schema"] = "bogus/0"
        atomic_write_json(store._manifest_path("s"), manifest)
        assert store_cli(["fsck", str(tmp_path)]) == 1

    def test_compact_and_report(self, tmp_path, capsys):
        self._store_with_sweep(tmp_path)
        assert store_cli(["compact", str(tmp_path), "s"]) == 0
        capsys.readouterr()
        assert store_cli(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "s: cli [complete]" in out
        assert store_cli(["report", str(tmp_path), "s"]) == 0
        out = capsys.readouterr().out
        assert "_test_store_double" in out and "status: complete" in out
