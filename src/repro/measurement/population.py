"""Synthetic populations standing in for the paper's Internet-scale datasets.

The paper measured real populations: the Censys open-resolver dataset
(~3.2 M responders), the nameservers of 1 M popular domains, web clients
recruited through an advertisement network, and SMTP servers co-located with
resolvers.  None of those datasets can be re-measured offline, so each is
replaced by a generator that draws a synthetic population whose *marginal
properties* default to the values the paper reports (and are documented as
such next to each parameter).  The measurement *methodology* — what gets
probed, how responses are classified, how results are aggregated — is the
part reproduced faithfully; running it against these populations regenerates
the shape of every table and figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.netsim.addresses import int_to_ip

# --------------------------------------------------------------------------
# NTP client market shares (Table I / Rytilahti et al. pool study)
# --------------------------------------------------------------------------

#: Paper-reported fraction of pool.ntp.org clients per implementation.
#:
#: This is the **single source of truth** for default client-type market
#: shares: the per-class ``pool_usage_share`` attributes on the client models
#: mirror these values (a cross-check test keeps them in sync), and
#: :mod:`repro.population.spec` seeds its default ``client_mix`` from here.
#: The shares do not sum to 1 — the study could not classify every client —
#: so consumers normalise (see :func:`default_client_mix`).
PAPER_CLIENT_MARKET_SHARES = {
    "ntpd": 0.264,
    "ntpdate": 0.200,
    "android": 0.140,
    "chrony": 0.048,
    "openntpd": 0.044,
    "ntpclient": 0.012,
}


def default_client_mix() -> dict[str, float]:
    """The paper marginals renormalised into a probability distribution.

    Returned as a fresh dict (callers may mutate) with shares summing to 1,
    in the stable order of :data:`PAPER_CLIENT_MARKET_SHARES`.
    """
    total = sum(PAPER_CLIENT_MARKET_SHARES.values())
    return {name: share / total for name, share in PAPER_CLIENT_MARKET_SHARES.items()}


# --------------------------------------------------------------------------
# Open resolvers (Table IV, Figure 6, Figure 7)
# --------------------------------------------------------------------------

#: Resolvers probed in the paper's open-resolver study (section VIII-A1).
PAPER_RESOLVERS_PROBED = 1_583_045
#: Resolvers for which the RD=0 verification procedure succeeded.
PAPER_RESOLVERS_VERIFIED = 646_212
#: Fraction of verified resolvers with the pool.ntp.org A record cached.
PAPER_POOL_A_CACHED_FRACTION = 0.6941
#: Cached fractions for the six probed names (Table IV).
PAPER_CACHED_FRACTIONS = {
    "pool.ntp.org/NS": 0.5828,
    "pool.ntp.org/A": 0.6941,
    "0.pool.ntp.org/A": 0.6392,
    "1.pool.ntp.org/A": 0.6128,
    "2.pool.ntp.org/A": 0.6155,
    "3.pool.ntp.org/A": 0.5858,
}
#: Fraction of open resolvers accepting fragmented responses (section VIII-A2).
PAPER_OPEN_RESOLVER_FRAGMENT_ACCEPTANCE = 0.31
PAPER_NTP_RESOLVER_FRAGMENT_ACCEPTANCE = 0.32
#: TTL of pool.ntp.org A records; cached remaining TTLs are uniform in [0, TTL].
POOL_RECORD_TTL = 150


@dataclass
class OpenResolverSpec:
    """Ground truth for one synthetic open resolver."""

    address: str
    responds: bool
    honors_rd_bit: bool
    accepts_fragments: bool
    validates_dnssec: bool
    #: Which of the probed (name, type) keys are currently cached, mapped to
    #: the time elapsed since they were inserted (seconds).
    cached_records: dict[str, float] = field(default_factory=dict)
    #: Round-trip time from the scanner to this resolver (seconds).
    rtt: float = 0.05
    #: RTT from the resolver to the pool nameservers (upstream latency).
    upstream_rtt: float = 0.08

    def is_ntp_client_resolver(self) -> bool:
        """The study's criterion: any pool record cached => used by NTP clients."""
        return bool(self.cached_records)

    def cached_remaining_ttl(self, key: str) -> float | None:
        """Remaining TTL of a cached record, or None when not cached."""
        if key not in self.cached_records:
            return None
        return max(0.0, POOL_RECORD_TTL - self.cached_records[key])


@dataclass
class ResolverPopulationParameters:
    """Knobs for the open-resolver population generator (paper defaults)."""

    size: int = 20_000
    respond_fraction: float = PAPER_RESOLVERS_PROBED / (PAPER_RESOLVERS_PROBED + 1_674_103)
    rd_verified_fraction: float = PAPER_RESOLVERS_VERIFIED / PAPER_RESOLVERS_PROBED
    cached_fractions: dict[str, float] = field(
        default_factory=lambda: dict(PAPER_CACHED_FRACTIONS)
    )
    fragment_acceptance: float = PAPER_OPEN_RESOLVER_FRAGMENT_ACCEPTANCE
    ntp_fragment_acceptance: float = PAPER_NTP_RESOLVER_FRAGMENT_ACCEPTANCE
    dnssec_validation: float = 0.24
    base_address: str = "100.64.0.1"
    mean_rtt: float = 0.06
    rtt_spread: float = 0.04


def generate_open_resolvers(
    params: ResolverPopulationParameters | None = None,
    rng: np.random.Generator | None = None,
) -> list[OpenResolverSpec]:
    """Draw a synthetic open-resolver population.

    Caching of the six probed names is drawn jointly: a resolver that serves
    NTP clients tends to have several of the names cached, which reproduces
    the correlated per-name fractions of Table IV rather than treating each
    name independently.
    """
    params = params or ResolverPopulationParameters()
    rng = rng or np.random.default_rng(0)
    base = int.from_bytes(bytes([100, 64, 0, 1]), "big")
    specs: list[OpenResolverSpec] = []
    names = list(params.cached_fractions)
    max_fraction = max(params.cached_fractions.values()) if names else 0.0
    for index in range(params.size):
        responds = bool(rng.random() < params.respond_fraction)
        honors_rd = bool(rng.random() < params.rd_verified_fraction)
        # "Serves NTP clients" is the latent property; each probed name is
        # cached with probability fraction/max conditioned on it.
        serves_ntp = bool(rng.random() < max_fraction)
        cached: dict[str, float] = {}
        if serves_ntp:
            for name in names:
                conditional = params.cached_fractions[name] / max_fraction
                if rng.random() < conditional:
                    cached[name] = float(rng.uniform(0, POOL_RECORD_TTL))
        fragment_acceptance = (
            params.ntp_fragment_acceptance if cached else params.fragment_acceptance
        )
        specs.append(
            OpenResolverSpec(
                address=int_to_ip((base + index) & 0xFFFFFFFF),
                responds=responds,
                honors_rd_bit=honors_rd,
                accepts_fragments=bool(rng.random() < fragment_acceptance),
                validates_dnssec=bool(rng.random() < params.dnssec_validation),
                cached_records=cached,
                rtt=float(max(0.005, rng.normal(params.mean_rtt, params.rtt_spread))),
                upstream_rtt=float(max(0.005, rng.normal(0.08, 0.05))),
            )
        )
    return specs


# --------------------------------------------------------------------------
# Web clients recruited through the ad network (Table V)
# --------------------------------------------------------------------------

#: Regional composition and per-region results of the paper's ad study.
PAPER_AD_REGIONS = {
    # region: (total clients ds1/ds2, tiny acceptance, any-size acceptance)
    "Asia": (3169, 0.5822, 0.9034),
    "Africa": (303, 0.7327, 0.9571),
    "Europe": (1390, 0.7266, 0.9187),
    "Northern America": (2314, 0.5843, 0.7593),
    "Latin America": (838, 0.6826, 0.9057),
}
#: Overall fragment-acceptance figures quoted in the text of section VIII-B2.
PAPER_AD_TINY_ACCEPTANCE = 0.64
PAPER_AD_MEDIUM_ACCEPTANCE = 0.77
PAPER_AD_BIG_ACCEPTANCE = 0.86
#: DNSSEC validation range observed across geolocations.
PAPER_DNSSEC_VALIDATION_RANGE = (0.1914, 0.2894)
#: Per-region DNSSEC validation rates (chosen to span the published range;
#: the paper reports only the range, not the per-region values).
PAPER_DNSSEC_BY_REGION = {
    "Asia": 0.20,
    "Africa": 0.1914,
    "Europe": 0.2894,
    "Northern America": 0.27,
    "Latin America": 0.22,
}
#: Clients observed to use Google Public DNS (filters small fragments).
PAPER_GOOGLE_CLIENT_COUNT = 791
PAPER_MOBILE_FRACTION = 3108 / 5847


@dataclass
class WebClientSpec:
    """Ground truth for one ad-network test client."""

    client_id: int
    region: str
    device: str
    dataset: int
    uses_google_dns: bool
    #: Largest-to-smallest fragment acceptance: which MTUs the client's
    #: resolver accepts fragmented responses for.
    accepts_fragment_sizes: set[int] = field(default_factory=set)
    validates_dnssec: bool = False
    #: Whether the client kept the test page open long enough (>= 30 s).
    completed_test: bool = True
    baseline_ok: bool = True


@dataclass
class WebClientPopulationParameters:
    """Knobs for the ad-network client population (paper defaults)."""

    clients_per_region: dict[str, int] = field(
        default_factory=lambda: {region: count for region, (count, _, _) in PAPER_AD_REGIONS.items()}
    )
    tiny_acceptance_by_region: dict[str, float] = field(
        default_factory=lambda: {region: tiny for region, (_, tiny, _) in PAPER_AD_REGIONS.items()}
    )
    any_acceptance_by_region: dict[str, float] = field(
        default_factory=lambda: {region: any_ for region, (_, _, any_) in PAPER_AD_REGIONS.items()}
    )
    dnssec_validation_by_region: dict[str, float] = field(
        default_factory=lambda: dict(PAPER_DNSSEC_BY_REGION)
    )
    google_dns_fraction: float = PAPER_GOOGLE_CLIENT_COUNT / 5847
    mobile_fraction: float = PAPER_MOBILE_FRACTION
    incomplete_test_fraction: float = 0.08
    baseline_failure_fraction: float = 0.02


#: The fragment sizes exercised by the study's test domains.
AD_FRAGMENT_SIZES = (68, 296, 580, 1280)


def generate_web_clients(
    params: WebClientPopulationParameters | None = None,
    rng: np.random.Generator | None = None,
) -> list[WebClientSpec]:
    """Draw the synthetic ad-network client population."""
    params = params or WebClientPopulationParameters()
    rng = rng or np.random.default_rng(1)
    clients: list[WebClientSpec] = []
    client_id = 0
    for region, count in params.clients_per_region.items():
        dataset = 2 if region == "Northern America" else 1
        tiny_target = params.tiny_acceptance_by_region[region]
        any_target = params.any_acceptance_by_region[region]
        google_fraction = params.google_dns_fraction
        # Google Public DNS filters small fragments, so the per-region target
        # fractions (which include Google users) are met by scaling the
        # probabilities applied to the non-Google clients.
        non_google = max(1e-9, 1.0 - google_fraction)
        google_big_acceptance = 0.95
        tiny_non_google = min(1.0, tiny_target / non_google)
        any_non_google = min(
            1.0, max(0.0, any_target - google_fraction * google_big_acceptance) / non_google
        )
        for _ in range(count):
            client_id += 1
            uses_google = bool(rng.random() < google_fraction)
            accepts: set[int] = set()
            if uses_google:
                if rng.random() < google_big_acceptance:
                    accepts.add(1280)
            else:
                if rng.random() < any_non_google:
                    accepts.add(1280)
                    if rng.random() < (PAPER_AD_MEDIUM_ACCEPTANCE / PAPER_AD_BIG_ACCEPTANCE):
                        accepts.update({580, 296})
                    if rng.random() < min(1.0, tiny_non_google / any_non_google):
                        accepts.update({68, 296, 580})
            validates = bool(
                rng.random() < params.dnssec_validation_by_region.get(region, 0.24)
            )
            clients.append(
                WebClientSpec(
                    client_id=client_id,
                    region=region,
                    device="Mobile,Tablet" if rng.random() < params.mobile_fraction else "PC",
                    dataset=dataset,
                    uses_google_dns=uses_google,
                    accepts_fragment_sizes=accepts,
                    validates_dnssec=validates,
                    completed_test=bool(rng.random() >= params.incomplete_test_fraction),
                    baseline_ok=bool(rng.random() >= params.baseline_failure_fraction),
                )
            )
    return clients


# --------------------------------------------------------------------------
# Nameservers of popular domains (Figure 5, section VII-B)
# --------------------------------------------------------------------------

#: Fraction of popular domains that do not deploy DNSSEC but fragment.
PAPER_FRAGMENTING_NO_DNSSEC_FRACTION = 0.0766
#: Distribution of the *minimum* fragment size emitted by those nameservers.
PAPER_MIN_FRAGMENT_DISTRIBUTION = {
    68: 0.0095,
    292: 0.0705,
    548: 0.832,
    1276: 0.06,
    1500: 0.028,
}
#: Fraction of popular domains that sign with DNSSEC (~1 %).
PAPER_SIGNED_DOMAIN_FRACTION = 0.01
#: Pool nameserver findings: 16 of 30 fragment to <= 548 bytes, none signed.
PAPER_POOL_NAMESERVERS = 30
PAPER_POOL_NAMESERVERS_FRAGMENTING = 16


@dataclass
class NameserverSpec:
    """Ground truth for one popular-domain nameserver."""

    domain: str
    address: str
    supports_dnssec: bool
    honors_pmtud: bool
    #: Smallest fragment size the nameserver will go down to (bytes); only
    #: meaningful when ``honors_pmtud`` is true.
    min_fragment_size: int = 1500
    is_ntp_domain: bool = False


@dataclass
class NameserverPopulationParameters:
    """Knobs for the popular-domain nameserver population (paper defaults)."""

    size: int = 10_000
    signed_fraction: float = PAPER_SIGNED_DOMAIN_FRACTION
    fragmenting_no_dnssec_fraction: float = PAPER_FRAGMENTING_NO_DNSSEC_FRACTION
    min_fragment_distribution: dict[int, float] = field(
        default_factory=lambda: dict(PAPER_MIN_FRAGMENT_DISTRIBUTION)
    )
    ntp_domain_count: int = 10
    signed_ntp_domains: tuple[str, ...] = ("time.cloudflare.com",)


def generate_nameservers(
    params: NameserverPopulationParameters | None = None,
    rng: np.random.Generator | None = None,
) -> list[NameserverSpec]:
    """Draw the synthetic popular-domain nameserver population.

    A handful of NTP domains (including the single DNSSEC-signed one the
    paper found, ``time.cloudflare.com``) are placed at the front of the
    list so the NTP-specific sub-analysis has concrete entries to report.
    """
    params = params or NameserverPopulationParameters()
    rng = rng or np.random.default_rng(2)
    sizes = list(params.min_fragment_distribution)
    weights = np.array([params.min_fragment_distribution[s] for s in sizes], dtype=float)
    weights = weights / weights.sum()

    specs: list[NameserverSpec] = []
    ntp_domains = [
        "pool.ntp.org",
        "time.cloudflare.com",
        "time.google.com",
        "time.windows.com",
        "time.apple.com",
        "ntp.ubuntu.com",
        "time.nist.gov",
        "ntp1.hetzner.de",
        "time.facebook.com",
        "ntp.se",
    ][: params.ntp_domain_count]
    for index in range(params.size):
        is_ntp = index < len(ntp_domains)
        domain = ntp_domains[index] if is_ntp else f"domain{index}.example"
        if is_ntp:
            signed = domain in params.signed_ntp_domains
        else:
            signed = bool(rng.random() < params.signed_fraction)
        if signed:
            honors_pmtud = bool(rng.random() < 0.5)
        else:
            honors_pmtud = bool(
                rng.random()
                < params.fragmenting_no_dnssec_fraction / (1 - params.signed_fraction)
            )
        min_fragment = 1500
        if honors_pmtud:
            min_fragment = int(rng.choice(sizes, p=weights))
        specs.append(
            NameserverSpec(
                domain=domain,
                address=int_to_ip((int.from_bytes(bytes([101, 0, 0, 1]), "big") + index) & 0xFFFFFFFF),
                supports_dnssec=signed,
                honors_pmtud=honors_pmtud,
                min_fragment_size=min_fragment,
                is_ntp_domain=is_ntp,
            )
        )
    return specs


def generate_pool_nameservers(
    count: int = PAPER_POOL_NAMESERVERS,
    fragmenting_count: int = PAPER_POOL_NAMESERVERS_FRAGMENTING,
    rng: np.random.Generator | None = None,
) -> list[NameserverSpec]:
    """The nameservers serving the ``pool.ntp.org`` zone (section VII-B).

    The paper probed 30 of them: 16 fragment DNS responses to 548 bytes or
    below on receipt of ICMP fragmentation-needed, and none serves DNSSEC for
    the zone.
    """
    rng = rng or np.random.default_rng(5)
    indices = set(int(i) for i in rng.choice(count, size=fragmenting_count, replace=False))
    specs = []
    for index in range(count):
        fragments = index in indices
        specs.append(
            NameserverSpec(
                domain="pool.ntp.org",
                address=int_to_ip((int.from_bytes(bytes([198, 51, 100, 10]), "big") + index) & 0xFFFFFFFF),
                supports_dnssec=False,
                honors_pmtud=fragments,
                min_fragment_size=int(rng.choice([292, 548], p=[0.2, 0.8])) if fragments else 1500,
                is_ntp_domain=True,
            )
        )
    return specs


# --------------------------------------------------------------------------
# Shared resolvers (section VIII-B3)
# --------------------------------------------------------------------------

#: The categories and counts reported by the paper.
PAPER_SHARED_RESOLVER_TOTAL = 18_668
PAPER_WEB_ONLY_FRACTION = 0.862
PAPER_WEB_AND_SMTP_FRACTION = 0.113
PAPER_OPEN_FRACTION = 0.023
PAPER_OPEN_AND_SMTP_FRACTION = 0.002
PAPER_TRIGGERABLE_FRACTION = 0.138


@dataclass
class SharedResolverSpec:
    """Ground truth for one resolver observed via the ad network."""

    address: str
    used_by_web_clients: bool = True
    smtp_server_in_slash24: bool = False
    is_open_resolver: bool = False


@dataclass
class SharedResolverPopulationParameters:
    """Knobs for the shared-resolver population (paper defaults)."""

    size: int = PAPER_SHARED_RESOLVER_TOTAL
    smtp_fraction: float = PAPER_WEB_AND_SMTP_FRACTION + PAPER_OPEN_AND_SMTP_FRACTION
    open_fraction: float = PAPER_OPEN_FRACTION + PAPER_OPEN_AND_SMTP_FRACTION
    open_and_smtp_fraction: float = PAPER_OPEN_AND_SMTP_FRACTION
    base_address: str = "102.0.0.1"


def generate_shared_resolvers(
    params: SharedResolverPopulationParameters | None = None,
    rng: np.random.Generator | None = None,
) -> list[SharedResolverSpec]:
    """Draw the synthetic population of resolvers used by web clients."""
    params = params or SharedResolverPopulationParameters()
    rng = rng or np.random.default_rng(3)
    base = int.from_bytes(bytes([102, 0, 0, 1]), "big")
    specs: list[SharedResolverSpec] = []
    for index in range(params.size):
        draw = rng.random()
        is_open = draw < params.open_fraction
        if is_open:
            has_smtp = rng.random() < (params.open_and_smtp_fraction / params.open_fraction)
        else:
            remaining_smtp = params.smtp_fraction - params.open_and_smtp_fraction
            has_smtp = rng.random() < remaining_smtp / (1 - params.open_fraction)
        specs.append(
            SharedResolverSpec(
                address=int_to_ip((base + index * 7) & 0xFFFFFFFF),
                used_by_web_clients=True,
                smtp_server_in_slash24=bool(has_smtp),
                is_open_resolver=bool(is_open),
            )
        )
    return specs
