"""NTP server-side rate limiting (the mechanism the run-time attack abuses).

The reference implementation (ntpd's ``restrict ... limited [kod]``) tracks
the inter-arrival times of queries per source address.  When a source
queries faster than the configured average interval for long enough, the
server stops answering it; with ``kod`` configured it first sends a single
Kiss-o'-Death packet with code ``RATE``.

Because the server identifies clients only by source IP address — NTP runs
over UDP with no handshake — an off-path attacker can send *spoofed* queries
carrying the victim client's address and push the victim into the limited
state.  The victim's own (legitimate, slow) queries then go unanswered and
the client eventually declares the server unreachable.  This module
implements the token-bucket-style accounting that produces that behaviour,
and is shared by real servers, the synthetic pool population, and the
rate-limit scanner of section VII-A.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

try:
    import numpy as np
except ImportError:  # pragma: no cover - pinned by the numpy-absent suite
    np = None  # type: ignore[assignment]


class RateLimitDecision(Enum):
    """What the server should do with one incoming query."""

    RESPOND = "respond"
    KOD = "kod"
    DROP = "drop"


#: Hoisted members for the per-query hot path (attribute loads add up over
#: millions of checks).
_RESPOND = RateLimitDecision.RESPOND
_KOD = RateLimitDecision.KOD
_DROP = RateLimitDecision.DROP


@dataclass(slots=True)
class BurstOutcome:
    """Decision summary for N same-instant queries from one source.

    With a non-negative query cost the accumulated score is monotone
    within a same-instant burst, so the per-arrival decisions are always
    front-loaded: arrival ``k`` (0-based) gets ``RESPOND`` for
    ``k < responds``, ``KOD`` for ``k == responds`` when ``kod`` is true,
    and ``DROP`` otherwise.  ``drops`` counts the ``DROP`` decisions
    (``n - responds``, minus one when a KoD was issued), mirroring what a
    server's per-query loop would have tallied.
    """

    responds: int
    kod: bool
    drops: int

    @property
    def denied(self) -> int:
        """Arrivals denied service (KoD included — it is not an answer)."""
        return self.drops + (1 if self.kod else 0)


@dataclass(slots=True)
class _SourceState:
    """Accounting for one source address (slotted: one per spoofed flood)."""

    last_seen: float = 0.0
    score: float = 0.0
    kod_sent: bool = False
    drops: int = 0


@dataclass(slots=True)
class RateLimiter:
    """Leaky-bucket rate limiter keyed by source address.

    Slotted: ``check`` runs once per received query — millions per
    spoofing sweep — and slot access skips the instance ``__dict__``.

    Parameters mirror ntpd's defaults: a query "costs" ``average_interval``
    seconds of budget, the bucket drains in real time, and once the
    accumulated score exceeds ``burst_tolerance`` seconds the source is
    limited.  With the defaults, a source querying once per second exceeds
    the budget after roughly ``burst_tolerance / (average_interval - 1)``
    queries, which reproduces the "stops responding during the second half
    of 64 queries at 1/s" signature the scan of section VII-A looks for.
    """

    average_interval: float = 8.0
    burst_tolerance: float = 100.0
    send_kod: bool = True
    enabled: bool = True
    sources: dict[str, _SourceState] = field(default_factory=dict)
    queries_seen: int = 0
    queries_dropped: int = 0
    kods_sent: int = 0

    def check(self, source_ip: str, now: float) -> RateLimitDecision:
        """Account for one query from ``source_ip`` and decide the response.

        Runs once per received query (the hottest accounting loop of the
        rate-limit abuse scenarios), so the bucket arithmetic is written
        with branches instead of ``max()`` calls and a single state lookup,
        and the decision members are hoisted module constants.
        """
        self.queries_seen += 1
        if not self.enabled:
            return _RESPOND
        sources = self.sources
        state = sources.get(source_ip)
        if state is None:
            state = sources[source_ip] = _SourceState(last_seen=now)
        # Drain the bucket by the elapsed time (never backwards, never below
        # empty), then charge this query's cost.
        elapsed = now - state.last_seen
        score = state.score
        if elapsed > 0.0:
            score -= elapsed
            if score < 0.0:
                score = 0.0
        score += self.average_interval
        state.score = score
        state.last_seen = now

        if score <= self.burst_tolerance:
            return _RESPOND

        state.drops += 1
        self.queries_dropped += 1
        if self.send_kod and not state.kod_sent:
            state.kod_sent = True
            self.kods_sent += 1
            return _KOD
        return _DROP

    #: Alias used by the burst engine's property tests and docs: one
    #: ``consume`` is one accounted query, ``consume_burst(n)`` is n of them.
    consume = check

    def consume_burst(self, source_ip: str, n: int, now: float) -> BurstOutcome:
        """Account for ``n`` same-instant queries from one source at once.

        Exactly equivalent to ``n`` sequential :meth:`check` calls at the
        same ``now`` (property-pinned): same decisions in the same order,
        same final bucket state bit-for-bit, same aggregate counters.  The
        bucket *drain* is fast-forwarded in closed form — arrivals after
        the first have zero elapsed time, so one subtraction covers the
        whole burst — but the admit count deliberately comes from a tight
        accumulation loop rather than ``(tolerance - score) / cost``:
        :meth:`check` builds the score by repeated float addition, and a
        closed-form multiplication rounds differently right at the
        tolerance boundary, which would make switching a flow from
        per-query to burst accounting observable.  The loop is pure float
        adds with none of check's per-call dict/enum/state machinery, which
        is where the bulk win comes from (see the
        ``limiter_burst_ops_per_sec`` microbenchmark).

        Requires a non-negative ``average_interval`` (a negative cost makes
        in-burst decisions non-monotone, which :class:`BurstOutcome` cannot
        represent).
        """
        if n <= 0:
            return BurstOutcome(0, False, 0)
        cost = self.average_interval
        if cost < 0.0:
            raise ValueError(
                f"consume_burst requires average_interval >= 0, got {cost}"
            )
        self.queries_seen += n
        if not self.enabled:
            return BurstOutcome(n, False, 0)
        sources = self.sources
        state = sources.get(source_ip)
        if state is None:
            state = sources[source_ip] = _SourceState(last_seen=now)
        # Closed-form drain fast-forward: only the first arrival sees a
        # non-zero elapsed time, so the whole burst drains once.
        elapsed = now - state.last_seen
        score = state.score
        if elapsed > 0.0:
            score -= elapsed
            if score < 0.0:
                score = 0.0
        tolerance = self.burst_tolerance
        responds = 0
        for _ in range(n):
            score += cost
            if score <= tolerance:
                responds += 1
        state.score = score
        state.last_seen = now
        denied = n - responds
        if denied == 0:
            return BurstOutcome(n, False, 0)
        state.drops += denied
        self.queries_dropped += denied
        kod = False
        if self.send_kod and not state.kod_sent:
            state.kod_sent = True
            self.kods_sent += 1
            kod = True
        return BurstOutcome(responds, kod, denied - (1 if kod else 0))

    def consume_times(self, source_ip: str, times) -> list[RateLimitDecision]:
        """Fast-forward one source through a whole arrival schedule at once.

        The mixed-interval closed form: the score recurrence
        ``s_k = max(s_{k-1} - dt_k, 0) + cost`` linearises under the
        substitution ``v_k = s_k + t_k - (k+1)·cost`` to a plain running
        maximum ``v_k = max(v_{k-1}, t_k - k·cost)``, so an arbitrary
        arrival schedule costs three numpy vector ops instead of a Python
        loop per query.  Decisions come back in arrival order, and the
        bucket state, KoD latch and aggregate counters advance exactly as
        if every arrival had been :meth:`check`-ed.

        Float caveat (why the live simulation splice uses
        :meth:`consume_burst` instead): the vectorised algebra rounds
        differently from per-call accumulation within a few ulps of the
        tolerance boundary.  Decisions are identical whenever no
        accumulated score lands that close to ``burst_tolerance`` — exact
        on integer-valued schedules — which makes this the *planning and
        measurement* fast path (scan predictions, population analytics),
        not a drop-in for the per-packet path.

        ``times`` must be non-decreasing and ``average_interval``
        non-negative.  Without numpy installed a pure-python twin of the
        running-max algebra runs instead — same float operations in the
        same order, so the two backends are bit-identical (pinned by the
        numpy-absent suite).
        """
        if np is not None:
            times = np.asarray(times, dtype=np.float64)
            n = int(times.size)
        else:
            times = [float(value) for value in times]
            n = len(times)
        if n == 0:
            return []
        cost = self.average_interval
        if cost < 0.0:
            raise ValueError(
                f"consume_times requires average_interval >= 0, got {cost}"
            )
        if n > 1:
            if np is not None:
                if bool(np.any(np.diff(times) < 0.0)):
                    raise ValueError(
                        "consume_times requires non-decreasing arrival times"
                    )
            elif any(b < a for a, b in zip(times, times[1:])):
                raise ValueError("consume_times requires non-decreasing arrival times")
        self.queries_seen += n
        if not self.enabled:
            return [RateLimitDecision.RESPOND] * n
        sources = self.sources
        state = sources.get(source_ip)
        if state is None:
            state = sources[source_ip] = _SourceState(last_seen=float(times[0]))
        # check() never drains on non-positive elapsed time, so a first
        # arrival before last_seen behaves as if last_seen were that
        # arrival's own time.
        anchor = min(state.last_seen, float(times[0]))
        seed = state.score + anchor
        tolerance = self.burst_tolerance
        if np is not None:
            k = np.arange(n, dtype=np.float64)
            # v_k = max(v_init, max_{j<=k}(t_j - j·cost)); the j-term
            # encodes a bucket that drained to empty just before arrival j,
            # the seed term the bucket carried over from the previous state.
            v = np.maximum.accumulate(np.maximum(times - k * cost, seed))
            scores = v - times + (k + 1.0) * cost
            denied_mask = (scores > tolerance).tolist()
            denied = sum(denied_mask)
            last_score = float(scores[-1])
        else:
            # Pure-python twin: identical IEEE op sequence per element
            # (t - k·cost, running max, (v - t) + (k+1)·cost), so scores
            # match the vectorised backend bit-for-bit.
            denied_mask = []
            denied = 0
            v = seed
            last_score = 0.0
            for index, t in enumerate(times):
                candidate = t - index * cost
                if candidate > v:
                    v = candidate
                last_score = (v - t) + (index + 1.0) * cost
                is_denied = last_score > tolerance
                denied_mask.append(is_denied)
                if is_denied:
                    denied += 1
        state.score = last_score
        state.last_seen = float(times[-1])
        if denied == 0:
            return [RateLimitDecision.RESPOND] * n
        state.drops += denied
        self.queries_dropped += denied
        decisions: list[RateLimitDecision] = []
        kod_available = self.send_kod and not state.kod_sent
        for is_denied in denied_mask:
            if not is_denied:
                decisions.append(RateLimitDecision.RESPOND)
            elif kod_available:
                kod_available = False
                state.kod_sent = True
                self.kods_sent += 1
                decisions.append(RateLimitDecision.KOD)
            else:
                decisions.append(RateLimitDecision.DROP)
        return decisions

    def is_limited(self, source_ip: str, now: float) -> bool:
        """True when ``source_ip`` would currently be denied service."""
        state = self.sources.get(source_ip)
        if state is None or not self.enabled:
            return False
        current = max(0.0, state.score - max(0.0, now - state.last_seen))
        return current > self.burst_tolerance

    def reset(self, source_ip: str | None = None) -> None:
        """Forget accounting for one source, or for all sources."""
        if source_ip is None:
            self.sources.clear()
        else:
            self.sources.pop(source_ip, None)
