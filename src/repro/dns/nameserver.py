"""Authoritative nameservers, including the ``pool.ntp.org`` model.

The pool nameserver is the attack's real target: its responses to the victim
resolver are the packets whose second fragment the off-path attacker
replaces.  Two properties measured in the paper are parameters here:

* whether the nameserver honours ICMP fragmentation-needed messages (and the
  minimum fragment size it will go down to) is a property of the *host* it
  runs on (see :class:`repro.netsim.host.OSProfile` and ``min_pmtu``),
* whether the zone is DNSSEC-signed (none of the 30 pool nameservers were).

The pool model also reproduces the operational behaviour the attacks exploit:
four A records per response, rotated over the pool population, with a 150 s
TTL (paper section IV-A).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.dns.dnssec import ZoneSigningKey, sign_rrset
from repro.dns.errors import MessageError
from repro.dns.message import DNSMessage, ResponseCode
from repro.dns.names import normalize_name
from repro.dns.records import ResourceRecord, RRType, a_record, ns_record, txt_record
from repro.dns.zone import Zone
from repro.netsim.host import Host

#: Bound on the per-server encoded-response cache; identical responses are
#: common (fixed rotation, repeated zone answers) but a busy random-rotation
#: pool could otherwise grow the cache without limit.
ENCODE_CACHE_MAX_ENTRIES = 1024

_TXID_STRUCT = struct.Struct("!H")

#: TTL of pool.ntp.org A records as measured in the paper (section IV-A).
POOL_A_RECORD_TTL = 150
#: Number of A records the pool nameservers return per query.
POOL_ADDRESSES_PER_RESPONSE = 4


@dataclass
class NameserverStats:
    """Counters for tests and the measurement studies."""

    queries_received: int = 0
    responses_sent: int = 0
    nxdomain_sent: int = 0
    malformed_queries: int = 0
    encode_cache_hits: int = 0
    encode_cache_misses: int = 0


class AuthoritativeNameserver:
    """Serves one or more zones over UDP port 53 on a simulated host."""

    def __init__(
        self,
        host: Host,
        zones: Optional[Sequence[Zone]] = None,
        signing_keys: Optional[dict[str, ZoneSigningKey]] = None,
        extra_additional: Optional[list[ResourceRecord]] = None,
    ) -> None:
        self.host = host
        self.zones: list[Zone] = list(zones or [])
        self.signing_keys = dict(signing_keys or {})
        #: Records appended to the additional section of every response;
        #: used to model the large responses (glue, mail records...) that
        #: make real-world responses big enough to fragment.
        self.extra_additional = list(extra_additional or [])
        self.stats = NameserverStats()
        #: Encoded response bodies (bytes after the 2-byte TXID) keyed by
        #: :meth:`DNSMessage.wire_cache_key`, so identical responses — e.g.
        #: the pool's rotated answer sets — are not re-encoded per query.
        self._encode_cache: dict[tuple, bytes] = {}
        self.socket = host.bind(53, self._on_query)

    @property
    def ip(self) -> str:
        """The address this nameserver answers on."""
        return self.host.ip

    def add_zone(self, zone: Zone, key: Optional[ZoneSigningKey] = None) -> None:
        """Register an additional zone (optionally with its signing key)."""
        self.zones.append(zone)
        if key is not None:
            self.signing_keys[zone.origin] = key

    def zone_for(self, name: str) -> Optional[Zone]:
        """The most specific zone containing ``name``, if any."""
        name = normalize_name(name)
        best: Optional[Zone] = None
        for zone in self.zones:
            if zone.contains(name):
                if best is None or len(zone.origin) > len(best.origin):
                    best = zone
        return best

    # -------------------------------------------------------------- serving
    def _on_query(self, payload: bytes, src_ip: str, src_port: int) -> None:
        try:
            query = DNSMessage.decode_cached(payload)
        except MessageError:
            self.stats.malformed_queries += 1
            return
        if query.is_response or not query.questions:
            self.stats.malformed_queries += 1
            return
        self.stats.queries_received += 1
        response = self.build_response(query)
        self.stats.responses_sent += 1
        if response.flags.rcode is ResponseCode.NXDOMAIN:
            self.stats.nxdomain_sent += 1
        self.socket.sendto(self.encode_response(response), src_ip, src_port)

    def encode_response(self, response: DNSMessage) -> bytes:
        """Encode a response, reusing cached bytes for identical responses.

        The wire form depends on everything except the 2-byte TXID, so the
        cache stores the body keyed by :meth:`DNSMessage.wire_cache_key` and
        prepends the query's TXID.  Responses with unhashable record data
        fall back to a plain encode.
        """
        key = response.wire_cache_key()
        if key is None:
            return response.encode()
        body = self._encode_cache.get(key)
        if body is None:
            self.stats.encode_cache_misses += 1
            if len(self._encode_cache) >= ENCODE_CACHE_MAX_ENTRIES:
                self._encode_cache.clear()
            wire = response.encode()
            self._encode_cache[key] = wire[2:]
            return wire
        self.stats.encode_cache_hits += 1
        return _TXID_STRUCT.pack(response.txid) + body

    def build_response(self, query: DNSMessage) -> DNSMessage:
        """Build the authoritative response for a query (no side effects)."""
        question = query.question
        zone = self.zone_for(question.name)
        if zone is None:
            return query.make_response(rcode=ResponseCode.REFUSED, authoritative=False)

        answers = self.answer_records(zone, question.name, question.rtype)
        rcode = ResponseCode.NOERROR
        if not answers and question.name not in zone.names():
            rcode = ResponseCode.NXDOMAIN
        response = query.make_response(answers=answers, rcode=rcode)
        self._attach_signatures(zone, response)
        self._attach_authority(zone, response)
        response.additional.extend(self.extra_additional)
        return response

    def answer_records(self, zone: Zone, name: str, rtype: RRType) -> list[ResourceRecord]:
        """Answer-section records for a question (CNAMEs followed one level)."""
        records = zone.lookup(name, rtype)
        if records or rtype is RRType.CNAME:
            return list(records)
        cnames = zone.lookup(name, RRType.CNAME)
        if cnames:
            target = str(cnames[0].data)
            return list(cnames) + zone.lookup(target, rtype)
        return []

    def _attach_signatures(self, zone: Zone, response: DNSMessage) -> None:
        key = self.signing_keys.get(zone.origin)
        if not zone.signed or key is None or not response.answers:
            return
        rrsets: dict[tuple[str, RRType], list[ResourceRecord]] = {}
        for record in response.answers:
            rrsets.setdefault(record.key, []).append(record)
        for rrset in rrsets.values():
            response.answers.append(sign_rrset(key, rrset))

    def _attach_authority(self, zone: Zone, response: DNSMessage) -> None:
        ns_records = zone.lookup(zone.origin, RRType.NS)
        response.authority.extend(ns_records)
        for ns in ns_records:
            response.additional.extend(zone.lookup(str(ns.data), RRType.A))


class PoolNameserver(AuthoritativeNameserver):
    """Model of the ``pool.ntp.org`` nameservers.

    Every A query under the pool origin is answered with
    ``addresses_per_response`` addresses drawn from the pool population.  The
    draw is random without replacement per query (``rotation="random"``,
    matching the real pool's behaviour) or a fixed prefix
    (``rotation="fixed"``, the predictable-tail ablation the attack benefits
    from).  NS records and glue are attached, which is what pushes responses
    over fragmentation thresholds once the attacker lowers the path MTU.
    """

    def __init__(
        self,
        host: Host,
        pool_addresses: Sequence[str],
        origin: str = "pool.ntp.org",
        nameserver_names: Optional[Sequence[str]] = None,
        rotation: str = "random",
        addresses_per_response: int = POOL_ADDRESSES_PER_RESPONSE,
        record_ttl: int = POOL_A_RECORD_TTL,
        rng: Optional[np.random.Generator] = None,
        response_padding: int = 0,
    ) -> None:
        self.origin = normalize_name(origin)
        self.pool_addresses = list(pool_addresses)
        self.rotation = rotation
        self.addresses_per_response = addresses_per_response
        self.record_ttl = record_ttl
        self.response_padding = response_padding
        self._rng = rng or np.random.default_rng(0)
        zone = Zone(origin=self.origin)
        names = list(
            nameserver_names
            or [f"ns{i}.{self.origin}" for i in range(1, 3)]
        )
        for index, ns_name in enumerate(names):
            zone.add(ns_record(self.origin, ns_name))
            zone.add(a_record(ns_name, f"198.51.100.{index + 1}", ttl=86400))
        super().__init__(host, zones=[zone])

    def select_addresses(self, qname: str) -> list[str]:
        """Pick the addresses returned for one query."""
        count = min(self.addresses_per_response, len(self.pool_addresses))
        if self.rotation == "fixed":
            return self.pool_addresses[:count]
        indices = self._rng.choice(len(self.pool_addresses), size=count, replace=False)
        return [self.pool_addresses[int(i)] for i in indices]

    def build_response(self, query: DNSMessage) -> DNSMessage:
        question = query.question
        zone = self.zone_for(question.name)
        if zone is None:
            return query.make_response(rcode=ResponseCode.REFUSED, authoritative=False)
        if question.rtype is RRType.A and not zone.lookup(question.name, RRType.A):
            answers = [
                a_record(question.name, address, ttl=self.record_ttl)
                for address in self.select_addresses(question.name)
            ]
            response = query.make_response(answers=answers)
            self._attach_authority(zone, response)
            if self.response_padding > 0:
                response.additional.append(
                    txt_record(
                        f"info.{self.origin}", "x" * self.response_padding, ttl=60
                    )
                )
            response.additional.extend(self.extra_additional)
            return response
        return super().build_response(query)
