"""Chronos server-pool generation — the achilles heel the paper attacks.

The Chronos proposal builds its server pool by querying ``pool.ntp.org``
once an hour for 24 hours and taking the union of all returned addresses
(about ``24 x 4 = 96`` servers).  Two weaknesses called out in the paper
(section VI-A/B) are visible in this implementation:

* the lookups happen on a predictable hourly schedule, and
* nothing bounds the *influence of a single DNS response*: neither the TTL
  nor the number of addresses in a response is checked, so one poisoned
  response can contribute up to 89 attacker addresses and, with a TTL longer
  than the remaining generation period, cause every subsequent lookup to be
  answered from cache with the same poisoned set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dns.stub import ResolutionResult, StubResolver
from repro.netsim.simulator import Simulator


@dataclass
class PoolGenerationConfig:
    """Parameters of the pool-generation procedure."""

    pool_domain: str = "pool.ntp.org"
    lookup_interval: float = 3600.0
    total_lookups: int = 24
    #: Hardening knobs (both disabled in the original proposal; the paper
    #: recommends them as mitigations).  ``max_addresses_per_response``
    #: bounds how many addresses a single response may contribute;
    #: ``max_accepted_ttl`` rejects responses whose TTL exceeds the value.
    max_addresses_per_response: Optional[int] = None
    max_accepted_ttl: Optional[int] = None


@dataclass
class PoolGenerationState:
    """Observable state of the generation process."""

    lookups_done: int = 0
    addresses: set[str] = field(default_factory=set)
    per_lookup_counts: list[int] = field(default_factory=list)
    rejected_responses: int = 0
    finished: bool = False


class ChronosPoolGenerator:
    """Runs the hourly pool-generation lookups on the simulator."""

    def __init__(
        self,
        stub: StubResolver,
        simulator: Simulator,
        config: Optional[PoolGenerationConfig] = None,
        on_finished: Optional[Callable[[set[str]], None]] = None,
    ) -> None:
        self.stub = stub
        self.simulator = simulator
        self.config = config or PoolGenerationConfig()
        self.on_finished = on_finished
        self.state = PoolGenerationState()
        self._started = False

    def start(self, first_delay: float = 0.0) -> None:
        """Begin the generation process (first lookup after ``first_delay``)."""
        if self._started:
            return
        self._started = True
        self.simulator.schedule(first_delay, self._do_lookup, label="chronos-pool-lookup")

    def _do_lookup(self) -> None:
        if self.state.finished:
            return
        self.stub.resolve(self.config.pool_domain, self._on_result)

    def _on_result(self, result: ResolutionResult) -> None:
        self.state.lookups_done += 1
        added = 0
        if result.ok and self._accept(result):
            addresses = result.addresses
            if self.config.max_addresses_per_response is not None:
                addresses = addresses[: self.config.max_addresses_per_response]
            before = len(self.state.addresses)
            self.state.addresses.update(addresses)
            added = len(self.state.addresses) - before
        elif result.ok:
            self.state.rejected_responses += 1
        self.state.per_lookup_counts.append(added)

        if self.state.lookups_done >= self.config.total_lookups:
            self.state.finished = True
            if self.on_finished is not None:
                self.on_finished(set(self.state.addresses))
            return
        self.simulator.schedule(
            self.config.lookup_interval, self._do_lookup, label="chronos-pool-lookup"
        )

    def _accept(self, result: ResolutionResult) -> bool:
        """Apply the (optional) hardening checks to one DNS response."""
        if self.config.max_accepted_ttl is not None:
            ttls = result.ttls()
            if ttls and max(ttls) > self.config.max_accepted_ttl:
                return False
        return True

    # ----------------------------------------------------------- inspection
    def pool(self) -> set[str]:
        """The addresses gathered so far."""
        return set(self.state.addresses)

    def attacker_fraction(self, attacker_addresses: set[str]) -> float:
        """Fraction of the gathered pool controlled by the attacker."""
        if not self.state.addresses:
            return 0.0
        controlled = len(self.state.addresses & attacker_addresses)
        return controlled / len(self.state.addresses)
