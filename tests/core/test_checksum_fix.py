"""Tests for the UDP checksum-fixing primitive (paper section III-3)."""

import pytest

from repro.core.checksum_fix import (
    apply_correction,
    checksum_correction,
    craft_matching_fragment,
    sums_match,
)
from repro.netsim.checksum import ones_complement_sum
from repro.netsim.udp import UDPDatagram, decode_udp, encode_udp


class TestCorrectionArithmetic:
    def test_zero_correction_for_identical_fragments(self):
        data = b"identical fragment bytes"
        assert checksum_correction(data, data) == 0

    def test_correction_cancels_modification(self):
        original = bytes(range(64))
        modified = bytearray(original)
        modified[10:14] = b"\x06\x06\x06\x06"
        corrected = apply_correction(bytes(modified), 20, checksum_correction(original, bytes(modified)))
        assert sums_match(original, corrected)

    def test_apply_correction_requires_alignment(self):
        with pytest.raises(ValueError):
            apply_correction(bytes(16), 3, 1)

    def test_apply_correction_requires_in_bounds_offset(self):
        with pytest.raises(ValueError):
            apply_correction(bytes(16), 16, 1)


class TestCraftMatchingFragment:
    def test_crafted_fragment_matches_sum(self):
        original = bytes(range(200, 0, -2)) * 2
        desired = bytearray(original)
        desired[50:54] = b"\x42\x42\x42\x42"
        crafted = craft_matching_fragment(original, bytes(desired), adjustable_offsets=[100])
        assert sums_match(original, crafted)
        assert crafted[50:54] == b"\x42\x42\x42\x42"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            craft_matching_fragment(bytes(10), bytes(12), [0])

    def test_no_adjustable_offset_rejected(self):
        original = bytes(range(32))
        desired = bytearray(original)
        desired[0] ^= 0xFF
        with pytest.raises(ValueError):
            craft_matching_fragment(original, bytes(desired), adjustable_offsets=[1, 3])

    def test_unchanged_fragment_needs_no_adjustment(self):
        original = bytes(range(32))
        crafted = craft_matching_fragment(original, original, adjustable_offsets=[])
        assert crafted == original


class TestEndToEndChecksumValidity:
    def test_replaced_tail_passes_udp_checksum_verification(self):
        """Full-datagram check: replace the tail of a UDP datagram, fix the
        sum, and verify the original checksum still validates."""
        payload = bytes(range(256)) * 2
        datagram = UDPDatagram(src_port=53, dst_port=33333, payload=payload)
        wire = encode_udp("198.51.100.10", "192.0.2.53", datagram)

        boundary = 256  # 8-byte aligned split point
        original_tail = wire[boundary:]
        desired_tail = bytearray(original_tail)
        desired_tail[10:14] = b"\x06\x06\x06\x06"
        crafted_tail = craft_matching_fragment(
            original_tail, bytes(desired_tail), adjustable_offsets=[30]
        )
        spliced = wire[:boundary] + crafted_tail
        decoded = decode_udp("198.51.100.10", "192.0.2.53", spliced)
        assert decoded.payload[boundary - 8 + 10 : boundary - 8 + 14] == b"\x06\x06\x06\x06"

    def test_unfixed_replacement_fails_udp_checksum(self):
        payload = bytes(range(256)) * 2
        wire = encode_udp(
            "198.51.100.10", "192.0.2.53", UDPDatagram(src_port=53, dst_port=33333, payload=payload)
        )
        boundary = 256
        tampered = bytearray(wire)
        tampered[boundary + 10 : boundary + 14] = b"\x06\x06\x06\x06"
        with pytest.raises(Exception):
            decode_udp("198.51.100.10", "192.0.2.53", bytes(tampered))

    def test_correction_survives_carry_heavy_content(self):
        original = b"\xff\xff" * 50
        desired = bytearray(original)
        desired[20:24] = b"\x00\x01\x00\x02"
        crafted = craft_matching_fragment(original, bytes(desired), adjustable_offsets=[40])
        assert ones_complement_sum(crafted) == ones_complement_sum(original)
