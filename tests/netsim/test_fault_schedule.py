"""Scheduled fault-regime swaps: FaultSchedule + Network swap wiring.

The chaos layer (:mod:`repro.population.chaos`) compiles phased regimes
into :class:`~repro.netsim.faults.FaultSchedule` timelines executed by
:meth:`~repro.netsim.network.Network.apply_fault_schedule`.  This file
covers the mechanics those campaigns lean on: schedule validation, the
retired-stats ledger (network fault totals stay monotone across swaps),
epoch-tagged replacement streams, and inert schedules attaching nothing.
"""

from __future__ import annotations

import pytest

from repro.netsim import (
    Corruption,
    Duplication,
    FaultSchedule,
    Network,
    Partition,
    Simulator,
)
from repro.netsim.errors import FaultConfigError


def build(seed: int = 4):
    simulator = Simulator(seed=seed)
    network = Network(simulator)
    network.add_host("a", "10.0.0.1")
    received = []
    network.add_host("b", "10.0.0.2").bind(
        53, on_datagram=lambda payload, *rest: received.append(payload)
    )
    return simulator, network, received


class TestFaultSchedule:
    def test_entries_normalised_and_ordered(self):
        schedule = FaultSchedule([(0, (Corruption(0.1),)), (5.0, ())])
        assert len(schedule) == 2
        assert schedule.entries[0][0] == 0.0
        assert isinstance(schedule.entries[0][0], float)

    def test_rejects_unordered_and_negative_times(self):
        with pytest.raises(FaultConfigError):
            FaultSchedule([(5.0, ()), (1.0, (Corruption(0.1),))])
        with pytest.raises(FaultConfigError):
            FaultSchedule([(-1.0, ())])
        with pytest.raises(FaultConfigError):
            FaultSchedule([(1.0, ()), (1.0, ())])

    def test_rejects_non_components(self):
        with pytest.raises(FaultConfigError):
            FaultSchedule([(0.0, ("not-a-component",))])

    def test_is_inert_when_every_entry_composes_inert(self):
        assert FaultSchedule([(0.0, ()), (5.0, (Corruption(0.0),))]).is_inert
        assert not FaultSchedule([(0.0, (Corruption(0.5),))]).is_inert
        assert bool(FaultSchedule([(0.0, ())]))
        assert FaultSchedule([]).is_inert
        assert not FaultSchedule([])


class TestSwapLinkFaults:
    def test_swap_preserves_accumulated_stats(self):
        simulator, network, _ = build()
        network.set_link_faults("10.0.0.1", "10.0.0.2", Partition(0.0, 1000.0))
        source = network.host("10.0.0.1").bind(0)
        for _ in range(5):
            source.sendto(b"hello", "10.0.0.2", 53)
        simulator.run()
        assert network.fault_stats().dropped_partition == 5

        # Swapping to a fresh plan must fold the old channel's counters
        # into the retired ledger, not reset them.
        network.swap_link_faults("10.0.0.1", "10.0.0.2", Corruption(1.0))
        assert network.fault_stats().dropped_partition == 5
        source.sendto(b"corrupt-me", "10.0.0.2", 53)
        simulator.run()
        stats = network.fault_stats()
        assert stats.dropped_partition == 5
        assert stats.corrupted == 1

    def test_per_pair_stats_merge_retired_and_live(self):
        simulator, network, _ = build()
        network.set_link_faults("10.0.0.1", "10.0.0.2", Partition(0.0, 1000.0))
        source = network.host("10.0.0.1").bind(0)
        for _ in range(3):
            source.sendto(b"x", "10.0.0.2", 53)
        simulator.run()
        network.swap_link_faults("10.0.0.1", "10.0.0.2")
        pair = network.pair_fault_stats("10.0.0.1", "10.0.0.2")
        assert pair.dropped_partition == 3
        per_pair = network.per_pair_fault_stats()
        assert per_pair[("10.0.0.1", "10.0.0.2")].dropped_partition == 3

    def test_swap_bumps_replacement_stream_epoch(self):
        _, network, _ = build()
        network.set_link_faults("10.0.0.1", "10.0.0.2", Corruption(0.5))
        network.pipeline_for("10.0.0.1", "10.0.0.2")
        first = network.fault_channel("10.0.0.1", "10.0.0.2")
        network.swap_link_faults("10.0.0.1", "10.0.0.2", Corruption(0.5))
        network.pipeline_for("10.0.0.1", "10.0.0.2")
        second = network.fault_channel("10.0.0.1", "10.0.0.2")
        assert second is not first
        assert network._fault_epochs[("10.0.0.1", "10.0.0.2")] == 1


class TestApplyFaultSchedule:
    def test_scheduled_partition_applies_and_heals(self):
        simulator, network, received = build()
        schedule = FaultSchedule(
            [(10.0, (Partition(10.0, 10.0),)), (20.0, ())]
        )
        network.apply_fault_schedule("10.0.0.1", "10.0.0.2", schedule)
        source = network.host("10.0.0.1").bind(0)
        for step in range(30):
            simulator.schedule(
                float(step), source.sendto, args=(b"tick", "10.0.0.2", 53)
            )
        simulator.run()
        # 10 ticks fall inside [10, 20): dropped; the rest deliver.
        assert network.fault_stats().dropped_partition == 10
        assert len(received) == 20

    def test_inert_schedule_attaches_and_schedules_nothing(self):
        simulator, network, _ = build()
        before = len(simulator._heap) if hasattr(simulator, "_heap") else None
        network.apply_fault_schedule(
            "10.0.0.1", "10.0.0.2", FaultSchedule([(0.0, ()), (5.0, ())])
        )
        assert network.link_between("10.0.0.1", "10.0.0.2").faults is None
        if before is not None:
            assert len(simulator._heap) == before

    def test_extra_components_compose_into_every_entry(self):
        simulator, network, received = build()
        schedule = FaultSchedule([(0.0, (Partition(0.0, 5.0),)), (5.0, ())])
        network.apply_fault_schedule(
            "10.0.0.1", "10.0.0.2", schedule, extra=(Duplication(1.0),)
        )
        source = network.host("10.0.0.1").bind(0)
        simulator.schedule(1.0, source.sendto, args=(b"early", "10.0.0.2", 53))
        simulator.schedule(7.0, source.sendto, args=(b"late", "10.0.0.2", 53))
        simulator.run()
        stats = network.fault_stats()
        # The base duplication rides through both regimes: the partitioned
        # packet is dropped, the healed one delivers twice.
        assert stats.dropped_partition == 1
        assert stats.duplicated == 1
        assert received == [b"late", b"late"]
