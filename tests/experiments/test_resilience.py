"""Resilience tests: timeouts, retries, crash recovery, checkpointed sweeps.

Marked ``chaos`` alongside the fault-model property suite — ``make chaos``
runs both.  Worker-killing tests rely on the ``fork`` start method (the
Linux default), under which scenarios registered at test-module import are
visible inside pool workers.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.experiments import (
    CheckpointError,
    ERROR_KINDS,
    ExperimentRunner,
    RetryPolicy,
    RunSpec,
    SweepCancelled,
    load_checkpoint,
    make_grid,
    scenario,
)

pytestmark = pytest.mark.chaos


@scenario("_test_res_square")
def _test_res_square(x: int = 2) -> int:
    return x * x


@scenario("_test_res_fail")
def _test_res_fail() -> None:
    raise RuntimeError("always fails")


@scenario("_test_res_flaky")
def _test_res_flaky(marker: str = "", fail_times: int = 1, x: int = 7) -> int:
    """Fails the first ``fail_times`` attempts, then succeeds.

    Cross-attempt state lives in the ``marker`` file so the scenario stays
    a picklable top-level function.
    """
    attempts = 0
    if os.path.exists(marker):
        with open(marker) as handle:
            attempts = int(handle.read() or 0)
    attempts += 1
    with open(marker, "w") as handle:
        handle.write(str(attempts))
    if attempts <= fail_times:
        raise RuntimeError(f"flaky attempt {attempts}")
    return x


@scenario("_test_res_crash")
def _test_res_crash() -> None:
    os._exit(17)  # simulate OOM-kill / segfault: no exception, no cleanup


@scenario("_test_res_sleep")
def _test_res_sleep(seconds: float = 30.0, x: int = 0) -> int:
    time.sleep(seconds)
    return x


@scenario("_test_res_spin")
def _test_res_spin(seconds: float = 30.0, x: int = 0) -> int:
    """CPU-bound stall: only an in-process interrupt can stop it early."""
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        pass
    return x


@scenario("_test_res_interrupt_once")
def _test_res_interrupt_once(marker: str = "") -> int:
    """Raises KeyboardInterrupt on its first run (SIGINT landing mid-run)."""
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("1")
        raise KeyboardInterrupt
    return 1


class TestRetryPolicy:
    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=1.0)
        first = policy.delay("table2[seed=5]", 1)
        assert first == policy.delay("table2[seed=5]", 1)  # pure function
        assert 0.09 <= first <= 0.11  # ±10% jitter around 0.1
        second = policy.delay("table2[seed=5]", 2)
        assert 0.18 <= second <= 0.22
        assert policy.delay("table2[seed=5]", 10) <= 1.0 * 1.1  # capped
        assert policy.delay("other-label", 1) != first  # label feeds jitter

    def test_should_retry_respects_kinds_and_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry("worker-crash", 1)
        assert policy.should_retry("timeout", 2)
        assert not policy.should_retry("timeout", 3)  # attempts exhausted
        assert not policy.should_retry("scenario-error", 1)  # deterministic
        assert not policy.should_retry(None, 1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(retry_on=("cosmic-rays",))
        assert "scenario-error" in ERROR_KINDS

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_fraction=1.5)


class TestErrorTaxonomy:
    def test_scenario_error_kind(self):
        outcome = ExperimentRunner(max_workers=1).run(
            [RunSpec.make("_test_res_fail")]
        )[0]
        assert not outcome.ok
        assert outcome.error_kind == "scenario-error"
        assert outcome.attempts == 1
        assert "always fails" in outcome.error

    def test_success_has_no_kind(self):
        outcome = ExperimentRunner(max_workers=1).run(
            [RunSpec.make("_test_res_square", x=4)]
        )[0]
        assert outcome.ok and outcome.error_kind is None


class TestSerialRetry:
    def test_flaky_scenario_recovers(self, tmp_path):
        marker = str(tmp_path / "flaky")
        runner = ExperimentRunner(
            max_workers=1,
            retry=RetryPolicy(
                max_attempts=3,
                backoff_base=0.0,
                retry_on=("scenario-error",),
            ),
        )
        outcome = runner.run(
            [RunSpec.make("_test_res_flaky", marker=marker, fail_times=1, x=9)]
        )[0]
        assert outcome.ok
        assert outcome.result == 9
        assert outcome.attempts == 2

    def test_exhausted_retries_keep_last_failure(self, tmp_path):
        marker = str(tmp_path / "flaky")
        runner = ExperimentRunner(
            max_workers=1,
            retry=RetryPolicy(
                max_attempts=2, backoff_base=0.0, retry_on=("scenario-error",)
            ),
        )
        outcome = runner.run(
            [RunSpec.make("_test_res_flaky", marker=marker, fail_times=5)]
        )[0]
        assert not outcome.ok
        assert outcome.attempts == 2
        assert outcome.error_kind == "scenario-error"

    def test_default_policy_does_not_retry_scenario_errors(self, tmp_path):
        marker = str(tmp_path / "flaky")
        runner = ExperimentRunner(max_workers=1, retry=RetryPolicy(backoff_base=0.0))
        outcome = runner.run(
            [RunSpec.make("_test_res_flaky", marker=marker, fail_times=1)]
        )[0]
        assert not outcome.ok and outcome.attempts == 1


class TestWorkerCrash:
    def test_crash_is_typed_and_pool_recovers(self):
        specs = [
            RunSpec.make("_test_res_square", x=1),
            RunSpec.make("_test_res_crash"),
            RunSpec.make("_test_res_square", x=3),
            RunSpec.make("_test_res_square", x=4),
        ]
        runner = ExperimentRunner(max_workers=2, chunk_size=1)
        outcomes = runner.run(specs)
        by_label = {o.spec.label: o for o in outcomes}
        crash = by_label["_test_res_crash"]
        assert not crash.ok
        assert crash.error_kind == "worker-crash"
        # Every other spec survived the respawn (event-for-event results).
        assert by_label["_test_res_square[x=1]"].result == 1
        assert by_label["_test_res_square[x=3]"].result == 9
        assert by_label["_test_res_square[x=4]"].result == 16
        assert len(outcomes) == 4

    def test_crash_retry_counts_attempts(self):
        runner = ExperimentRunner(
            max_workers=2,
            chunk_size=1,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        outcomes = runner.run(
            [RunSpec.make("_test_res_crash"), RunSpec.make("_test_res_square", x=2)]
        )
        crash = next(o for o in outcomes if o.spec.scenario == "_test_res_crash")
        assert crash.error_kind == "worker-crash"
        assert crash.attempts == 2  # retried once, crashed again
        ok = next(o for o in outcomes if o.spec.scenario == "_test_res_square")
        assert ok.result == 4


class TestRunTimeout:
    def test_stalled_run_times_out_and_others_complete(self):
        specs = [
            RunSpec.make("_test_res_sleep", seconds=30.0, x=1),
            RunSpec.make("_test_res_square", x=5),
            RunSpec.make("_test_res_square", x=6),
        ]
        runner = ExperimentRunner(max_workers=2, chunk_size=1, run_timeout=1.0)
        start = time.monotonic()
        outcomes = runner.run(specs)
        elapsed = time.monotonic() - start
        assert elapsed < 15.0  # did not wait out the 30s sleep
        stalled = next(o for o in outcomes if o.spec.scenario == "_test_res_sleep")
        assert not stalled.ok
        assert stalled.error_kind == "timeout"
        squares = sorted(
            o.result for o in outcomes if o.spec.scenario == "_test_res_square"
        )
        assert squares == [25, 36]

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(run_timeout=0.0)


class TestProgress:
    def test_progress_emitted_per_completion(self):
        seen = []
        runner = ExperimentRunner(
            max_workers=1, on_progress=lambda done, total: seen.append((done, total))
        )
        runner.run(make_grid("_test_res_square", x=[1, 2, 3]))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_progress_throttled_but_final_guaranteed(self):
        seen = []
        runner = ExperimentRunner(
            max_workers=1,
            on_progress=lambda done, total: seen.append((done, total)),
            progress_interval=3600.0,  # swallow every intermediate emission
        )
        runner.run(make_grid("_test_res_square", x=[1, 2, 3]))
        assert seen[-1] == (3, 3)
        assert len(seen) <= 2


class TestCheckpointing:
    def grid(self):
        return make_grid("_test_res_square", x=list(range(6)))

    def test_checkpoint_lines_written_per_outcome(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        specs = self.grid()
        outcomes = ExperimentRunner(max_workers=1).run(specs, checkpoint=path)
        with open(path) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert len(lines) == len(specs)
        assert {entry["index"] for entry in lines} == set(range(len(specs)))
        for entry in lines:
            assert set(entry) >= {
                "index",
                "spec",
                "result",
                "wall_time",
                "error",
                "error_kind",
                "attempts",
            }
        assert [o.result for o in outcomes] == [x * x for x in range(6)]

    def test_run_refuses_existing_checkpoint(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        specs = self.grid()
        ExperimentRunner(max_workers=1).run(specs, checkpoint=path)
        with pytest.raises(CheckpointError):
            ExperimentRunner(max_workers=1).run(specs, checkpoint=path)

    def test_killed_then_resumed_equals_uninterrupted(self, tmp_path):
        specs = self.grid()
        uninterrupted = ExperimentRunner(max_workers=1).run(specs)

        # Simulate a sweep killed partway: keep the first 3 checkpoint
        # lines (plus a torn partial line from the kill mid-write).
        full_path = str(tmp_path / "full.jsonl")
        ExperimentRunner(max_workers=1).run(specs, checkpoint=full_path)
        with open(full_path) as handle:
            lines = handle.readlines()
        partial_path = str(tmp_path / "partial.jsonl")
        with open(partial_path, "w") as handle:
            handle.writelines(lines[:3])
            handle.write(lines[3][: len(lines[3]) // 2])  # torn tail

        executed = []
        seen = []
        runner = ExperimentRunner(
            max_workers=1, on_progress=lambda done, total: seen.append((done, total))
        )
        resumed = runner.resume(specs, checkpoint=partial_path)
        assert [(o.spec, o.result, o.error, o.error_kind) for o in resumed] == [
            (o.spec, o.result, o.error, o.error_kind) for o in uninterrupted
        ]
        # Only the unfinished tail re-executed: 3 new completions on top of
        # the 3 replayed, ending at the full total.
        assert seen == [(4, 6), (5, 6), (6, 6)]
        # And the checkpoint now covers the whole sweep: a second resume
        # replays everything without executing anything.
        again = ExperimentRunner(max_workers=1).resume(specs, checkpoint=partial_path)
        assert [o.result for o in again] == [o.result for o in uninterrupted]

    def test_resume_of_missing_checkpoint_degrades_to_run(self, tmp_path):
        path = str(tmp_path / "fresh.jsonl")
        outcomes = ExperimentRunner(max_workers=1).resume(
            self.grid(), checkpoint=path
        )
        assert [o.result for o in outcomes] == [x * x for x in range(6)]
        assert os.path.exists(path)

    def test_checkpoint_spec_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        ExperimentRunner(max_workers=1).run(self.grid(), checkpoint=path)
        other = make_grid("_test_res_square", x=[99, 98, 97, 96, 95, 94])
        with pytest.raises(CheckpointError):
            load_checkpoint(path, other)
        with pytest.raises(CheckpointError):
            ExperimentRunner(max_workers=1).resume(other, checkpoint=path)

    def test_checkpoint_index_out_of_range_rejected(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        ExperimentRunner(max_workers=1).run(self.grid(), checkpoint=path)
        with pytest.raises(CheckpointError):
            load_checkpoint(path, self.grid()[:2])

    def test_failures_checkpoint_and_replay(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        specs = [RunSpec.make("_test_res_fail"), RunSpec.make("_test_res_square", x=3)]
        first = ExperimentRunner(max_workers=1).run(specs, checkpoint=path)
        replayed = ExperimentRunner(max_workers=1).resume(specs, checkpoint=path)
        assert replayed[0].error == first[0].error
        assert replayed[0].error_kind == "scenario-error"
        assert replayed[1].result == 9

    def test_pool_mode_checkpoint_resume(self, tmp_path):
        """Checkpoints work under process fan-out, not just serially."""
        path = str(tmp_path / "sweep.jsonl")
        specs = make_grid(
            "table3_probabilities", trials=[10_000], m_max=[2, 3, 4, 5]
        )
        uninterrupted = ExperimentRunner(max_workers=2).run(specs)
        ExperimentRunner(max_workers=2).run(specs, checkpoint=path)
        resumed = ExperimentRunner(max_workers=2).resume(specs, checkpoint=path)
        assert [o.result for o in resumed] == [o.result for o in uninterrupted]


class TestSerialWatchdog:
    """run_timeout is enforced in serial mode too, via in-process preemption."""

    def test_cpu_bound_run_interrupted_in_serial_mode(self):
        runner = ExperimentRunner(max_workers=1, run_timeout=0.5)
        specs = [
            RunSpec.make("_test_res_spin", seconds=30.0, x=1),
            RunSpec.make("_test_res_square", x=4),
        ]
        start = time.monotonic()
        outcomes = runner.run(specs)
        elapsed = time.monotonic() - start
        assert elapsed < 10.0  # did not wait out the 30s busy-loop
        assert runner.last_execution_mode == "serial"
        assert outcomes[0].error_kind == "timeout"
        assert "watchdog" in outcomes[0].error
        # the interrupt did not leak into the next run
        assert outcomes[1].ok and outcomes[1].result == 16

    def test_serial_timeout_retries_via_policy(self):
        runner = ExperimentRunner(
            max_workers=1,
            run_timeout=0.3,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        outcome = runner.run([RunSpec.make("_test_res_spin", seconds=30.0)])[0]
        assert outcome.error_kind == "timeout"
        assert outcome.attempts == 2

    def test_fast_run_unaffected_by_watchdog(self):
        runner = ExperimentRunner(max_workers=1, run_timeout=30.0)
        outcomes = runner.run(make_grid("_test_res_square", x=[1, 2, 3]))
        assert [o.result for o in outcomes] == [1, 4, 9]


class TestGracefulCancellation:
    """SIGINT / sweep deadline flush finished outcomes; resume() continues."""

    def test_interrupt_flushes_partial_results(self, tmp_path):
        marker = str(tmp_path / "interrupted")
        path = str(tmp_path / "sweep.jsonl")
        specs = [
            RunSpec.make("_test_res_square", x=2),
            RunSpec.make("_test_res_interrupt_once", marker=marker),
            RunSpec.make("_test_res_square", x=5),
        ]
        runner = ExperimentRunner(max_workers=1)
        with pytest.raises(SweepCancelled) as excinfo:
            runner.run(specs, checkpoint=path)
        cancelled = excinfo.value
        assert cancelled.reason == "interrupt"
        assert cancelled.completed == 1 and cancelled.total == 3
        assert cancelled.outcomes[0].result == 4
        # the flushed checkpoint resumes past the interruption point
        resumed = ExperimentRunner(max_workers=1).resume(specs, checkpoint=path)
        assert [o.result for o in resumed] == [4, 1, 25]

    def test_sweep_deadline_cancels_serial_sweep(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        specs = [
            RunSpec.make("_test_res_sleep", seconds=0.2, x=i) for i in range(10)
        ]
        runner = ExperimentRunner(max_workers=1, sweep_timeout=0.5)
        start = time.monotonic()
        with pytest.raises(SweepCancelled) as excinfo:
            runner.run(specs, checkpoint=path)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0
        cancelled = excinfo.value
        assert cancelled.reason == "deadline"
        assert 1 <= cancelled.completed < 10
        # every finished outcome is on disk; a resume completes the sweep
        resumed = ExperimentRunner(max_workers=1).resume(specs, checkpoint=path)
        assert [o.result for o in resumed] == list(range(10))

    def test_sweep_deadline_cancels_pool_sweep(self):
        specs = [
            RunSpec.make("_test_res_sleep", seconds=0.3, x=i) for i in range(12)
        ]
        runner = ExperimentRunner(
            max_workers=2, chunk_size=1, sweep_timeout=0.6
        )
        start = time.monotonic()
        with pytest.raises(SweepCancelled) as excinfo:
            runner.run(specs)
        elapsed = time.monotonic() - start
        assert elapsed < 5.0
        assert excinfo.value.reason == "deadline"
        assert excinfo.value.completed < 12

    def test_invalid_sweep_timeout_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(sweep_timeout=0.0)


class TestProbationEngine:
    """Crash suspects re-run in isolated pools; the sweep stays parallel."""

    def test_clean_sweep_reports_zero_recovery(self):
        runner = ExperimentRunner(max_workers=2, chunk_size=1)
        runner.run(make_grid("_test_res_square", x=[1, 2, 3, 4]))
        assert runner.last_recovery == {
            "worker_crashes": 0,
            "probation_runs": 0,
            "timeouts": 0,
            "max_parallel_after_crash": 0,
        }

    def test_repeated_crashes_in_one_chunk(self):
        """A chunk holding two crashers fails cleanly however often it runs."""
        specs = [
            RunSpec.make("_test_res_crash"),
            RunSpec.make("_test_res_crash"),
            RunSpec.make("_test_res_square", x=2),
            RunSpec.make("_test_res_square", x=3),
        ]
        runner = ExperimentRunner(max_workers=2, chunk_size=2, retry=None)
        outcomes = runner.run(specs)
        assert [o.error_kind for o in outcomes[:2]] == [
            "worker-crash",
            "worker-crash",
        ]
        assert [o.result for o in outcomes[2:]] == [4, 9]

    def test_crash_during_probation_is_definitive_culprit(self):
        """A suspect that crashes its isolated pool fails with attempts
        counted across its probation re-runs."""
        specs = [RunSpec.make("_test_res_crash")] + [
            RunSpec.make("_test_res_square", x=i) for i in range(5)
        ]
        runner = ExperimentRunner(
            max_workers=2,
            chunk_size=1,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
        )
        outcomes = runner.run(specs)
        crash = outcomes[0]
        assert crash.error_kind == "worker-crash"
        assert crash.attempts == 2  # retried in probation, crashed again
        assert [o.result for o in outcomes[1:]] == [0, 1, 4, 9, 16]
        assert runner.last_recovery["probation_runs"] >= 2
        assert runner.last_recovery["worker_crashes"] >= 2

    def test_resume_mid_quarantine_identical_to_uninterrupted(self, tmp_path):
        """Killing the driver while a crash is being attributed loses
        nothing: the resumed sweep matches an uninterrupted one."""
        specs = [
            RunSpec.make("_test_res_square", x=1),
            RunSpec.make("_test_res_crash"),
            RunSpec.make("_test_res_square", x=3),
            RunSpec.make("_test_res_square", x=4),
            RunSpec.make("_test_res_square", x=5),
        ]

        def runner():
            return ExperimentRunner(max_workers=2, chunk_size=1, retry=None)

        uninterrupted = runner().run(specs)
        full_path = str(tmp_path / "full.jsonl")
        runner().run(specs, checkpoint=full_path)
        with open(full_path) as handle:
            lines = handle.readlines()
        # keep only the first two finished outcomes — the sweep dies while
        # the crash chunk is still in quarantine/probation
        partial_path = str(tmp_path / "partial.jsonl")
        with open(partial_path, "w") as handle:
            handle.writelines(lines[:2])
        resumed = runner().resume(specs, checkpoint=partial_path)
        assert [(o.spec, o.result, o.error_kind) for o in resumed] == [
            (o.spec, o.result, o.error_kind) for o in uninterrupted
        ]
