"""Property-based tests for IPv4 fragmentation and packet encoding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.fragmentation import fragment_packet, fragments_complete, reassemble_fragments
from repro.netsim.packet import IPProtocol, IPv4Packet

payload_sizes = st.integers(min_value=0, max_value=4000)
mtus = st.integers(min_value=68, max_value=1500)
ipids = st.integers(min_value=0, max_value=0xFFFF)


def make_packet(size: int, ipid: int) -> IPv4Packet:
    payload = bytes((i * 31 + 7) % 256 for i in range(size))
    return IPv4Packet(
        src="10.0.0.1", dst="10.0.0.2", protocol=IPProtocol.UDP, payload=payload, ipid=ipid
    )


class TestFragmentationProperties:
    @given(payload_sizes, mtus, ipids)
    @settings(max_examples=200)
    def test_fragment_then_reassemble_is_identity(self, size, mtu, ipid):
        packet = make_packet(size, ipid)
        fragments = fragment_packet(packet, mtu)
        assert fragments_complete(fragments)
        reassembled = reassemble_fragments(fragments)
        assert reassembled.payload == packet.payload
        assert reassembled.fragment_key == packet.fragment_key

    @given(payload_sizes, mtus)
    @settings(max_examples=200)
    def test_every_fragment_respects_mtu(self, size, mtu):
        fragments = fragment_packet(make_packet(size, 1), mtu)
        assert all(f.total_length <= mtu for f in fragments)

    @given(payload_sizes, mtus)
    @settings(max_examples=200)
    def test_payload_bytes_conserved_in_order(self, size, mtu):
        packet = make_packet(size, 1)
        fragments = fragment_packet(packet, mtu)
        assert b"".join(f.payload for f in fragments) == packet.payload

    @given(payload_sizes, mtus)
    @settings(max_examples=100)
    def test_non_last_fragments_are_8_byte_aligned(self, size, mtu):
        fragments = fragment_packet(make_packet(size, 1), mtu)
        for fragment in fragments[:-1]:
            assert len(fragment.payload) % 8 == 0

    @given(payload_sizes.filter(lambda s: s > 0), ipids)
    @settings(max_examples=100)
    def test_wire_round_trip(self, size, ipid):
        packet = make_packet(size, ipid)
        if packet.total_length > 65535:
            return
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.payload == packet.payload
        assert decoded.ipid == packet.ipid
