"""Authoritative zone data."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dns.names import name_in_zone, normalize_name
from repro.dns.records import ResourceRecord, RRType, soa_record


@dataclass
class Zone:
    """A DNS zone: an origin name plus its resource records.

    The zone is the unit served by an authoritative nameserver and the unit
    signed by DNSSEC.  Record lookup is exact-match on (owner name, type),
    with ANY returning every record at the owner name.
    """

    origin: str
    records: list[ResourceRecord] = field(default_factory=list)
    signed: bool = False
    key_tag: int | None = None

    def __post_init__(self) -> None:
        self.origin = normalize_name(self.origin)
        if not any(r.rtype is RRType.SOA for r in self.records):
            self.records.insert(0, soa_record(self.origin, f"ns1.{self.origin}"))

    def contains(self, name: str) -> bool:
        """True when ``name`` falls inside this zone."""
        return name_in_zone(name, self.origin)

    def add(self, record: ResourceRecord) -> None:
        """Add one record to the zone (must be inside the zone)."""
        if not self.contains(record.name):
            raise ValueError(f"{record.name} is outside zone {self.origin}")
        self.records.append(record)

    def lookup(self, name: str, rtype: RRType) -> list[ResourceRecord]:
        """Return records matching ``name`` and ``rtype`` (or ANY)."""
        name = normalize_name(name)
        if rtype is RRType.ANY:
            return [r for r in self.records if r.name == name]
        return [r for r in self.records if r.name == name and r.rtype is rtype]

    def names(self) -> set[str]:
        """All owner names present in the zone."""
        return {record.name for record in self.records}

    def rrset(self, name: str, rtype: RRType) -> list[ResourceRecord]:
        """Alias of :meth:`lookup` named after the DNSSEC unit of signing."""
        return self.lookup(name, rtype)
