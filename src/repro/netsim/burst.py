"""Burst execution: vectorised delivery of same-instant packet bursts.

The paper's attacks are *flood-shaped*: an attacker emits dozens of
near-identical packets at one simulated instant (a spoofed-query round, an
IPID fragment spray), and after PR 3's compiled datapath the per-packet
costs that remain — one heap push + pop per delivery event, one scalar
ones'-complement verify per packet, one handler call per packet — are
exactly the costs that same-instant bursts make redundant.  This module is
the delivery side of the burst engine (the event-loop side lives in
:mod:`repro.netsim.simulator`, the limiter side in
:mod:`repro.ntp.rate_limit`):

* :class:`DeliveryBurst` — the payload of one burst heap entry pushed by
  :meth:`repro.netsim.network.Network.transmit_burst`.  It stands for N
  delivery events at one instant (``count`` sequence numbers, ``count``
  towards ``events_processed``) and drains them in one flat ``run()``:

  1. **Vectorised checksum verify.**  Unfragmented UDP packets on
     verifying links are stacked into one wire buffer and their RFC 768
     checksums verified in a single numpy ``uint64`` word-sum pass —
     word-for-word the same fold as the scalar verify in
     :meth:`repro.netsim.datapath.HostDatapath.deliver` (pinned by the
     burst checksum property tests).  Heterogeneous bursts (mixed datagram
     sizes, fragments, non-UDP, non-verifying links) fall back to the
     per-packet scalar path.
  2. **Pre-parsed dispatch.**  Verified packets skip the scalar header
     unpack/length/checksum work entirely and enter the datapath through
     :meth:`~repro.netsim.datapath.HostDatapath.deliver_parsed`, with the
     ports read off the vector columns.
  3. **Run handoff.**  A consecutive run of verified packets sharing one
     destination flow (same datapath, same source address and ports) is
     offered to the destination socket's opt-in burst handler
     (:attr:`~repro.netsim.sockets.UDPSocket.on_datagram_burst`) as one
     call — this is what lets the NTP server absorb a spoofed flood
     through :meth:`~repro.ntp.rate_limit.RateLimiter.consume_burst`
     instead of N per-query handler calls.

Equivalence contract: a burst drain is *event-for-event* equivalent to the
per-packet deliveries it replaces — same delivery order, same stats and
defrag bookkeeping, same handler observations, same accept/reject per
checksum — pinned by ``tests/properties/test_prop_burst.py`` and the
fixed-seed golden determinism test.

Stage attribution: while ``repro.perf.STAGES`` collection is enabled, the
burst's grouping + vector-verify overhead is attributed to the
``burst_drain`` stage and the per-packet deliveries route through the
datapath's timed twins as usual; the ``checksum`` stage then counts only
the scalar verifies still performed packet-by-packet.

Buffer bounds: one burst entry covers at most :data:`MAX_DELIVERY_BURST`
packets (the network's transmit splits larger same-instant groups into
consecutive entries, preserving order), so the stacked verify buffer is
bounded at ~6 MB even for MTU-sized floods.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - pinned by the numpy-absent suite
    np = None  # type: ignore[assignment]

from repro.netsim.packet import IPProtocol
from repro.netsim.sockets import ReceivedDatagram
from repro.netsim.udp import UDP_HEADER_LEN, _UDP_HEADER
from repro.perf import STAGES, perf_counter

_UNPACK_UDP_HEADER = _UDP_HEADER.unpack_from

#: Hard cap on packets per burst heap entry: bounds the stacked wire buffer
#: (4096 × 1500 B ≈ 6 MB) and the latency of one atomic drain.
MAX_DELIVERY_BURST = 4096

#: Burst size from which the numpy stacked-buffer pass replaces the flat
#: arithmetic pass.  The flat pass folds each datagram with one big-int
#: ``int.from_bytes % 0xFFFF`` — effectively a vectorised word sum executed
#: by CPython's bignum kernel — so numpy's fixed per-kernel launch cost
#: (~15 µs × ~10 kernels on the dev box) only amortises for bursts in the
#: four-digit range; measured crossover was ≈2k packets for 56 B datagrams
#: and stayed above 512 even at MTU size.
NUMPY_VERIFY_MIN = 1024

_UDP = IPProtocol.UDP


class DeliveryBurst:
    """N same-instant packet deliveries packed into one heap entry.

    ``items`` is a list of ``(pipeline, packet)`` pairs in delivery order;
    ``count`` is what the simulator adds to ``events_processed`` when the
    entry drains (one per packet, exactly as N singular entries would).
    """

    __slots__ = ("items", "count")

    def __init__(self, items: list) -> None:
        self.items = items
        self.count = len(items)

    # ------------------------------------------------------------- the drain
    def run(self) -> None:
        items = self.items
        timed = STAGES.enabled
        if timed:
            t0 = perf_counter()
        parsed = self._vector_verify(items)
        if timed:
            STAGES.add_many("burst_drain", perf_counter() - t0, len(items))
        if parsed is None:
            # Nothing vectorisable: plain per-packet delivery, same order.
            for pipeline, packet in items:
                pipeline.deliver(packet)
            return
        n = len(items)
        index = 0
        while index < n:
            pipeline, packet = items[index]
            info = parsed[index]
            if info is None:
                pipeline.deliver(packet)
                index += 1
                continue
            src_port, dst_port = info
            datapath = pipeline.datapath
            # Run detection: consecutive verified packets sharing one
            # destination flow.  The common spray shape (one packet per
            # destination) fails the datapath identity compare and costs
            # one pointer check per packet.  The handoff disqualifiers
            # (tap installed, no live socket, no burst handler — the same
            # guards deliver_run re-checks) are probed *before* scanning,
            # so a long refused run costs O(1) per packet instead of a
            # rescan-per-index.  Instrumented runs skip the handoff: the
            # timed per-packet twins attribute demux/handler time the
            # one-call burst handler would hide (the two shapes are
            # equivalence-pinned, so results are identical either way).
            end = index + 1
            if not timed and end < n and items[end][0].datapath is datapath:
                socket = (
                    None
                    if datapath.host.packet_tap is not None
                    else datapath.sockets.get(dst_port)
                )
                if (
                    socket is not None
                    and not socket.closed
                    and socket.on_datagram_burst is not None
                    and socket.on_datagram is not None  # inbox mode queues per packet
                ):
                    src = packet.src
                    while end < n:
                        next_info = parsed[end]
                        if (
                            next_info is None
                            or items[end][0].datapath is not datapath
                            or next_info[0] != src_port
                            or next_info[1] != dst_port
                            or items[end][1].src != src
                        ):
                            break
                        end += 1
                    if end - index > 1 and datapath.deliver_run(
                        [pair[1] for pair in items[index:end]],
                        src_port,
                        dst_port,
                        pipeline.burst_bookkeeping,
                    ):
                        index = end
                        continue
                    end = index + 1
            if timed:
                datapath.deliver_parsed(
                    packet, src_port, dst_port, pipeline.burst_bookkeeping
                )
                index += 1
                continue
            # Inlined HostDatapath.deliver_parsed (the method remains the
            # reference implementation and the instrumented entry): one
            # call frame per packet is measurable across a Table II run.
            tap = datapath.host.packet_tap
            if tap is not None:
                tap(packet)
            if pipeline.burst_bookkeeping and datapath.defrag_buckets:
                datapath.defrag.purge_expired(datapath.simulator._now)
            datapath.stats.udp_received += 1
            socket = datapath.sockets.get(dst_port)
            if socket is not None and not socket.closed:
                payload = packet.payload[8:]
                handler = socket.on_datagram
                if handler is not None:
                    handler(payload, packet.src, src_port)
                else:
                    socket.inbox.append(
                        ReceivedDatagram(
                            payload, packet.src, src_port, datapath.simulator._now
                        )
                    )
            index += 1

    # ------------------------------------------------------ vectorised verify
    @staticmethod
    def _vector_verify(items: list):
        """One batched word-sum pass over the burst's verifiable packets.

        Returns a per-item list where entry *i* is ``(src_port, dst_port)``
        if packet *i* was parsed and its checksum accepted by the batched
        pass, or ``None`` if packet *i* must take the scalar path
        (ineligible, or rejected — the scalar path re-derives the failure
        and counts it exactly as before).  Returns ``None`` outright when
        the burst carries nothing verifiable.

        Two interchangeable implementations of the same fold, picked by
        burst size (see :data:`NUMPY_VERIFY_MIN`); both are pinned
        word-for-word against the datapath's scalar verify by the burst
        checksum property tests.  The stacked numpy pass additionally
        requires uniform datagram sizes; heterogeneous large bursts fall
        back to the flat pass, which verifies each datagram at its own
        length.
        """
        n = len(items)
        if np is not None and n >= NUMPY_VERIFY_MIN:
            parsed = DeliveryBurst._verify_stacked(items)
            if parsed is not None:
                return parsed
        return DeliveryBurst._verify_flat(items)

    @staticmethod
    def _verify_flat(items: list):
        """The flat arithmetic pass: one big-int fold per datagram.

        The same computation as :meth:`_verify_stacked`, executed by
        CPython's bignum kernel one datagram at a time in a single fused
        eligibility+parse+verify loop; for small-to-medium bursts this
        beats numpy's per-kernel launch overhead by an order of magnitude
        (measured crossover ≈2k packets — see :data:`NUMPY_VERIFY_MIN`).
        ``0xFFFF - folded`` equals the scalar path's double-special-cased
        complement for every ``folded`` in ``[0, 0xFFFE]`` (the modulo's
        range): at ``folded == 0`` both yield ``0xFFFF``, and the
        complement can never hit 0.
        """
        parsed: list = [None] * len(items)
        unpack = _UNPACK_UDP_HEADER
        any_verified = False
        for i, (pipeline, packet) in enumerate(items):
            # ``burst_parse`` bakes pre-parse eligibility at
            # pipeline-compile time, so eligibility costs one slot read
            # plus the packet-shape checks; ``vector_verify`` adds the
            # checksum fold only on pairs whose scalar path would verify
            # (trusted links and non-verifying hosts parse without it).
            if (
                not pipeline.burst_parse
                or packet.protocol is not _UDP
                or packet.more_fragments
                or packet.fragment_offset
            ):
                continue
            data = packet.payload
            size = len(data)
            if size < UDP_HEADER_LEN:
                continue
            src_port, dst_port, length, checksum = unpack(data)
            if length != size:
                continue
            if checksum and pipeline.vector_verify:
                payload = data[UDP_HEADER_LEN:]
                if size & 1:
                    payload += b"\x00"
                folded = (
                    pipeline.addr_sum
                    + 17
                    + length
                    + length
                    + src_port
                    + dst_port
                    + int.from_bytes(payload, "big") % 0xFFFF
                ) % 0xFFFF
                if checksum != 0xFFFF - folded:
                    continue
            parsed[i] = (src_port, dst_port)
            any_verified = True
        return parsed if any_verified else None

    @staticmethod
    def _verify_stacked(items: list):
        """The numpy stacked-buffer pass for four-digit uniform bursts.

        Word-for-word the scalar fold: pseudo-header address sums + the
        protocol word (17) + the UDP length twice + ports + payload words,
        all mod 0xFFFF.  ``totals`` already contains ports + length field
        + payload (every 16-bit word of the datagram); the checksum field
        is subtracted back out and the length added a second time for the
        pseudo-header.  int64 cannot overflow: 4096 packets × 750 words
        × 0xFFFF ≪ 2**63.

        Returns the per-item parsed list, or ``None`` when the burst's
        verifiable packets are too few or not uniformly sized (the caller
        then uses the flat pass).
        """
        datas: list[bytes] = []
        addr_sums: list[int] = []
        verify_flags: list[bool] = []
        picked: list[int] = []
        size = -1
        for i, (pipeline, packet) in enumerate(items):
            if (
                not pipeline.burst_parse
                or packet.protocol is not _UDP
                or packet.more_fragments
                or packet.fragment_offset
            ):
                continue
            data = packet.payload
            if size < 0:
                size = len(data)
                if size < UDP_HEADER_LEN:
                    return None
            elif len(data) != size:
                return None  # heterogeneous: the flat pass handles it
            datas.append(data)
            addr_sums.append(pipeline.addr_sum)
            verify_flags.append(pipeline.vector_verify)
            picked.append(i)
        count = len(datas)
        if count < 2:
            return None
        parsed: list = [None] * len(items)
        if size & 1:
            buffer = b"".join(data + b"\x00" for data in datas)
            width = (size + 1) // 2
        else:
            buffer = b"".join(datas)
            width = size // 2
        words = np.frombuffer(buffer, dtype=">u2").reshape(count, width)
        totals = words.sum(axis=1, dtype=np.int64)
        length = words[:, 2].astype(np.int64)
        checksum = words[:, 3].astype(np.int64)
        folded = (
            np.asarray(addr_sums, dtype=np.int64) + 17 + length + totals - checksum
        ) % 0xFFFF
        # A zero checksum field means "not checksummed": accepted unverified,
        # exactly as the scalar path's ``if checksum and ...`` guard does;
        # rows whose pipeline does not verify (trusted links, non-verifying
        # hosts) are accepted on the length check alone; 0xFFFF - folded is
        # the complement with both RFC special cases already absorbed (see
        # _verify_flat).
        verify = np.asarray(verify_flags, dtype=bool)
        ok = (length == size) & (
            ~verify | (checksum == 0) | (checksum == 0xFFFF - folded)
        )
        src_ports = words[:, 0].tolist()
        dst_ports = words[:, 1].tolist()
        ok_list = ok.tolist()
        for j, i in enumerate(picked):
            if ok_list[j]:
                parsed[i] = (src_ports[j], dst_ports[j])
        return parsed
