#!/usr/bin/env python3
"""DNS poisoning attack against the Chronos-enhanced NTP client (section VI).

The example sweeps the moment the poisoning lands (after N honest hourly
lookups of the 24-lookup pool-generation period, compressed to 5-minute
"hours" for simulation speed) and reports, for each N, the attacker's share
of the generated pool and whether the victim's clock ended up shifted.  The
paper's bound says the attack succeeds whenever the poisoning lands before
the 12th lookup (N <= 11).

Run with::

    python examples/chronos_attack.py
"""

from __future__ import annotations

from repro.core.chronos_attack import ChronosAttack, max_honest_lookups_tolerated
from repro.measurement.report import format_percentage, format_table
from repro.ntp.chronos.client import ChronosConfig
from repro.ntp.chronos.pool_generation import PoolGenerationConfig
from repro.testbed import TestbedConfig, build_testbed


def run_once(poison_after_lookups: int) -> list:
    testbed = build_testbed(TestbedConfig(pool_size=160, seed=200 + poison_after_lookups))
    victim = testbed.add_chronos_client(
        config=ChronosConfig(
            pool_generation=PoolGenerationConfig(lookup_interval=300.0, total_lookups=24),
            servers_per_round=11,
            poll_interval=150.0,
        )
    )
    attack = ChronosAttack(
        attacker=testbed.attacker,
        simulator=testbed.simulator,
        resolver=testbed.resolver,
        victim=victim,
    )
    result = attack.run(poison_after_lookups=poison_after_lookups, observe_rounds=3)
    return [
        poison_after_lookups,
        result.honest_addresses_in_pool,
        result.attacker_addresses_in_pool,
        format_percentage(result.attacker_fraction, 1),
        result.attacker_controls_pool,
        f"{result.clock_shift_achieved:+.1f}",
        result.success,
    ]


def main() -> None:
    print(
        "Analytic bound: poisoning must land before lookup "
        f"{max_honest_lookups_tolerated() + 1} of 24 (N <= {max_honest_lookups_tolerated()}).\n"
    )
    rows = [run_once(n) for n in (2, 6, 10, 16, 20)]
    print(
        format_table(
            ["N (honest lookups)", "Honest in pool", "Attacker in pool", "Attacker share",
             "> 2/3 control", "Clock shift (s)", "Attack success"],
            rows,
            title="Chronos pool poisoning sweep (paper section VI-C)",
        )
    )


if __name__ == "__main__":
    main()
