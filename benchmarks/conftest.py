"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The simulated
experiments are deterministic, so each one is run exactly once per benchmark
(``rounds=1``) — the benchmark timing then reports the cost of regenerating
that artefact, and the artefact itself is printed (run with ``-s`` to see the
tables) and summarised in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a deterministic experiment exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
