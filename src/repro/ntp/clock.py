"""System clock model.

Each host that runs an NTP client or server owns a :class:`SystemClock`.
The clock's reading is ``true_time + offset + drift * elapsed``, where "true
time" is the simulator clock.  A time-shifting attack succeeds when it drives
the *offset* of the victim's clock to the attacker's target (the paper's lab
evaluation shifts clients by -500 seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ClockAdjustment:
    """A record of one applied adjustment (for attack-duration analysis)."""

    true_time: float
    amount: float
    stepped: bool


@dataclass
class SystemClock:
    """A drifting, adjustable clock.

    Parameters
    ----------
    offset:
        Initial offset from true time in seconds (e.g. a machine booting with
        a dead RTC battery can start hours off).
    drift_ppm:
        Frequency error in parts-per-million; accumulates between
        adjustments.
    """

    offset: float = 0.0
    drift_ppm: float = 0.0
    created_at: float = 0.0
    adjustments: list[ClockAdjustment] = field(default_factory=list)

    def time(self, true_time: float) -> float:
        """The clock's reading at simulator time ``true_time``."""
        elapsed = true_time - self.created_at
        return true_time + self.offset + self.drift_ppm * 1e-6 * elapsed

    def error(self, true_time: float) -> float:
        """Signed error of the clock versus true time."""
        return self.time(true_time) - true_time

    def step(self, amount: float, true_time: float) -> None:
        """Step the clock by ``amount`` seconds (instantaneous jump)."""
        self.offset += amount
        self.adjustments.append(ClockAdjustment(true_time, amount, stepped=True))

    def slew(self, amount: float, true_time: float, max_rate: float = 0.0005) -> float:
        """Apply a bounded gradual correction and return the applied amount.

        Real clock disciplines slew at most ~500 ppm; for the purposes of the
        attack-duration experiments the distinction that matters is that
        large shifts require a *step*, which clients only perform after
        sustained evidence.
        """
        applied = max(-max_rate, min(max_rate, amount))
        self.offset += applied
        self.adjustments.append(ClockAdjustment(true_time, applied, stepped=False))
        return applied

    def total_stepped(self) -> float:
        """Sum of all stepped adjustments (how far attacks moved the clock)."""
        return sum(a.amount for a in self.adjustments if a.stepped)

    def last_adjustment_time(self) -> float | None:
        """True time of the most recent adjustment, if any."""
        if not self.adjustments:
            return None
        return self.adjustments[-1].true_time
