"""DNS cache poisoning by replacing the second fragment (paper section III).

The attack proceeds in five steps, all implemented here:

1. **Learn the response template.**  The attacker queries the target
   nameserver itself for the victim domain and records the response.  This
   reveals the response's size, its record layout and the content of the
   portion that will end up in the second fragment (for responses with a
   predictable tail).  The challenge-response values of the *victim's* query
   — UDP source port and DNS TXID — are never needed because they live in
   the first fragment, which the attacker does not touch.
2. **Force fragmentation.**  A spoofed ICMP "fragmentation needed" message
   makes the nameserver believe the path MTU towards the victim resolver is
   small, so subsequent responses to the resolver are sent in fragments.
3. **Predict the IPID.**  The attacker samples the nameserver's IPID counter
   with its own queries and extrapolates the values that will be used for
   the response to the resolver (spraying a window of candidates bounded by
   the resolver's pending-fragment limit).
4. **Craft and plant the spoofed second fragment.**  The desired response is
   the template with the A-record addresses rewritten to attacker addresses;
   the fragment's ones'-complement sum is patched back to the original's by
   adjusting a TTL low half (see :mod:`repro.core.checksum_fix`).  One copy
   per candidate IPID is injected into the resolver's defragmentation cache
   and refreshed every ``refresh_interval`` (fragments expire after 30 s on
   Linux), so at most ``ceil(150 / 30) = 5`` fragments per TTL window are
   needed — the "low attack volume" property of section IV-A.
5. **Wait for (or trigger) the query.**  When the resolver's query reaches
   the nameserver, the genuine first fragment reassembles with the planted
   fragment, the UDP checksum verifies, and the resolver caches the
   attacker's records for ``pool.ntp.org``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.attacker import Attacker
from repro.core.checksum_fix import craft_matching_fragment
from repro.core.ipid_prediction import IPIDPredictor, IPIDPrediction
from repro.dns.message import DNSMessage, record_offsets
from repro.dns.records import RRType
from repro.netsim.addresses import ip_to_int
from repro.netsim.icmp import frag_needed
from repro.netsim.packet import IPProtocol, IPV4_HEADER_LEN, IPv4Packet
from repro.netsim.simulator import Simulator
from repro.netsim.udp import UDP_HEADER_LEN

#: Fragment reassembly timeout on Linux (paper section IV-A): planted
#: fragments must be refreshed at least this often.
LINUX_REASSEMBLY_TIMEOUT = 30.0


@dataclass
class PoisoningPlan:
    """Parameters of one poisoning campaign."""

    resolver_ip: str
    nameserver_ip: str
    qname: str = "pool.ntp.org"
    malicious_addresses: list[str] = field(default_factory=list)
    #: MTU advertised to the nameserver; smaller values move more of the
    #: answer section into the attacker-controlled second fragment.
    target_mtu: int = 296
    #: TTL written into the spoofed records (long TTLs are what break
    #: Chronos' pool generation).
    poisoned_ttl: Optional[int] = None
    #: How often the planted fragment is refreshed.  Re-sending a fragment
    #: for a reassembly queue that already exists does not reset the queue's
    #: timer (kernel behaviour), so the effective strategy is to plant a new
    #: copy every ``timeout`` seconds; the IPID probe that precedes each
    #: plant leaves a ~1 s uncovered window per cycle, which is why the
    #: paper's low-volume variant needs a handful of attempts rather than
    #: exactly one.
    refresh_interval: float = LINUX_REASSEMBLY_TIMEOUT
    ipid_candidates: int = 16
    ipid_probe_queries: int = 4
    max_duration: float = 600.0
    #: Whether to also rewrite glue A records in the additional section.
    rewrite_glue: bool = True


@dataclass
class PoisoningOutcome:
    """Result of a poisoning campaign."""

    success: bool
    started_at: float
    finished_at: float
    fragments_sent: int
    refreshes: int
    template_learned: bool
    ipid_prediction: Optional[IPIDPrediction] = None

    @property
    def duration(self) -> float:
        """Wall-clock (simulated) duration of the campaign."""
        return self.finished_at - self.started_at


class DNSFragmentPoisoner:
    """Runs one defragmentation-cache poisoning campaign."""

    def __init__(
        self,
        attacker: Attacker,
        simulator: Simulator,
        plan: PoisoningPlan,
        success_check: Optional[Callable[[], bool]] = None,
        on_finished: Optional[Callable[[PoisoningOutcome], None]] = None,
    ) -> None:
        self.attacker = attacker
        self.simulator = simulator
        self.plan = plan
        #: Ground-truth success predicate supplied by the experiment harness
        #: (e.g. "is the resolver cache poisoned?").  A real attacker would
        #: instead verify by querying the resolver, which
        #: :meth:`verify_via_open_resolver` implements.
        self.success_check = success_check
        self.on_finished = on_finished
        self.template_payload: Optional[bytes] = None
        self.prediction: Optional[IPIDPrediction] = None
        self.fragments_sent = 0
        self.refreshes = 0
        self.started_at = 0.0
        self.finished = False
        self._refresh_event = None
        self._predictor: Optional[IPIDPredictor] = None

    # ----------------------------------------------------------- life cycle
    def start(self) -> None:
        """Run the full campaign: probe, learn, force fragmentation, plant."""
        self.started_at = self.simulator.now
        self._predictor = IPIDPredictor(
            self.attacker.query_host,
            self.simulator,
            self.plan.nameserver_ip,
            probe_name=self.plan.qname,
        )
        self.attacker.stats.own_queries_sent += self.plan.ipid_probe_queries
        self._predictor.probe(
            count=self.plan.ipid_probe_queries, on_done=self._on_prediction
        )

    def _on_prediction(self, prediction: IPIDPrediction) -> None:
        self.prediction = prediction
        self._learn_template(self._on_template)

    def _learn_template(self, callback: Callable[[Optional[bytes]], None]) -> None:
        """Query the nameserver directly to learn the response bytes."""
        socket = self.attacker.query_host.bind(0)
        state = {"done": False}

        def finish(payload: Optional[bytes]) -> None:
            if state["done"]:
                return
            state["done"] = True
            socket.close()
            callback(payload)

        def on_datagram(payload: bytes, src_ip: str, src_port: int) -> None:
            if src_ip == self.plan.nameserver_ip and src_port == 53:
                finish(payload)

        socket.on_datagram = on_datagram
        query = DNSMessage.query(self.plan.qname, txid=0x5555)
        self.attacker.stats.own_queries_sent += 1
        socket.sendto(query.encode(), self.plan.nameserver_ip, 53)
        self.simulator.schedule(5.0, lambda: finish(None), label="template-timeout")

    def _on_template(self, payload: Optional[bytes]) -> None:
        self.template_payload = payload
        if payload is None:
            self._finish(False)
            return
        self.force_fragmentation()
        self._plant_round()

    # ------------------------------------------------------------ the steps
    def force_fragmentation(self) -> None:
        """Send the spoofed ICMP fragmentation-needed message (step 2)."""
        message = frag_needed(self.plan.target_mtu)
        message.metadata["about_destination"] = self.plan.resolver_ip
        self.attacker.stats.icmp_errors_sent += 1
        self.attacker.query_host.send_icmp(self.plan.nameserver_ip, message)

    def first_fragment_payload_length(self) -> int:
        """IP-payload bytes carried by the first fragment at the target MTU."""
        return (self.plan.target_mtu - IPV4_HEADER_LEN) & ~0x7

    def build_spoofed_payload(self) -> Optional[tuple[bytes, int]]:
        """Craft the spoofed second-fragment payload.

        Returns ``(payload, fragment_offset_units)`` or None when the
        template response would not fragment at the target MTU (nothing to
        replace) or when no attacker-rewritable field lies in the second
        fragment.
        """
        if self.template_payload is None:
            return None
        template_dns = self.template_payload
        boundary = self.first_fragment_payload_length()
        udp_template = b"\x00" * UDP_HEADER_LEN + template_dns
        if len(udp_template) <= boundary:
            return None

        desired_dns, adjustable = self._rewrite_records(template_dns)
        udp_desired = b"\x00" * UDP_HEADER_LEN + desired_dns
        original_f2 = udp_template[boundary:]
        desired_f2 = udp_desired[boundary:]
        adjustable_in_f2 = [
            offset + UDP_HEADER_LEN - boundary
            for offset in adjustable
            if offset + UDP_HEADER_LEN >= boundary
        ]
        try:
            spoofed_f2 = craft_matching_fragment(original_f2, desired_f2, adjustable_in_f2)
        except ValueError:
            return None
        return spoofed_f2, boundary // 8

    def _rewrite_records(self, template_dns: bytes) -> tuple[bytes, list[int]]:
        """Rewrite A-record addresses in the template; report sacrificial offsets.

        Only rdata bytes that lie entirely in the second fragment can change
        (the first fragment is the nameserver's).  Returns the rewritten DNS
        payload plus the offsets (within the DNS payload) of TTL low halves
        belonging to rewritten records, which may absorb the checksum
        correction.
        """
        boundary_in_dns = self.first_fragment_payload_length() - UDP_HEADER_LEN
        rewritten = bytearray(template_dns)
        adjustable: list[int] = []
        addresses = list(self.plan.malicious_addresses) or self.attacker.redirect_addresses(4)
        address_index = 0
        for record in record_offsets(template_dns):
            if record.rtype is not RRType.A or record.rdlength != 4:
                continue
            if record.section == "authority":
                continue
            if record.section == "additional" and not self.plan.rewrite_glue:
                continue
            if record.rdata_offset < boundary_in_dns:
                continue  # address (partially) in the first fragment: untouchable
            address = addresses[address_index % len(addresses)]
            address_index += 1
            rewritten[record.rdata_offset : record.rdata_offset + 4] = ip_to_int(
                address
            ).to_bytes(4, "big")
            if self.plan.poisoned_ttl is not None and record.ttl_offset >= boundary_in_dns:
                rewritten[record.ttl_offset : record.ttl_offset + 4] = self.plan.poisoned_ttl.to_bytes(4, "big")
            if record.ttl_low_offset >= boundary_in_dns:
                adjustable.append(record.ttl_low_offset)
        return bytes(rewritten), adjustable

    def _plant_round(self) -> None:
        """Refresh the IPID estimate, then plant fragments (step 3 + 4)."""
        if self.finished:
            return
        if self._check_success():
            return
        if self.simulator.now - self.started_at > self.plan.max_duration:
            self._finish(False)
            return
        # Re-sample the IPID counter each round: the prediction must reflect
        # whatever traffic the nameserver served since the last round.
        self.attacker.stats.own_queries_sent += 1
        self._predictor.probe(count=1, interval=0.2, on_done=self._plant_with_prediction)

    def _plant_with_prediction(self, prediction: IPIDPrediction) -> None:
        """Inject one spoofed fragment per candidate IPID (step 4)."""
        if self.finished:
            return
        self.prediction = prediction
        crafted = self.build_spoofed_payload()
        if crafted is not None and self.prediction is not None:
            payload, offset_units = crafted
            # The whole spray — one spoofed fragment per candidate IPID —
            # goes to the simulator as one coalesced burst entry (fragments
            # take the per-packet reassembly path inside the drain; only
            # the heap traffic is batched).  Logically event-for-event
            # equivalent to the old per-fragment inject loop.
            burst = [
                IPv4Packet(
                    src=self.plan.nameserver_ip,
                    dst=self.plan.resolver_ip,
                    protocol=IPProtocol.UDP,
                    payload=payload,
                    ipid=ipid,
                    more_fragments=False,
                    fragment_offset=offset_units,
                )
                for ipid in self.prediction.candidates(
                    self.plan.ipid_candidates, lookahead=0.0
                )
            ]
            self.attacker.stats.spoofed_fragments_sent += len(burst)
            self.fragments_sent += len(burst)
            self.attacker.inject_burst(burst)
        self.refreshes += 1
        self._refresh_event = self.simulator.schedule(
            self.plan.refresh_interval, self._plant_round, label="poisoner-refresh"
        )

    # -------------------------------------------------------------- helpers
    def trigger_query_via_open_resolver(self) -> None:
        """Make the resolver fetch the victim domain (if it is an open resolver).

        Models option (2) of section IV-A: another system sharing the
        resolver (or the resolver being open) issues the query for the
        attacker, so the attacker does not need to predict when the NTP
        client will ask.
        """
        socket = self.attacker.query_host.bind(0)
        socket.on_datagram = lambda payload, ip, port: socket.close()
        query = DNSMessage.query(self.plan.qname, txid=0x0A0A)
        self.attacker.stats.own_queries_sent += 1
        socket.sendto(query.encode(), self.plan.resolver_ip, 53)

    def verify_via_open_resolver(self, callback: Callable[[bool], None]) -> None:
        """Check success the way a real attacker would: ask the resolver."""
        socket = self.attacker.query_host.bind(0)

        def on_datagram(payload: bytes, src_ip: str, src_port: int) -> None:
            socket.close()
            try:
                response = DNSMessage.decode(payload)
            except Exception:  # noqa: BLE001 - malformed response means "unknown"
                callback(False)
                return
            addresses = {str(r.data) for r in response.answers if r.rtype is RRType.A}
            callback(bool(addresses & self.attacker.controlled_addresses))

        socket.on_datagram = on_datagram
        query = DNSMessage.query(self.plan.qname, txid=0x0B0B)
        socket.sendto(query.encode(), self.plan.resolver_ip, 53)
        self.simulator.schedule(5.0, socket.close, label="verify-timeout")

    def _check_success(self) -> bool:
        if self.success_check is not None and self.success_check():
            self._finish(True)
            return True
        return False

    def _finish(self, success: bool) -> None:
        if self.finished:
            return
        self.finished = True
        if self._refresh_event is not None:
            self._refresh_event.cancel()
        outcome = PoisoningOutcome(
            success=success,
            started_at=self.started_at,
            finished_at=self.simulator.now,
            fragments_sent=self.fragments_sent,
            refreshes=self.refreshes,
            template_learned=self.template_payload is not None,
            ipid_prediction=self.prediction,
        )
        if self.on_finished is not None:
            self.on_finished(outcome)

    def stop(self) -> None:
        """Abort the campaign (deciding success from the ground-truth check)."""
        self._finish(self.success_check() if self.success_check else False)
