"""Discrete-event simulation core.

A single :class:`Simulator` instance drives every experiment: hosts, links,
DNS resolvers, NTP clients, attackers and measurement scanners all schedule
callbacks on the same virtual clock.  Time is a float measured in seconds.

The event loop is deliberately small: a heap of ``(time, sequence, Event)``
tuples, where the monotonically increasing sequence number makes ordering of
same-time events deterministic (first scheduled, first executed).  All
randomness in the simulation flows through the simulator's seeded
``numpy.random.Generator`` so runs are reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.netsim.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, sequence)`` so that the heap pops them in
    chronological order and, within the same instant, in scheduling order.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True


class Simulator:
    """The discrete-event loop shared by every simulated component.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random generator.  Components that need
        their own stream should call :meth:`spawn_rng` so their draws do not
        perturb each other when the topology changes.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._rng = np.random.default_rng(seed)
        self._seed = seed
        self._spawned = 0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def rng(self) -> np.random.Generator:
        """The simulation-wide random number generator."""
        return self._rng

    def spawn_rng(self) -> np.random.Generator:
        """Return an independent random generator derived from the seed.

        Each call returns a new stream; components store their own stream so
        that adding one component does not shift the random draws of another.
        """
        self._spawned += 1
        return np.random.default_rng((self._seed, self._spawned))

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.  Negative delays
        are rejected because they would break causality.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(
        self,
        when: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self._now})"
            )
        event = Event(when, next(self._sequence), callback, label)
        heapq.heappush(self._queue, event)
        return event

    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def step(self) -> Optional[Event]:
        """Process the next event, returning it, or None if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self.events_processed += 1
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this absolute time.  Events at a
            later time remain queued; the clock is advanced to ``until``.
        max_events:
            Safety valve for tests: stop after this many events.

        Returns the number of events processed by this call.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = max(self._now, until)
                break
            if self.step() is not None:
                processed += 1
        if until is not None and not self._queue:
            self._now = max(self._now, until)
        return processed

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run the loop for ``duration`` simulated seconds from now."""
        return self.run(until=self._now + duration, max_events=max_events)

    def advance(self, duration: float) -> None:
        """Advance the clock without processing events (test helper)."""
        if duration < 0:
            raise SimulationError("cannot advance backwards")
        target = self._now + duration
        self.run(until=target)
        self._now = max(self._now, target)
