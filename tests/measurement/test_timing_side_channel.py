"""Tests for the timing side-channel study (Figure 7 — a negative result)."""

import numpy as np

from repro.measurement.population import ResolverPopulationParameters, generate_open_resolvers
from repro.measurement.timing_side_channel import TimingSideChannelStudy


def run_study(size=3000, seed=4):
    resolvers = generate_open_resolvers(ResolverPopulationParameters(size=size))
    return TimingSideChannelStudy(resolvers, rng=np.random.default_rng(seed)).run()


class TestProbeModel:
    def test_only_responding_resolvers_probed(self):
        resolvers = generate_open_resolvers(ResolverPopulationParameters(size=1000))
        report = TimingSideChannelStudy(resolvers).run()
        assert len(report.results) == sum(1 for r in resolvers if r.responds)

    def test_cache_misses_are_slower_on_average(self):
        report = run_study()
        cached = [r.latency_difference for r in report.results if r.actually_cached]
        uncached = [r.latency_difference for r in report.results if not r.actually_cached]
        assert np.mean(uncached) > np.mean(cached)

    def test_histogram_covers_paper_range(self):
        report = run_study(size=2000)
        counts, edges = report.histogram(bins=25, value_range=(-50.0, 200.0))
        assert counts.sum() == len(report.results)
        assert edges[0] == -50.0 and edges[-1] == 200.0


class TestNegativeResult:
    def test_no_reliable_threshold_exists(self):
        """The paper's conclusion: the distributions overlap too much for a
        usable threshold, so the method was abandoned."""
        report = run_study(size=4000)
        _, accuracy = report.best_threshold_accuracy()
        assert accuracy < 0.90

    def test_distributions_overlap_substantially(self):
        report = run_study(size=4000)
        cached = np.array([r.latency_difference for r in report.results if r.actually_cached])
        uncached = np.array([r.latency_difference for r in report.results if not r.actually_cached])
        # A large fraction of uncached probes look faster than the median
        # cached probe — the overlap that kills the classifier.
        overlap = float(np.mean(uncached < np.percentile(cached, 75)))
        assert overlap > 0.15

    def test_empty_report(self):
        from repro.measurement.timing_side_channel import TimingSideChannelReport

        assert TimingSideChannelReport().best_threshold_accuracy() == (0.0, 0.0)
