"""A synthetic ``pool.ntp.org`` population.

The paper's measurements (section VII-A) gathered 2432 pool servers by
querying the country zones repeatedly, probed each with 64 queries at one per
second, and found that roughly 38 % rate-limit (33 % announce it with a
Kiss-o'-Death first).  The population built here reproduces those marginals
as parameters: each synthetic server is a full :class:`~repro.ntp.server.NTPServer`
running on its own simulated host, so the same scanning methodology — and the
same run-time attack — can be executed against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.netsim.addresses import address_range
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator
from repro.ntp.clock import SystemClock
from repro.ntp.server import NTPServer, NTPServerConfig

#: Number of distinct pool servers the paper's country-zone scan gathered.
PAPER_POOL_SIZE = 2432
#: Fraction of pool servers that rate limit (stop responding), section VII-A.
PAPER_RATE_LIMIT_FRACTION = 0.38
#: Fraction of pool servers that send Kiss-o'-Death packets, section VII-A.
PAPER_KOD_FRACTION = 0.33
#: Fraction of pool servers with an open configuration interface, section IV-B2c.
PAPER_OPEN_CONFIG_FRACTION = 0.053


@dataclass
class PoolServerSpec:
    """Ground-truth description of one synthetic pool server."""

    address: str
    rate_limiting: bool
    sends_kod: bool
    open_config: bool
    country_zone: str


@dataclass
class PoolPopulation:
    """The synthetic pool: server objects plus their ground-truth specs."""

    specs: list[PoolServerSpec] = field(default_factory=list)
    servers: dict[str, NTPServer] = field(default_factory=dict)

    @property
    def addresses(self) -> list[str]:
        """All pool server addresses."""
        return [spec.address for spec in self.specs]

    def rate_limiting_fraction(self) -> float:
        """Ground-truth fraction of servers that rate limit."""
        if not self.specs:
            return 0.0
        return sum(spec.rate_limiting for spec in self.specs) / len(self.specs)

    def kod_fraction(self) -> float:
        """Ground-truth fraction of servers that send KoD packets."""
        if not self.specs:
            return 0.0
        return sum(spec.sends_kod for spec in self.specs) / len(self.specs)

    def open_config_fraction(self) -> float:
        """Ground-truth fraction of servers answering configuration queries."""
        if not self.specs:
            return 0.0
        return sum(spec.open_config for spec in self.specs) / len(self.specs)

    def spec_for(self, address: str) -> Optional[PoolServerSpec]:
        """Ground truth for one address."""
        for spec in self.specs:
            if spec.address == address:
                return spec
        return None


#: Country zones used to label the synthetic servers (shape only).
_COUNTRY_ZONES = ["de", "us", "fr", "gb", "nl", "jp", "br", "au", "in", "se"]


def build_pool_population(
    simulator: Simulator,
    network: Network,
    size: int = 256,
    rate_limit_fraction: float = PAPER_RATE_LIMIT_FRACTION,
    kod_fraction: float = PAPER_KOD_FRACTION,
    open_config_fraction: float = PAPER_OPEN_CONFIG_FRACTION,
    base_address: str = "203.0.113.1",
    instantiate_servers: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> PoolPopulation:
    """Create a synthetic pool population.

    ``size`` defaults to a few hundred servers for unit tests; the
    measurement benchmarks use the paper's 2432.  ``instantiate_servers``
    can be disabled when only the ground-truth specs are needed (e.g. the
    purely analytic probability experiments).

    Servers that send KoD are a subset of the rate-limiting servers, as in
    the paper (a KoD is the announcement that rate limiting is imminent).
    """
    rng = rng or simulator.spawn_rng()
    addresses = address_range(base_address, size)
    rate_limit_count = int(round(size * rate_limit_fraction))
    kod_count = min(int(round(size * kod_fraction)), rate_limit_count)
    open_config_count = int(round(size * open_config_fraction))

    limiter_indices = set(
        int(i) for i in rng.choice(size, size=rate_limit_count, replace=False)
    )
    kod_indices = set(
        int(i)
        for i in rng.choice(sorted(limiter_indices), size=kod_count, replace=False)
    ) if rate_limit_count else set()
    open_config_indices = set(
        int(i) for i in rng.choice(size, size=open_config_count, replace=False)
    ) if open_config_count else set()

    population = PoolPopulation()
    for index, address in enumerate(addresses):
        spec = PoolServerSpec(
            address=address,
            rate_limiting=index in limiter_indices,
            sends_kod=index in kod_indices,
            open_config=index in open_config_indices,
            country_zone=_COUNTRY_ZONES[index % len(_COUNTRY_ZONES)],
        )
        population.specs.append(spec)
        if not instantiate_servers:
            continue
        host = network.add_host(f"pool-{index}", address)
        clock = SystemClock(
            offset=float(rng.normal(0.0, 0.005)), created_at=simulator.now
        )
        config = NTPServerConfig(
            stratum=2,
            rate_limiting=spec.rate_limiting,
            send_kod=spec.sends_kod,
            open_config_interface=spec.open_config,
            upstream_server="198.51.100.200",
        )
        population.servers[address] = NTPServer(
            host, simulator, clock=clock, config=config, name=f"pool-{index}"
        )
    return population


def country_zone_names(origin: str = "pool.ntp.org") -> list[str]:
    """The country-zone query names used by the pool scan of section VII-A."""
    return [f"{zone}.{origin}" for zone in _COUNTRY_ZONES]
