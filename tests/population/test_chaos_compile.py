"""The chaos compiler is pure: (plan, size, seed) → labels + schedules."""

from __future__ import annotations

from repro.netsim.faults import FaultSchedule, GilbertElliott, Partition
from repro.population.chaos import (
    CampaignHorizon,
    ChaosPhase,
    ChaosPlan,
    CorrelationGroup,
    assign_groups,
    compile_chaos,
)
from repro.population.spec import FaultRegimeSpec


def two_group_plan(**horizon) -> ChaosPlan:
    return ChaosPlan(
        groups=(CorrelationGroup("east", 0.5), CorrelationGroup("west", 0.5)),
        regimes=(FaultRegimeSpec("blackout", kind="partition"),),
        phases=(
            ChaosPhase("calm", 900.0),
            ChaosPhase("storm", 600.0, regimes=(("east", "blackout"),)),
        ),
        horizon=CampaignHorizon(**horizon),
    )


class TestAssignGroups:
    def test_no_groups_means_empty_labels(self):
        assert assign_groups(ChaosPlan(), 3, seed=0) == ("", "", "")

    def test_single_group_assigns_without_randomness(self):
        plan = ChaosPlan(groups=(CorrelationGroup("only"),))
        assert assign_groups(plan, 4, seed=0) == ("only",) * 4
        assert assign_groups(plan, 4, seed=99) == ("only",) * 4

    def test_assignment_is_deterministic_per_seed(self):
        plan = two_group_plan()
        first = assign_groups(plan, 64, seed=7)
        assert assign_groups(plan, 64, seed=7) == first
        assert set(first) <= {"east", "west"}
        # Both groups are actually populated at this size.
        assert {"east", "west"} <= set(first)

    def test_different_seeds_differ(self):
        plan = two_group_plan()
        draws = {assign_groups(plan, 32, seed=s) for s in range(4)}
        assert len(draws) > 1


class TestCompile:
    def test_empty_plan_compiles_to_nothing(self):
        compilation = compile_chaos(ChaosPlan(), 8, seed=0)
        assert compilation.is_inert
        assert compilation.schedules == {}
        assert compilation.group_of == ("",) * 8
        assert compilation.checkpoints == ()

    def test_all_clean_phases_collapse_to_no_schedules(self):
        plan = ChaosPlan(
            groups=(CorrelationGroup("east"), CorrelationGroup("west")),
            phases=(ChaosPhase("calm", 100.0), ChaosPhase("still", 100.0)),
        )
        compilation = compile_chaos(plan, 8, seed=0)
        assert compilation.is_inert
        assert compilation.schedules == {}
        # Groups are still assigned — reporting wants the labels even when
        # nothing faults.
        assert set(compilation.group_of) <= {"east", "west"}

    def test_storm_group_gets_swap_and_heal(self):
        plan = two_group_plan()
        compilation = compile_chaos(plan, 32, seed=7)
        east = [
            index
            for index, label in enumerate(compilation.group_of)
            if label == "east"
        ]
        west = [
            index
            for index, label in enumerate(compilation.group_of)
            if label == "west"
        ]
        assert east and west
        # Only the partitioned group carries a schedule at all.
        assert set(compilation.schedules) == set(east)
        schedule = compilation.schedules[east[0]]
        assert isinstance(schedule, FaultSchedule)
        # One swap at the storm start, one heal at its end.
        (swap_time, components), (heal_time, healed) = schedule.entries
        assert swap_time == 900.0
        assert heal_time == 1500.0
        assert healed == ()
        (partition,) = components
        # duration == 0 in the regime means "the rest of the phase",
        # re-anchored onto the absolute clock.
        assert partition == Partition(900.0, 600.0)

    def test_windowed_regime_offset_inside_phase(self):
        plan = ChaosPlan(
            groups=(CorrelationGroup("g"),),
            regimes=(
                FaultRegimeSpec(
                    "mid", kind="partition", start=100.0, duration=50.0
                ),
            ),
            phases=(ChaosPhase("p", 400.0, regimes=(("g", "mid"),)),),
        )
        compilation = compile_chaos(plan, 2, seed=0)
        schedule = compilation.schedules[0]
        (_, components), _heal = schedule.entries
        assert components == (Partition(100.0, 50.0),)

    def test_probabilistic_regime_persists_until_next_swap(self):
        plan = ChaosPlan(
            groups=(CorrelationGroup("g"),),
            regimes=(
                FaultRegimeSpec(
                    "lossy", kind="bursty_loss", probability=0.2, magnitude=0.5
                ),
            ),
            phases=(
                ChaosPhase("bad", 100.0, regimes=(("g", "lossy"),)),
                ChaosPhase("good", 100.0),
            ),
        )
        schedule = compile_chaos(plan, 1, seed=0).schedules[0]
        (start, components), (heal, healed) = schedule.entries
        assert start == 0.0
        assert isinstance(components[0], GilbertElliott)
        assert (heal, healed) == (100.0, ())

    def test_identical_consecutive_states_do_not_reswap(self):
        plan = ChaosPlan(
            groups=(CorrelationGroup("g"),),
            regimes=(
                FaultRegimeSpec("lossy", kind="jitter", probability=0.3),
            ),
            phases=(
                ChaosPhase("one", 50.0, regimes=(("g", "lossy"),)),
                ChaosPhase("two", 50.0, regimes=(("g", "lossy"),)),
            ),
        )
        schedule = compile_chaos(plan, 1, seed=0).schedules[0]
        # A single attach at 0 and a single heal at 100 — no churn at 50.
        assert [time for time, _ in schedule.entries] == [0.0, 100.0]

    def test_compile_is_pure(self):
        plan = two_group_plan(duration=1800.0, checkpoint_every=500.0)
        first = compile_chaos(plan, 16, seed=3)
        second = compile_chaos(plan, 16, seed=3)
        assert first.group_of == second.group_of
        assert first.checkpoints == second.checkpoints == (
            500.0,
            900.0,
            1000.0,
            1500.0,
            1800.0,
        )
        assert set(first.schedules) == set(second.schedules)
        for index in first.schedules:
            assert (
                first.schedules[index].entries
                == second.schedules[index].entries
            )
