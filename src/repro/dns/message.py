"""DNS message encoding and decoding (RFC 1035 wire format).

The poisoning attack replaces the tail of an encoded DNS response on the
wire, so the message layer must produce real bytes: a 12-byte header with the
16-bit transaction ID (TXID) and flags, the question section, and resource
records with name compression.  The TXID and the UDP source port are the two
challenge-response values that force off-path attackers to the fragmentation
technique — both live in the *first* fragment of a fragmented response.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum

from repro.dns.errors import MessageError
from repro.dns.names import decode_name, encode_name, normalize_name
from repro.dns.records import ResourceRecord, RRClass, RRType

DNS_HEADER_LEN = 12

#: Precompiled codecs for the per-message hot path.
_DNS_HEADER = struct.Struct("!HHHHHH")
_QUESTION_FIXED = struct.Struct("!HH")
_RR_FIXED = struct.Struct("!HHIH")
#: Conventional maximum size of a UDP DNS response without EDNS0.
MAX_UDP_PAYLOAD = 512
#: Typical EDNS0 advertised size; responses beyond this are truncated or fragmented.
EDNS_UDP_PAYLOAD = 4096


class ResponseCode(IntEnum):
    """DNS response codes."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


@dataclass
class DNSHeaderFlags:
    """The header flag bits the reproduction uses."""

    qr: bool = False  # response flag
    aa: bool = False  # authoritative answer
    tc: bool = False  # truncated
    rd: bool = True   # recursion desired
    ra: bool = False  # recursion available
    ad: bool = False  # authenticated data (DNSSEC)
    rcode: ResponseCode = ResponseCode.NOERROR

    def encode(self) -> int:
        value = 0
        if self.qr:
            value |= 1 << 15
        if self.aa:
            value |= 1 << 10
        if self.tc:
            value |= 1 << 9
        if self.rd:
            value |= 1 << 8
        if self.ra:
            value |= 1 << 7
        if self.ad:
            value |= 1 << 5
        value |= int(self.rcode) & 0xF
        return value

    @classmethod
    def decode(cls, value: int) -> "DNSHeaderFlags":
        return cls(
            qr=bool(value & (1 << 15)),
            aa=bool(value & (1 << 10)),
            tc=bool(value & (1 << 9)),
            rd=bool(value & (1 << 8)),
            ra=bool(value & (1 << 7)),
            ad=bool(value & (1 << 5)),
            rcode=ResponseCode(value & 0xF),
        )


@dataclass
class DNSQuestion:
    """A question section entry."""

    name: str
    rtype: RRType = RRType.A
    rclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        self.name = normalize_name(self.name)

    @property
    def key(self) -> tuple[str, RRType]:
        """Cache key for the question: (name, type)."""
        return (self.name, self.rtype)


@dataclass
class DNSMessage:
    """A complete DNS message."""

    txid: int = 0
    flags: DNSHeaderFlags = field(default_factory=DNSHeaderFlags)
    questions: list[DNSQuestion] = field(default_factory=list)
    answers: list[ResourceRecord] = field(default_factory=list)
    authority: list[ResourceRecord] = field(default_factory=list)
    additional: list[ResourceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0 <= self.txid <= 0xFFFF:
            raise MessageError(f"TXID out of range: {self.txid}")

    # ------------------------------------------------------------ factories
    @classmethod
    def query(cls, name: str, rtype: RRType = RRType.A, txid: int = 0, rd: bool = True) -> "DNSMessage":
        """Build a query message for ``name``/``rtype``."""
        return cls(
            txid=txid,
            flags=DNSHeaderFlags(qr=False, rd=rd),
            questions=[DNSQuestion(name=name, rtype=rtype)],
        )

    def make_response(
        self,
        answers: list[ResourceRecord] | None = None,
        rcode: ResponseCode = ResponseCode.NOERROR,
        authoritative: bool = True,
        recursion_available: bool = False,
        authenticated: bool = False,
    ) -> "DNSMessage":
        """Build a response to this query, echoing TXID and question."""
        return DNSMessage(
            txid=self.txid,
            flags=DNSHeaderFlags(
                qr=True,
                aa=authoritative,
                rd=self.flags.rd,
                ra=recursion_available,
                ad=authenticated,
                rcode=rcode,
            ),
            questions=list(self.questions),
            answers=list(answers or []),
        )

    # ------------------------------------------------------------ properties
    @property
    def is_response(self) -> bool:
        """True for responses (QR bit set)."""
        return self.flags.qr

    @property
    def question(self) -> DNSQuestion:
        """The first (and in practice only) question."""
        if not self.questions:
            raise MessageError("message has no question")
        return self.questions[0]

    def records(self) -> list[ResourceRecord]:
        """All records across the answer, authority and additional sections."""
        return list(self.answers) + list(self.authority) + list(self.additional)

    def wire_cache_key(self) -> tuple | None:
        """A hashable key identifying this message's wire form modulo TXID.

        Two messages with equal keys encode to identical bytes except for
        the leading 2-byte transaction ID, which lets servers cache the
        encoded body and prepend a fresh TXID per query (see
        :meth:`repro.dns.nameserver.AuthoritativeNameserver.encode_response`).
        Returns ``None`` when a record's data is not hashable, in which case
        callers must encode normally.
        """
        key = (
            self.flags.encode(),
            tuple((q.name, int(q.rtype), int(q.rclass)) for q in self.questions),
            tuple(
                (r.name, int(r.rtype), int(r.rclass), r.ttl, r.data)
                for r in self.answers
            ),
            tuple(
                (r.name, int(r.rtype), int(r.rclass), r.ttl, r.data)
                for r in self.authority
            ),
            tuple(
                (r.name, int(r.rtype), int(r.rclass), r.ttl, r.data)
                for r in self.additional
            ),
        )
        try:
            hash(key)
        except TypeError:
            return None
        return key

    # -------------------------------------------------------------- encoding
    def encode(self) -> bytes:
        """Encode to wire bytes with name compression."""
        header = _DNS_HEADER.pack(
            self.txid,
            self.flags.encode(),
            len(self.questions),
            len(self.answers),
            len(self.authority),
            len(self.additional),
        )
        body = bytearray()
        compression: dict[str, int] = {}
        for question in self.questions:
            body += encode_name(question.name, compression, DNS_HEADER_LEN + len(body))
            body += _QUESTION_FIXED.pack(int(question.rtype), int(question.rclass))
        for record in self.records():
            body += encode_name(record.name, compression, DNS_HEADER_LEN + len(body))
            rdata_offset = DNS_HEADER_LEN + len(body) + 10
            rdata = record.encode_rdata(compression, rdata_offset)
            body += _RR_FIXED.pack(
                int(record.rtype), int(record.rclass), record.ttl, len(rdata)
            )
            body += rdata
        return header + bytes(body)

    @classmethod
    def decode(cls, data: bytes) -> "DNSMessage":
        """Decode wire bytes into a message."""
        if len(data) < DNS_HEADER_LEN:
            raise MessageError("truncated DNS header")
        txid, flags_value, qdcount, ancount, nscount, arcount = _DNS_HEADER.unpack(
            data[:DNS_HEADER_LEN]
        )
        message = cls(txid=txid, flags=DNSHeaderFlags.decode(flags_value))
        cursor = DNS_HEADER_LEN
        for _ in range(qdcount):
            name, cursor = decode_name(data, cursor)
            if cursor + 4 > len(data):
                raise MessageError("truncated question")
            rtype, rclass = _QUESTION_FIXED.unpack(data[cursor : cursor + 4])
            cursor += 4
            message.questions.append(
                DNSQuestion(name=name, rtype=RRType(rtype), rclass=RRClass(rclass))
            )
        sections = (
            (ancount, message.answers),
            (nscount, message.authority),
            (arcount, message.additional),
        )
        for count, section in sections:
            for _ in range(count):
                record, cursor = cls._decode_record(data, cursor)
                section.append(record)
        return message

    @staticmethod
    def _decode_record(data: bytes, cursor: int) -> tuple[ResourceRecord, int]:
        name, cursor = decode_name(data, cursor)
        if cursor + 10 > len(data):
            raise MessageError("truncated resource record")
        rtype, rclass, ttl, rdlength = _RR_FIXED.unpack(data[cursor : cursor + 10])
        cursor += 10
        rdata = data[cursor : cursor + rdlength]
        if len(rdata) != rdlength:
            raise MessageError("truncated rdata")
        decoded = ResourceRecord.decode_rdata(RRType(rtype), rdata, data, cursor)
        cursor += rdlength
        record = ResourceRecord(
            name=name,
            rtype=RRType(rtype),
            ttl=ttl,
            data=decoded,
            rclass=RRClass(rclass),
        )
        return record, cursor


@dataclass
class RecordOffsets:
    """Byte offsets of one resource record inside an encoded message.

    Used by the fragment-replacement attack to locate, within the raw wire
    bytes, the fields it may rewrite (the rdata of A records) and the fields
    it may sacrifice to fix the UDP checksum (the low half of a TTL).
    """

    section: str
    index: int
    name_offset: int
    type_offset: int
    ttl_offset: int
    rdlength_offset: int
    rdata_offset: int
    rdlength: int
    rtype: RRType

    @property
    def ttl_low_offset(self) -> int:
        """Offset of the low 16 bits of the TTL field."""
        return self.ttl_offset + 2

    @property
    def end_offset(self) -> int:
        """Offset just past this record."""
        return self.rdata_offset + self.rdlength


def record_offsets(data: bytes) -> list[RecordOffsets]:
    """Walk an encoded DNS message and report each record's field offsets."""
    if len(data) < DNS_HEADER_LEN:
        raise MessageError("truncated DNS header")
    _txid, _flags, qdcount, ancount, nscount, arcount = _DNS_HEADER.unpack(
        data[:DNS_HEADER_LEN]
    )
    cursor = DNS_HEADER_LEN
    for _ in range(qdcount):
        _name, cursor = decode_name(data, cursor)
        if cursor + 4 > len(data):
            raise MessageError("truncated question")
        cursor += 4
    offsets: list[RecordOffsets] = []
    for section, count in (("answer", ancount), ("authority", nscount), ("additional", arcount)):
        for index in range(count):
            name_offset = cursor
            _name, cursor = decode_name(data, cursor)
            if cursor + 10 > len(data):
                raise MessageError("truncated resource record")
            rtype, _rclass, _ttl, rdlength = _RR_FIXED.unpack(
                data[cursor : cursor + 10]
            )
            if cursor + 10 + rdlength > len(data):
                raise MessageError("truncated rdata")
            offsets.append(
                RecordOffsets(
                    section=section,
                    index=index,
                    name_offset=name_offset,
                    type_offset=cursor,
                    ttl_offset=cursor + 4,
                    rdlength_offset=cursor + 8,
                    rdata_offset=cursor + 10,
                    rdlength=rdlength,
                    rtype=RRType(rtype),
                )
            )
            cursor += 10 + rdlength
    return offsets


def max_a_records_in_udp_response(
    name: str = "pool.ntp.org", payload_limit: int = MAX_UDP_PAYLOAD
) -> int:
    """How many A records for ``name`` fit in an unfragmented UDP response.

    The paper states an attacker can fit "up to 89" addresses in a single
    non-fragmented UDP response to a ``pool.ntp.org`` query (section VI-C).
    With name compression each additional A record costs 16 bytes (2-byte
    compression pointer + 10 bytes of fixed fields + 4 bytes of address), so
    this helper computes the exact bound for any name and payload limit.
    """
    base = len(DNSMessage.query(name).encode())
    per_record = 2 + 10 + 4
    return max(0, (payload_limit - base) // per_record)
