"""IPv4 fragmentation and reassembly.

Fragmentation happens on the sending host when a packet exceeds the path MTU
recorded for the destination (the attacker lowers this MTU with a spoofed
ICMP "fragmentation needed" message).  Reassembly happens in the receiving
host's :class:`~repro.netsim.defrag.DefragmentationCache`.

The functions here are pure: they take and return :class:`IPv4Packet`
objects, and the fragment payload boundaries follow the wire rules (all
fragments except the last carry a multiple of 8 payload bytes).
"""

from __future__ import annotations

from repro.netsim.errors import FragmentationError
from repro.netsim.packet import IPV4_HEADER_LEN, IPv4Packet

#: The absolute minimum MTU the paper's predecessor attack relied upon.
MINIMUM_IPV4_MTU = 68


def fragment_packet(packet: IPv4Packet, mtu: int) -> list[IPv4Packet]:
    """Split ``packet`` into fragments that fit within ``mtu`` bytes each.

    Returns a list with a single element (the original packet) when no
    fragmentation is needed.  Raises :class:`FragmentationError` when the
    packet needs fragmenting but carries the DF bit, or when the MTU is too
    small to make progress.
    """
    if mtu < MINIMUM_IPV4_MTU:
        raise FragmentationError(f"MTU {mtu} below IPv4 minimum {MINIMUM_IPV4_MTU}")
    if packet.total_length <= mtu:
        return [packet]
    if packet.dont_fragment:
        raise FragmentationError("packet needs fragmenting but DF is set")

    max_payload = (mtu - IPV4_HEADER_LEN) & ~0x7  # multiple of 8 bytes
    if max_payload <= 0:
        raise FragmentationError(f"MTU {mtu} leaves no room for payload")

    fragments: list[IPv4Packet] = []
    payload = packet.payload
    offset_units = packet.fragment_offset
    position = 0
    while position < len(payload):
        chunk = payload[position : position + max_payload]
        is_last = position + len(chunk) >= len(payload)
        fragments.append(
            packet.copy(
                payload=chunk,
                fragment_offset=offset_units + position // 8,
                more_fragments=packet.more_fragments or not is_last,
            )
        )
        position += len(chunk)
    return fragments


def reassemble_fragments(fragments: list[IPv4Packet]) -> IPv4Packet:
    """Reassemble a complete set of fragments into the original packet.

    The fragments must share the same reassembly key, cover a contiguous
    byte range starting at offset zero, and include a final fragment with the
    MF flag clear.  Overlapping fragments are resolved "first fragment wins"
    for the overlapping region, which matches the behaviour the defrag cache
    exposes to the poisoning attack (the genuine first fragment always
    provides the transport header).
    """
    if not fragments:
        raise FragmentationError("no fragments to reassemble")
    key = fragments[0].fragment_key
    for fragment in fragments:
        if fragment.fragment_key != key:
            raise FragmentationError("fragments do not share a reassembly key")

    ordered = sorted(fragments, key=lambda f: f.fragment_offset)
    if ordered[0].fragment_offset != 0:
        raise FragmentationError("missing first fragment")
    if ordered[-1].more_fragments:
        raise FragmentationError("missing last fragment")

    payload = bytearray()
    expected_offset = 0
    for fragment in ordered:
        start = fragment.fragment_offset * 8
        if start > expected_offset:
            raise FragmentationError(
                f"hole in fragment train at byte {expected_offset}"
            )
        if start < expected_offset:
            # Overlap: keep the earlier data, append only the new tail.
            overlap = expected_offset - start
            if overlap >= len(fragment.payload):
                continue
            payload.extend(fragment.payload[overlap:])
        else:
            payload.extend(fragment.payload)
        expected_offset = max(expected_offset, start + len(fragment.payload))

    template = ordered[0]
    return template.copy(
        payload=bytes(payload),
        more_fragments=False,
        fragment_offset=0,
    )


def fragments_complete(fragments: list[IPv4Packet]) -> bool:
    """Return True when ``fragments`` form a gap-free train with a last fragment."""
    if not fragments:
        return False
    ordered = sorted(fragments, key=lambda f: f.fragment_offset)
    if ordered[0].fragment_offset != 0 or ordered[-1].more_fragments:
        return False
    covered = 0
    for fragment in ordered:
        start = fragment.fragment_offset * 8
        if start > covered:
            return False
        covered = max(covered, start + len(fragment.payload))
    return True
