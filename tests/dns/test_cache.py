"""Tests for the resolver cache (TTL semantics, snooping observables)."""

from repro.dns.cache import DNSCache
from repro.dns.records import RRType, a_record, ns_record


class TestStoreAndLookup:
    def test_miss_on_empty_cache(self):
        cache = DNSCache()
        assert cache.lookup("pool.ntp.org", RRType.A, now=0.0) is None
        assert cache.misses == 1

    def test_hit_returns_records(self):
        cache = DNSCache()
        cache.store([a_record("pool.ntp.org", "1.1.1.1", ttl=150)], now=0.0)
        records = cache.lookup("pool.ntp.org", RRType.A, now=10.0)
        assert records is not None and str(records[0].data) == "1.1.1.1"
        assert cache.hits == 1

    def test_rrset_grouped_by_name_and_type(self):
        cache = DNSCache()
        cache.store(
            [
                a_record("pool.ntp.org", "1.1.1.1", ttl=150),
                a_record("pool.ntp.org", "2.2.2.2", ttl=150),
                ns_record("pool.ntp.org", "ns1.pool.ntp.org"),
            ],
            now=0.0,
        )
        a_records = cache.lookup("pool.ntp.org", RRType.A, now=1.0)
        assert len(a_records) == 2
        assert cache.lookup("pool.ntp.org", RRType.NS, now=1.0) is not None

    def test_later_store_overwrites(self):
        """Poisoned records replace the honest ones for the same key."""
        cache = DNSCache()
        cache.store([a_record("pool.ntp.org", "1.1.1.1", ttl=150)], now=0.0)
        cache.store([a_record("pool.ntp.org", "6.6.6.6", ttl=86400)], now=10.0)
        records = cache.lookup("pool.ntp.org", RRType.A, now=20.0)
        assert [str(r.data) for r in records] == ["6.6.6.6"]

    def test_case_insensitive_lookup(self):
        cache = DNSCache()
        cache.store([a_record("pool.ntp.org", "1.1.1.1", ttl=150)], now=0.0)
        assert cache.lookup("POOL.NTP.ORG", RRType.A, now=1.0) is not None


class TestTTL:
    def test_remaining_ttl_decrements(self):
        cache = DNSCache()
        cache.store([a_record("pool.ntp.org", "1.1.1.1", ttl=150)], now=0.0)
        records = cache.lookup("pool.ntp.org", RRType.A, now=100.0)
        assert records[0].ttl == 50
        assert cache.remaining_ttl("pool.ntp.org", RRType.A, now=100.0) == 50.0

    def test_expiry(self):
        cache = DNSCache()
        cache.store([a_record("pool.ntp.org", "1.1.1.1", ttl=150)], now=0.0)
        assert cache.lookup("pool.ntp.org", RRType.A, now=151.0) is None
        assert cache.remaining_ttl("pool.ntp.org", RRType.A, now=151.0) is None

    def test_contains_does_not_count_hit(self):
        cache = DNSCache()
        cache.store([a_record("pool.ntp.org", "1.1.1.1", ttl=150)], now=0.0)
        assert cache.contains("pool.ntp.org", RRType.A, now=1.0)
        assert cache.hits == 0

    def test_max_ttl_cap(self):
        cache = DNSCache(max_ttl=3600)
        cache.store([a_record("pool.ntp.org", "6.6.6.6", ttl=10**6)], now=0.0)
        assert cache.lookup("pool.ntp.org", RRType.A, now=3601.0) is None

    def test_long_ttl_poisoning_survives_24_hours(self):
        """The property the Chronos attack depends on."""
        cache = DNSCache()
        cache.store([a_record("pool.ntp.org", "6.6.6.6", ttl=48 * 3600)], now=0.0)
        assert cache.lookup("pool.ntp.org", RRType.A, now=24 * 3600.0) is not None


class TestEviction:
    def test_evict(self):
        cache = DNSCache()
        cache.store([a_record("pool.ntp.org", "1.1.1.1", ttl=150)], now=0.0)
        assert cache.evict("pool.ntp.org", RRType.A)
        assert not cache.evict("pool.ntp.org", RRType.A)
        assert cache.lookup("pool.ntp.org", RRType.A, now=1.0) is None

    def test_flush(self):
        cache = DNSCache()
        cache.store([a_record("a.example", "1.1.1.1"), a_record("b.example", "2.2.2.2")], now=0.0)
        cache.flush()
        assert cache.size() == 0
