"""Domain-name handling: normalisation and wire encoding with compression.

Names are stored as lower-case strings without a trailing dot
(``"pool.ntp.org"``).  Wire encoding follows RFC 1035 section 3.1 with
compression pointers, because compression determines how many records fit in
an unfragmented response — the quantity that bounds the Chronos attack.
"""

from __future__ import annotations

from functools import lru_cache

from repro.dns.errors import NameError_

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 253


@lru_cache(maxsize=65536)
def normalize_name(name: str) -> str:
    """Normalise a domain name: lower-case, no trailing dot, validated.

    Cached: the simulator normalises the same handful of names (questions,
    zone lookups, cache keys) on every query, and normalisation is a pure
    function of the input string.
    """
    name = name.strip().lower().rstrip(".")
    if name == "":
        return ""
    if len(name) > MAX_NAME_LENGTH:
        raise NameError_(f"name too long: {len(name)} characters")
    for label in name.split("."):
        if not label:
            raise NameError_(f"empty label in {name!r}")
        if len(label) > MAX_LABEL_LENGTH:
            raise NameError_(f"label too long in {name!r}")
    return name


def name_in_zone(name: str, zone: str) -> bool:
    """True when ``name`` equals or is a subdomain of ``zone``.

    This is the bailiwick check resolvers apply to records in responses:
    records for names outside the queried zone are discarded, which is why
    the attacker poisons the ``pool.ntp.org`` response itself rather than
    smuggling unrelated records.
    """
    name = normalize_name(name)
    zone = normalize_name(zone)
    if zone == "":
        return True
    return name == zone or name.endswith("." + zone)


def parent_zones(name: str) -> list[str]:
    """All enclosing zones of ``name``, from most to least specific."""
    name = normalize_name(name)
    if not name:
        return [""]
    labels = name.split(".")
    return [".".join(labels[i:]) for i in range(1, len(labels))] + [""]


@lru_cache(maxsize=65536)
def _wire_parts(name: str) -> tuple[tuple[str, bytes], ...]:
    """Per-label wire fragments of an already-normalised name.

    Returns ``((suffix, length_prefixed_label_bytes), ...)`` so encode_name
    does not re-split, re-join and re-encode the same name on every call —
    only the (per-message) compression bookkeeping remains dynamic.
    """
    labels = name.split(".")
    parts = []
    for index, label in enumerate(labels):
        suffix = ".".join(labels[index:])
        encoded = label.encode("ascii")
        parts.append((suffix, bytes([len(encoded)]) + encoded))
    return tuple(parts)


@lru_cache(maxsize=65536)
def _uncompressed_wire(name: str) -> bytes:
    """The full uncompressed wire encoding of an already-normalised name."""
    return b"".join(part for _suffix, part in _wire_parts(name)) + b"\x00"


def encode_name(name: str, compression: dict[str, int] | None = None, offset: int = 0) -> bytes:
    """Encode ``name`` in wire format, using/updating a compression map.

    ``compression`` maps already-emitted names (suffixes) to their offsets in
    the message; ``offset`` is the position at which this name will be
    written.  Passing ``None`` disables compression.
    """
    name = normalize_name(name)
    if name == "":
        return b"\x00"
    if compression is None:
        return _uncompressed_wire(name)
    encoded = bytearray()
    for suffix, label_bytes in _wire_parts(name):
        if suffix in compression:
            pointer = compression[suffix]
            encoded += bytes([0xC0 | (pointer >> 8), pointer & 0xFF])
            return bytes(encoded)
        if offset + len(encoded) < 0x3FFF:
            compression[suffix] = offset + len(encoded)
        encoded += label_bytes
    encoded += b"\x00"
    return bytes(encoded)


# --------------------------------------------------------------- interning
#: Bound on the decode-side intern tables; attacker sweeps can synthesise
#: unboundedly many names, so the tables are cleared when full rather than
#: growing without limit (same policy as the nameserver's encode cache).
INTERN_MAX_ENTRIES = 65536

#: Wire label bytes -> decoded label string.
_LABEL_INTERN: dict[bytes, str] = {}
#: Decoded name -> canonical string object.  Shared with the encode-side
#: memos in spirit: returning the *same* ``str`` object for every decode of
#: a recurring name means the ``lru_cache`` lookups in ``normalize_name`` /
#: ``_wire_parts`` hash each distinct name once and then compare by pointer.
_NAME_INTERN: dict[str, str] = {}


def intern_name(name: str) -> str:
    """Return the canonical shared object for ``name`` (bounded table)."""
    cached = _NAME_INTERN.get(name)
    if cached is not None:
        return cached
    if len(_NAME_INTERN) >= INTERN_MAX_ENTRIES:
        _NAME_INTERN.clear()
    _NAME_INTERN[name] = name
    return name


def _intern_label(raw: bytes) -> str:
    label = _LABEL_INTERN.get(raw)
    if label is None:
        label = raw.decode("ascii")
        if len(_LABEL_INTERN) >= INTERN_MAX_ENTRIES:
            _LABEL_INTERN.clear()
        _LABEL_INTERN[raw] = label
    return label


def decode_name(data: bytes, offset: int) -> tuple[str, int]:
    """Decode a (possibly compressed) name starting at ``offset``.

    Returns ``(name, next_offset)`` where ``next_offset`` is the offset just
    past the name *as it appears at ``offset``* (pointers do not advance the
    cursor past their two bytes).

    Decoded labels and the joined name are interned in bounded tables, so
    repeated decodes of the same name (every query/response in a scenario
    names the same handful of zones) return the same string object without
    re-running the per-label ASCII decode and join.
    """
    labels: list[str] = []
    cursor = offset
    jumped = False
    next_offset = offset
    guard = 0
    size = len(data)
    while True:
        guard += 1
        if guard > 256:
            raise NameError_("compression pointer loop")
        if cursor >= size:
            raise NameError_("truncated name")
        length = data[cursor]
        if length & 0xC0 == 0xC0:
            if cursor + 1 >= size:
                raise NameError_("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[cursor + 1]
            if not jumped:
                next_offset = cursor + 2
                jumped = True
            cursor = pointer
            continue
        if length == 0:
            if not jumped:
                next_offset = cursor + 1
            break
        end = cursor + 1 + length
        if end > size:
            raise NameError_("truncated label")
        labels.append(_intern_label(data[cursor + 1 : end]))
        cursor = end
        if not jumped:
            next_offset = cursor
    if not labels:
        return "", next_offset
    if len(labels) == 1:
        return labels[0], next_offset
    return intern_name(".".join(labels)), next_offset


def skip_name(data: bytes, offset: int) -> int:
    """Validate a wire name's structure and return the offset just past it.

    The structural twin of :func:`decode_name`: same traversal, same error
    behaviour for truncated names/pointers and pointer loops, but no string
    is built.  The lazy message decoder uses it to validate record framing
    eagerly while deferring name materialisation.
    """
    cursor = offset
    jumped = False
    next_offset = offset
    guard = 0
    size = len(data)
    while True:
        guard += 1
        if guard > 256:
            raise NameError_("compression pointer loop")
        if cursor >= size:
            raise NameError_("truncated name")
        length = data[cursor]
        if length & 0xC0 == 0xC0:
            if cursor + 1 >= size:
                raise NameError_("truncated compression pointer")
            if not jumped:
                next_offset = cursor + 2
                jumped = True
            cursor = ((length & 0x3F) << 8) | data[cursor + 1]
            continue
        if length == 0:
            if not jumped:
                next_offset = cursor + 1
            return next_offset
        cursor += 1 + length
        if cursor > size:
            raise NameError_("truncated label")
        if not jumped:
            next_offset = cursor
