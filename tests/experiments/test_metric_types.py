"""Metric-type registry and the direction-aware regression gate."""

from __future__ import annotations

import os
import sys

import pytest

from repro.experiments.store import (
    METRIC_TYPES,
    MetricType,
    metric_type,
    register_metric,
)

BENCHMARKS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
)
sys.path.insert(0, BENCHMARKS_DIR)

import check_regression  # noqa: E402
from check_regression import compare, goodness_change, trend_compare  # noqa: E402


@pytest.fixture
def registered(request):
    """Register a metric for one test and clean it up afterwards."""

    def _register(name: str, **kwargs) -> MetricType:
        request.addfinalizer(lambda: METRIC_TYPES.pop(name, None))
        return register_metric(name, **kwargs)

    return _register


class TestMetricTypeRegistry:
    def test_register_and_lookup(self, registered):
        registered("bench.latency_seconds", unit="s", higher_is_better=False)
        found = metric_type("bench.latency_seconds")
        assert found.unit == "s"
        assert found.higher_is_better is False
        assert found.to_document()["higher_is_better"] is False

    def test_unregistered_names_fall_back_to_throughput_semantics(self):
        fallback = metric_type("bench.never_registered")
        assert fallback.higher_is_better is True
        assert fallback.unit == ""

    def test_gated_metrics_are_registered_with_units(self):
        # Importing check_regression registers every gated metric's schema.
        for path in check_regression.THROUGHPUT_METRICS:
            name = ".".join(path)
            assert name in METRIC_TYPES
            assert METRIC_TYPES[name].unit.endswith("/sec")
        clients = metric_type("experiments.population_fleet.result.clients_per_sec")
        assert clients.unit == "clients/sec"


class TestGoodnessChange:
    def test_higher_is_better_keeps_raw_sign(self):
        assert goodness_change("bench.unregistered", 100.0, 80.0) == pytest.approx(
            -0.2
        )

    def test_lower_is_better_flips_sign(self, registered):
        registered("bench.latency_seconds", higher_is_better=False)
        assert goodness_change("bench.latency_seconds", 1.0, 1.5) == pytest.approx(
            -0.5
        )
        assert goodness_change("bench.latency_seconds", 1.0, 0.8) == pytest.approx(
            0.2
        )


class TestDirectionAwareGate:
    def _gate_on(self, monkeypatch, name: str):
        monkeypatch.setattr(
            check_regression, "THROUGHPUT_METRICS", (tuple(name.split(".")),)
        )

    def test_latency_increase_is_a_regression(self, monkeypatch, registered):
        registered("microbenchmarks.fake_latency", unit="s", higher_is_better=False)
        self._gate_on(monkeypatch, "microbenchmarks.fake_latency")
        base = {"microbenchmarks": {"fake_latency": 1.0}}
        slower = {"microbenchmarks": {"fake_latency": 1.5}}
        faster = {"microbenchmarks": {"fake_latency": 0.8}}
        regressions, _ = compare(base, slower)
        assert len(regressions) == 1
        improvements, _ = compare(base, faster)
        assert improvements == []

    def test_trend_gate_flips_direction_too(self, monkeypatch, registered):
        registered("microbenchmarks.fake_latency", unit="s", higher_is_better=False)
        self._gate_on(monkeypatch, "microbenchmarks.fake_latency")
        history = [
            {"metrics": {"microbenchmarks.fake_latency": value}}
            for value in (1.0, 1.02, 0.98, 1.01, 0.99)
        ]
        base = {"microbenchmarks": {"fake_latency": 1.0}}
        slower = {"microbenchmarks": {"fake_latency": 2.0}}
        regressions, _ = trend_compare(base, slower, history)
        assert len(regressions) == 1
        faster = {"microbenchmarks": {"fake_latency": 0.5}}
        regressions, _ = trend_compare(base, faster, history)
        assert regressions == []

    def test_throughput_direction_unchanged(self, monkeypatch):
        self._gate_on(monkeypatch, "microbenchmarks.packets_per_sec")
        base = {"microbenchmarks": {"packets_per_sec": 100.0}}
        regressions, _ = compare(base, {"microbenchmarks": {"packets_per_sec": 70.0}})
        assert len(regressions) == 1
        regressions, _ = compare(base, {"microbenchmarks": {"packets_per_sec": 130.0}})
        assert regressions == []
