"""Table I — attack scenarios for popular NTP clients.

For every client model in the registry the benchmark verifies, by running the
lab scenario rather than by reading an attribute, whether the boot-time and
run-time attacks apply, and prints the table alongside the pool-usage shares
from the Rytilahti et al. study quoted by the paper.
"""

from __future__ import annotations

from repro.core.run_time import RunTimeAttack, RunTimeScenario
from repro.dns.records import a_record
from repro.measurement.report import format_table
from repro.ntp.clients import CLIENT_REGISTRY
from repro.testbed import TestbedConfig, build_testbed

#: Expected Table I content: (pool share, boot-time, run-time).
PAPER_TABLE1 = {
    "ntpd": (0.264, True, True),
    "openntpd": (0.044, True, False),
    "chrony": (0.048, True, True),
    "ntpdate": (0.200, True, False),
    "android": (0.140, True, True),
    "ntpclient": (0.012, True, False),
    "systemd-timesyncd": (None, True, True),
}


def evaluate_boot_time(client_name: str) -> bool:
    """Boot-time applicability: a poisoned resolver redirects the booting client."""
    testbed = build_testbed(TestbedConfig(pool_size=24, seed=sum(ord(c) for c in client_name)))
    client_cls = CLIENT_REGISTRY[client_name]
    config = client_cls.default_config()
    config.pool_domains = ["pool.ntp.org"]
    records = [
        a_record("pool.ntp.org", address, ttl=86400)
        for address in testbed.attacker.redirect_addresses(4)
    ]
    testbed.resolver.cache.store(records, testbed.simulator.now)
    victim = testbed.add_client(client_cls, config=config)
    victim.start()
    testbed.run_for(600)
    return victim.synchronised_to(testbed.attacker.controlled_addresses)


def evaluate_run_time(client_name: str) -> bool:
    """Run-time applicability: association removal leads to a DNS re-query."""
    testbed = build_testbed(TestbedConfig(pool_size=24, seed=1000 + sum(ord(c) for c in client_name)))
    client_cls = CLIENT_REGISTRY[client_name]
    config = client_cls.default_config()
    config.pool_domains = ["pool.ntp.org"]
    config.poll_interval = min(config.poll_interval, 32.0)
    config.unreachable_after = min(config.unreachable_after, 4)
    victim = testbed.add_client(client_cls, config=config)
    victim.start()
    testbed.run_for(400)
    if not victim.started:  # one-shot utilities have already exited
        return False
    attack = RunTimeAttack(
        testbed.attacker,
        testbed.simulator,
        testbed.resolver,
        victim,
        scenario=RunTimeScenario.P1_KNOWN_SERVERS,
        known_server_list=testbed.pool.addresses,
        check_interval=30.0,
        max_duration=3600.0,
    )
    result = attack.run()
    return result.success


def build_table1() -> list[dict]:
    rows = []
    for name, cls in CLIENT_REGISTRY.items():
        rows.append(
            {
                "client": name,
                "pool_share": cls.pool_usage_share,
                "boot_time": evaluate_boot_time(name),
                "run_time": evaluate_run_time(name),
            }
        )
    return rows


def test_table1_attack_scenarios(run_once):
    rows = run_once(build_table1)
    print()
    print(
        format_table(
            ["Client", "pool.ntp.org share", "boot-time", "run-time"],
            [
                [r["client"], "n/a" if r["pool_share"] is None else f"{r['pool_share']*100:.1f}%",
                 r["boot_time"], r["run_time"]]
                for r in rows
            ],
            title="Table I — attack scenarios for popular NTP clients",
        )
    )
    measured = {r["client"]: (r["boot_time"], r["run_time"]) for r in rows}
    for client, (_, boot_expected, run_expected) in PAPER_TABLE1.items():
        assert measured[client][0] == boot_expected, f"boot-time mismatch for {client}"
        assert measured[client][1] == run_expected, f"run-time mismatch for {client}"
    # The run-time-vulnerable clients cover at least 45 % of the pool.
    share = sum(
        CLIENT_REGISTRY[c].pool_usage_share or 0.0
        for c, (_, _, run) in PAPER_TABLE1.items()
        if run
    )
    assert share >= 0.45
