"""Tests for client-side associations."""

from repro.ntp.association import Association, AssociationState


class TestReachability:
    def test_new_association_unreachable_until_first_response(self):
        assoc = Association(server_ip="203.0.113.1")
        assert not assoc.reachable
        assoc.record_success(0.001)
        assert assoc.reachable

    def test_reach_register_shifts(self):
        assoc = Association(server_ip="203.0.113.1")
        assoc.record_success(0.0)
        assert assoc.reach == 1
        assoc.record_success(0.0)
        assert assoc.reach == 3
        assoc.record_failure()
        assert assoc.reach == 6

    def test_eight_failures_empty_the_register(self):
        assoc = Association(server_ip="203.0.113.1")
        assoc.record_success(0.0)
        for _ in range(8):
            assoc.record_failure()
        assert not assoc.reachable
        assert assoc.consecutive_failures == 8

    def test_success_resets_consecutive_failures(self):
        assoc = Association(server_ip="203.0.113.1")
        for _ in range(5):
            assoc.record_failure()
        assoc.record_success(0.0)
        assert assoc.consecutive_failures == 0

    def test_kod_counts_as_failure(self):
        assoc = Association(server_ip="203.0.113.1")
        assoc.record_kod()
        assert assoc.kods_received == 1
        assert assoc.consecutive_failures == 1


class TestStateAndSamples:
    def test_success_reactivates_unreachable(self):
        assoc = Association(server_ip="203.0.113.1", state=AssociationState.UNREACHABLE)
        assoc.record_success(0.0)
        assert assoc.state is AssociationState.ACTIVE

    def test_usable_only_when_active(self):
        assoc = Association(server_ip="203.0.113.1")
        assert assoc.is_usable()
        assoc.state = AssociationState.REMOVED
        assert not assoc.is_usable()

    def test_recent_offset_median(self):
        assoc = Association(server_ip="203.0.113.1")
        for offset in (0.1, 0.2, 100.0, 0.3):
            assoc.record_success(offset)
        assert assoc.recent_offset(samples=4) == (0.2 + 0.3) / 2

    def test_recent_offset_none_without_samples(self):
        assert Association(server_ip="203.0.113.1").recent_offset() is None
