"""Tests for IPID sampling and prediction."""

from repro.core.ipid_prediction import IPIDPredictor
from repro.dns.nameserver import PoolNameserver
from repro.netsim.addresses import address_range
from repro.netsim.ipid import GlobalCounterIPID, RandomIPID
from repro.netsim.network import Network
from repro.netsim.simulator import Simulator


def build_env(ipid_allocator=None):
    sim = Simulator(seed=13)
    net = Network(sim)
    ns_host = net.add_host("ns", "198.51.100.10", ipid_allocator=ipid_allocator or GlobalCounterIPID(start=500))
    PoolNameserver(ns_host, address_range("203.0.113.1", 20), rng=sim.spawn_rng())
    attacker_host = net.add_host("attacker", "66.0.0.1")
    return sim, net, ns_host, attacker_host


class TestPrediction:
    def test_observes_ipids_from_own_queries(self):
        sim, net, ns_host, attacker_host = build_env()
        predictor = IPIDPredictor(attacker_host, sim, "198.51.100.10")
        predictions = []
        predictor.probe(count=4, on_done=predictions.append)
        sim.run()
        assert len(predictor.observations) == 4
        assert predictions and predictions[0].predictable

    def test_prediction_matches_next_response_to_victim(self):
        sim, net, ns_host, attacker_host = build_env()
        predictor = IPIDPredictor(attacker_host, sim, "198.51.100.10")
        predictions = []
        predictor.probe(count=4, on_done=predictions.append)
        sim.run()
        predicted = predictions[0].predicted_next
        # The next packet the nameserver sends (to anyone) uses exactly the
        # predicted IPID, because the counter is global.
        assert ns_host.ipid_allocator.current == predicted

    def test_candidate_window_covers_prediction(self):
        sim, net, ns_host, attacker_host = build_env()
        predictor = IPIDPredictor(attacker_host, sim, "198.51.100.10")
        predictions = []
        predictor.probe(count=3, on_done=predictions.append)
        sim.run()
        candidates = predictions[0].candidates(16)
        assert predictions[0].predicted_next in candidates
        assert len(candidates) == 16

    def test_candidates_wrap_around_16_bits(self):
        sim, net, ns_host, attacker_host = build_env(
            ipid_allocator=GlobalCounterIPID(start=0xFFFE)
        )
        predictor = IPIDPredictor(attacker_host, sim, "198.51.100.10")
        predictions = []
        predictor.probe(count=2, on_done=predictions.append)
        sim.run()
        assert all(0 <= c <= 0xFFFF for c in predictions[0].candidates(8))

    def test_no_observations_means_unpredictable(self):
        sim, net, ns_host, attacker_host = build_env()
        predictor = IPIDPredictor(attacker_host, sim, "198.51.100.10")
        prediction = predictor.prediction()
        assert not prediction.predictable

    def test_random_ipids_not_marked_predictable(self):
        sim, net, ns_host, attacker_host = build_env(ipid_allocator=RandomIPID())
        predictor = IPIDPredictor(attacker_host, sim, "198.51.100.10")
        predictions = []
        predictor.probe(count=6, on_done=predictions.append)
        sim.run()
        # With uniformly random IPIDs the apparent rate is huge/erratic.
        assert not predictions[0].predictable

    def test_only_nameserver_packets_observed(self):
        sim, net, ns_host, attacker_host = build_env()
        other_host = net.add_host("other", "198.51.100.99")
        predictor = IPIDPredictor(attacker_host, sim, "198.51.100.10")
        socket = attacker_host.bind(4000)
        other_socket = other_host.bind(0)
        other_socket.sendto(b"noise", "66.0.0.1", 4000)
        sim.run()
        assert predictor.observations == []
