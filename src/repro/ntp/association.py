"""Client-side associations with NTP servers.

An association tracks one server a client synchronises with: its address,
the 8-bit reachability shift register ntpd made famous, the offset samples it
produced, and how it was configured (statically, from a DNS "pool" directive,
or injected by an attack — the last only as experimenter ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class AssociationState(Enum):
    """Lifecycle of an association."""

    ACTIVE = "active"
    UNREACHABLE = "unreachable"
    REMOVED = "removed"


@dataclass
class Association:
    """One client-server association."""

    server_ip: str
    source_domain: str = ""
    persistent: bool = False
    state: AssociationState = AssociationState.ACTIVE
    reach: int = 0
    consecutive_failures: int = 0
    polls_sent: int = 0
    responses_received: int = 0
    kods_received: int = 0
    last_offset: float | None = None
    offset_samples: list[float] = field(default_factory=list)
    created_at: float = 0.0

    def record_success(self, offset: float) -> None:
        """Register a valid response carrying the measured ``offset``."""
        self.reach = ((self.reach << 1) | 1) & 0xFF
        self.consecutive_failures = 0
        self.responses_received += 1
        self.last_offset = offset
        self.offset_samples.append(offset)
        if self.state is AssociationState.UNREACHABLE:
            self.state = AssociationState.ACTIVE

    def record_failure(self) -> None:
        """Register a poll that went unanswered (or answered with a KoD)."""
        self.reach = (self.reach << 1) & 0xFF
        self.consecutive_failures += 1

    def record_kod(self) -> None:
        """Register a Kiss-o'-Death response."""
        self.kods_received += 1
        self.record_failure()

    @property
    def reachable(self) -> bool:
        """ntpd semantics: reachable while any of the last 8 polls succeeded."""
        return self.reach != 0

    def is_usable(self) -> bool:
        """Whether the client should keep polling / selecting this server."""
        return self.state is AssociationState.ACTIVE

    def recent_offset(self, samples: int = 4) -> float | None:
        """Median of the most recent ``samples`` offsets, if any."""
        recent = self.offset_samples[-samples:]
        if not recent:
            return None
        ordered = sorted(recent)
        middle = len(ordered) // 2
        if len(ordered) % 2 == 1:
            return ordered[middle]
        return (ordered[middle - 1] + ordered[middle]) / 2
