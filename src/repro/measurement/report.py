"""Reporting layer for benchmarks and durable sweep outputs.

Pure formatting: every function takes plain documents (a sweep manifest,
its records, a metric history) and returns text.  Nothing here reads the
filesystem or imports :mod:`repro.experiments.store` — the store's CLI
imports *this* module to render ``report`` output, keeping the layering
acyclic.
"""

from __future__ import annotations

import statistics
from typing import Any, Iterable, Mapping, Optional, Sequence


def format_percentage(value: float, decimals: int = 2) -> str:
    """Render a fraction as a percentage string, e.g. ``0.694 -> '69.40%'``."""
    return f"{value * 100:.{decimals}f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as a fixed-width text table (used by the benchmark output)."""
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _short_error(record: Mapping[str, Any], width: int = 48) -> str:
    error = record.get("error")
    if not error:
        return ""
    text = " ".join(str(error).split())
    return text if len(text) <= width else text[: width - 1] + "…"


def sweep_report(
    manifest: Mapping[str, Any], records: Sequence[Mapping[str, Any]]
) -> str:
    """Render one store sweep (manifest + outcome records) as text.

    Later records for the same spec index win — the same rule the store's
    ``load_outcomes`` applies — so a resumed sweep reports each run once.
    Records without an ``index`` (free-form metric samples) are counted
    but not tabulated.
    """
    by_index: dict[int, Mapping[str, Any]] = {}
    loose = 0
    for record in records:
        index = record.get("index")
        if isinstance(index, int) and not isinstance(index, bool):
            by_index[index] = record
        else:
            loose += 1
    failed = sum(1 for r in by_index.values() if r.get("error"))
    header = [
        f"sweep {manifest.get('sweep_id', '?')} ({manifest.get('name', '?')})",
        f"  status: {manifest.get('status', '?')}"
        f"  created: {manifest.get('created_at', '?')}"
        f"  git: {manifest.get('git_revision') or 'unknown'}",
        f"  runs: {len(by_index)} recorded, {failed} failed"
        + (f", {loose} metric sample(s)" if loose else ""),
    ]
    if not by_index:
        return "\n".join(header)
    rows = []
    for index in sorted(by_index):
        record = by_index[index]
        spec = record.get("spec") or {}
        wall = record.get("wall_time")
        rows.append(
            (
                index,
                spec.get("scenario", "?"),
                "error" if record.get("error") else "ok",
                record.get("error_kind") or "",
                f"{wall:.3f}s" if isinstance(wall, (int, float)) else "",
                _short_error(record),
            )
        )
    table = format_table(
        ("idx", "scenario", "status", "kind", "wall", "error"), rows
    )
    return "\n".join(header) + "\n" + table


def landscape_report(grid: Mapping[str, Any]) -> str:
    """Render a population landscape grid as a success-probability table.

    ``grid`` is the ``landscape-grid`` document produced by
    :func:`repro.population.landscape.sweep_landscape` (also appended to
    the sweep's store records): two named axes plus one cell per (x, y)
    combination.  Rows are y-axis values, columns x-axis values; cells
    show the attack success probability (``err`` for failed cells, ``—``
    for missing ones).
    """
    axis_x = grid.get("axis_x") or {}
    axis_y = grid.get("axis_y") or {}
    x_values = list(axis_x.get("values") or [])
    y_values = list(axis_y.get("values") or [])
    by_xy: dict[tuple[float, float], Mapping[str, Any]] = {}
    for cell in grid.get("cells") or []:
        by_xy[(cell.get("x"), cell.get("y"))] = cell
    headers = [f"{axis_y.get('name', 'y')} \\ {axis_x.get('name', 'x')}"] + [
        f"{x:g}" for x in x_values
    ]
    rows = []
    for y in y_values:
        row: list[object] = [f"{y:g}"]
        for x in x_values:
            cell = by_xy.get((x, y))
            if cell is None:
                row.append("—")
            elif cell.get("error"):
                row.append("err")
            else:
                rate = cell.get("success_rate")
                row.append(
                    format_percentage(rate, 1)
                    if isinstance(rate, (int, float))
                    else "—"
                )
        rows.append(row)
    title = f"landscape {grid.get('name', '')}".strip()
    return format_table(headers, rows, title=title)


def degradation_report(campaign: Mapping[str, Any]) -> str:
    """Render a chaos campaign's per-checkpoint degradation timeline.

    ``campaign`` is the ``chaos-campaign-summary`` document
    :func:`repro.population.chaos.run_chaos_campaign` returns (and appends
    to the sweep's store records).  One row per checkpoint: simulated time,
    covering phase, fleet-wide shift success, cumulative fault drops, and
    one per-group survival column (the group's attack *success* rate — the
    fraction of its clients the attacker still shifted despite the faults)
    per correlation group seen anywhere in the campaign.
    """
    checkpoints = list(campaign.get("checkpoints") or [])
    group_names = sorted(
        {
            name
            for entry in checkpoints
            for name in (entry.get("groups") or {})
        }
    )
    headers = ["t (s)", "phase", "success", "fault drops"] + [
        f"{name} ok" for name in group_names
    ]
    rows = []
    for entry in checkpoints:
        if entry.get("error"):
            rows.append(
                [f"{entry.get('until', 0):g}", "err", "—", "—"]
                + ["—"] * len(group_names)
            )
            continue
        stats = entry.get("fault_stats") or {}
        drops = int(stats.get("dropped_partition", 0)) + int(
            stats.get("dropped_loss", 0)
        )
        rate = entry.get("success_rate")
        row: list[object] = [
            f"{entry.get('until', 0):g}",
            entry.get("phase") or "—",
            format_percentage(rate, 1) if isinstance(rate, (int, float)) else "—",
            drops,
        ]
        groups = entry.get("groups") or {}
        for name in group_names:
            group = groups.get(name)
            group_rate = (group or {}).get("success_rate")
            row.append(
                format_percentage(group_rate, 1)
                if isinstance(group_rate, (int, float))
                else "—"
            )
        rows.append(row)
    title = f"chaos campaign {campaign.get('name', '')}".strip()
    return format_table(headers, rows, title=title)


def trend_report(
    history: Mapping[str, Sequence[float]],
    fresh: Optional[Mapping[str, float]] = None,
) -> str:
    """Summarise per-metric history windows (and optionally a fresh run).

    ``history`` maps metric name → ordered samples (oldest first).  The
    spread column is the population standard deviation as a fraction of
    the median — the quantity the trend-aware regression gate widens its
    noise band by.
    """
    rows = []
    for name in sorted(history):
        values = [float(v) for v in history[name]]
        if not values:
            continue
        median = statistics.median(values)
        spread = (
            statistics.pstdev(values) / median
            if len(values) > 1 and median > 0
            else 0.0
        )
        row = [name, len(values), f"{median:,.0f}", f"{spread:.1%}"]
        if fresh is not None:
            value = fresh.get(name)
            if isinstance(value, (int, float)) and median > 0:
                row.append(f"{value:,.0f} ({(value - median) / median:+.1%})")
            else:
                row.append("—")
        rows.append(row)
    headers = ["metric", "n", "median", "spread"]
    if fresh is not None:
        headers.append("fresh (vs median)")
    return format_table(headers, rows, title="metric history")
