"""The DNS poisoning attack against Chronos (paper section VI-C, Figure 4).

Chronos builds its server pool from 24 hourly DNS lookups; each honest lookup
contributes 4 pool addresses.  The attack needs to control more than two
thirds of the generated pool, and it achieves that with a *single* successful
poisoning:

* the poisoned response carries as many attacker addresses as fit in one
  unfragmented UDP response — up to 89 for ``pool.ntp.org`` — and
* a TTL longer than the remaining generation period, so every subsequent
  hourly lookup is answered from cache with the same attacker records,
  freezing the pool's honest fraction at whatever it was when the poisoning
  landed.

If the poisoning lands after ``N`` honest lookups the pool ends up with
``4N`` honest and 89 attacker addresses; the 2/3 requirement
``2/3 * (89 + 4N) <= 89`` gives ``N <= 11``: the attacker has 12 opportunities
(one per hour) in the 24-hour window, which is *more* chances than a plain
NTP client's single boot-time lookup offers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.attacker import Attacker
from repro.dns.message import DNS_HEADER_LEN, DNSMessage
from repro.dns.records import a_record
from repro.dns.resolver import RecursiveResolver
from repro.netsim.simulator import Simulator
from repro.ntp.chronos.client import ChronosClient
from repro.ntp.chronos.selection import minimum_attacker_fraction_to_shift

#: Addresses the paper states fit into a single non-fragmented UDP response.
PAPER_MAX_ADDRESSES_PER_RESPONSE = 89
#: Addresses per honest pool.ntp.org response.
HONEST_ADDRESSES_PER_LOOKUP = 4
#: Lookups in the Chronos pool-generation period.
TOTAL_POOL_LOOKUPS = 24


def max_addresses_in_response(
    qname: str = "pool.ntp.org",
    mtu: int = 1500,
    edns_opt_size: int = 11,
) -> int:
    """How many A records fit in one unfragmented UDP response.

    With name compression every additional A record costs 16 bytes; the
    response must fit in ``mtu`` minus the IPv4 and UDP headers, and an EDNS0
    OPT record occupies ``edns_opt_size`` bytes of the additional section.
    The defaults give 89, matching the figure quoted in the paper.
    """
    payload_limit = mtu - 20 - 8
    base = len(DNSMessage.query(qname).encode()) + edns_opt_size
    per_record = 2 + 10 + 4
    return max(0, (payload_limit - base) // per_record)


def addresses_needed_to_dominate(honest_lookups_done: int) -> int:
    """Minimum attacker addresses for >2/3 control after ``N`` honest lookups."""
    honest = HONEST_ADDRESSES_PER_LOOKUP * honest_lookups_done
    # Need attacker / (attacker + honest) >= 2/3  =>  attacker >= 2 * honest.
    return 2 * honest


def max_honest_lookups_tolerated(
    injected_addresses: int = PAPER_MAX_ADDRESSES_PER_RESPONSE,
) -> int:
    """The largest ``N`` for which the attack still succeeds (paper: 11)."""
    # 2/3 * (injected + 4N) <= injected  =>  N <= injected / 8.
    return math.floor(injected_addresses / (2 * HONEST_ADDRESSES_PER_LOOKUP))


def attack_windows(injected_addresses: int = PAPER_MAX_ADDRESSES_PER_RESPONSE) -> int:
    """Number of hourly opportunities the attacker has in the 24 h period."""
    return max_honest_lookups_tolerated(injected_addresses) + 1


@dataclass
class ChronosAttackResult:
    """Outcome of one Chronos attack experiment."""

    poisoning_lookup_index: int
    injected_addresses: int
    honest_addresses_in_pool: int
    attacker_addresses_in_pool: int
    attacker_fraction: float
    pool_generation_ended_early: bool
    clock_shift_achieved: float
    target_shift: float

    @property
    def attacker_controls_pool(self) -> bool:
        """True when the attacker crossed Chronos' 2/3 security bound."""
        return self.attacker_fraction > minimum_attacker_fraction_to_shift()

    @property
    def success(self) -> bool:
        """The attack succeeds when the victim's clock reached the target shift."""
        return abs(self.clock_shift_achieved - self.target_shift) <= max(
            1.0, abs(self.target_shift) * 0.1
        )


@dataclass
class ChronosAttack:
    """Poison a Chronos client's pool generation through its DNS resolver."""

    attacker: Attacker
    simulator: Simulator
    resolver: RecursiveResolver
    victim: ChronosClient
    qname: str = "pool.ntp.org"
    injected_addresses: int = PAPER_MAX_ADDRESSES_PER_RESPONSE
    poisoned_ttl: int = 48 * 3600
    _injected: list[str] = field(default_factory=list)

    def poison_after_lookups(self, honest_lookups: int) -> None:
        """Schedule the poisoning to land after ``honest_lookups`` hourly lookups.

        The poisoning itself is modelled as a successful cache injection (the
        fragmentation primitive is evaluated separately); what matters for
        the Chronos analysis is *when* it lands and *how many* addresses and
        how much TTL it carries.
        """
        interval = self.victim.config.pool_generation.lookup_interval
        delay = honest_lookups * interval + interval / 2.0
        self.simulator.schedule(delay, self._inject, label="chronos-poisoning")

    def _inject(self) -> None:
        count = min(self.injected_addresses, len(self.attacker.address_pool))
        addresses = self.attacker.redirect_addresses(count)
        self._injected = addresses
        records = [
            a_record(self.qname, address, ttl=self.poisoned_ttl) for address in addresses
        ]
        self.resolver.cache.store(records, self.simulator.now)
        # Every injected address must answer NTP queries with shifted time,
        # otherwise Chronos would simply ignore the silent servers.
        for address in addresses:
            if address not in self.attacker.ntp_servers:
                self.attacker.add_ntp_server(address)

    def run(
        self,
        poison_after_lookups: int,
        observe_rounds: int = 4,
    ) -> ChronosAttackResult:
        """Run pool generation plus a few Chronos polling rounds and report."""
        self.victim.start()
        self.poison_after_lookups(poison_after_lookups)
        generation = (
            self.victim.config.pool_generation.lookup_interval
            * self.victim.config.pool_generation.total_lookups
        )
        observation = observe_rounds * self.victim.config.poll_interval + 120.0
        self.simulator.run_for(generation + observation)

        pool = self.victim.pool()
        attacker_addresses = pool & self.attacker.controlled_addresses
        honest_addresses = pool - self.attacker.controlled_addresses
        counts = self.victim.pool_generator.state.per_lookup_counts
        # The first lookup after the poisoning pulls the attacker's records
        # into the pool; every later lookup is answered from cache and adds
        # nothing — that is what "the pool-generation process ends early"
        # means in section VI-C.
        ended_early = bool(counts) and all(
            c == 0 for c in counts[poison_after_lookups + 2 :]
        )
        return ChronosAttackResult(
            poisoning_lookup_index=poison_after_lookups,
            injected_addresses=len(self._injected),
            honest_addresses_in_pool=len(honest_addresses),
            attacker_addresses_in_pool=len(attacker_addresses),
            attacker_fraction=self.victim.attacker_fraction(self.attacker.controlled_addresses),
            pool_generation_ended_early=ended_early,
            clock_shift_achieved=self.victim.clock_error(),
            target_shift=self.attacker.resources.time_shift,
        )
