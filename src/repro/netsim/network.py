"""The network fabric: hosts, links, delivery, and off-path injection.

The network delivers IPv4 packets between registered hosts with a per-link
latency and optional loss probability.  Two interfaces matter for the threat
model of the paper:

* :meth:`Network.inject` lets an *off-path* attacker put arbitrary packets —
  including packets with spoofed source addresses — onto the wire.  The
  attacker never receives a :class:`~repro.netsim.capture.PacketCapture`, so
  it cannot observe traffic between the victim resolver and the nameservers;
  everything it knows it must learn by querying the servers itself.
* :meth:`Network.attach_capture` gives tests (and explicit MitM baselines)
  visibility into delivered traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.capture import PacketCapture
from repro.netsim.errors import NoRouteError
from repro.netsim.host import Host, OSProfile
from repro.netsim.ipid import IPIDAllocator
from repro.netsim.packet import IPv4Packet
from repro.netsim.simulator import Simulator


@dataclass
class Link:
    """Delivery parameters between a pair of hosts (symmetric)."""

    latency: float = 0.01
    loss_probability: float = 0.0
    mtu: int = 1500


#: Bound on the per-(src, dst) link-resolution cache; src is attacker
#: controlled (spoofed), so the cache is cleared wholesale when full.
LINK_CACHE_MAX_ENTRIES = 65536


class Network:
    """A set of hosts plus the rules for moving packets between them."""

    def __init__(
        self,
        simulator: Simulator,
        default_latency: float = 0.01,
        default_loss: float = 0.0,
    ) -> None:
        self.simulator = simulator
        self.default_link = Link(latency=default_latency, loss_probability=default_loss)
        self._hosts: dict[str, Host] = {}
        self._links: dict[frozenset[str], Link] = {}
        #: Per-(src, dst) resolution cache for link_between; invalidated by
        #: set_link.  Avoids building a frozenset per delivered packet.
        #: Bounded (clear-on-full, like the intern tables): src is whatever
        #: the sender claims, so spoofing sweeps must not grow it unbounded.
        self._link_cache: dict[tuple[str, str], Link] = {}
        self._captures: list[PacketCapture] = []
        self._rng = simulator.spawn_rng()
        self.packets_transmitted = 0
        self.packets_dropped = 0

    # ---------------------------------------------------------------- hosts
    def add_host(
        self,
        name: str,
        ip: str,
        profile: Optional[OSProfile] = None,
        ipid_allocator: Optional[IPIDAllocator] = None,
        interface_mtu: int = 1500,
    ) -> Host:
        """Create a host, register it under its IP address, and return it."""
        if ip in self._hosts:
            raise NoRouteError(f"address {ip} already registered")
        host = Host(
            name=name,
            ip=ip,
            network=self,
            profile=profile,
            ipid_allocator=ipid_allocator,
            interface_mtu=interface_mtu,
        )
        self._hosts[ip] = host
        return host

    def host(self, ip: str) -> Host:
        """Look up the host registered at ``ip``."""
        if ip not in self._hosts:
            raise NoRouteError(f"no host at {ip}")
        return self._hosts[ip]

    def has_host(self, ip: str) -> bool:
        """True when a host is registered at ``ip``."""
        return ip in self._hosts

    def hosts(self) -> list[Host]:
        """All registered hosts."""
        return list(self._hosts.values())

    # ---------------------------------------------------------------- links
    def set_link(self, ip_a: str, ip_b: str, link: Link) -> None:
        """Override delivery parameters between two addresses."""
        self._links[frozenset((ip_a, ip_b))] = link
        self._link_cache.clear()

    def link_between(self, ip_a: str, ip_b: str) -> Link:
        """The link used between two addresses (default if not overridden)."""
        return self._links.get(frozenset((ip_a, ip_b)), self.default_link)

    # ------------------------------------------------------------- captures
    def attach_capture(self, capture: PacketCapture) -> None:
        """Attach a capture that observes every delivered packet."""
        self._captures.append(capture)

    def detach_capture(self, capture: PacketCapture) -> None:
        """Remove a previously attached capture."""
        self._captures.remove(capture)

    # ------------------------------------------------------------- delivery
    def transmit(self, packet: IPv4Packet) -> None:
        """Deliver a packet from its (claimed) source to its destination.

        Packets addressed to unknown destinations are silently dropped, like
        the real Internet does for unrouted addresses.
        """
        self.packets_transmitted += 1
        destination = self._hosts.get(packet.dst)
        if destination is None:
            self.packets_dropped += 1
            return
        cache_key = (packet.src, packet.dst)
        link = self._link_cache.get(cache_key)
        if link is None:
            link = self.link_between(packet.src, packet.dst)
            if len(self._link_cache) >= LINK_CACHE_MAX_ENTRIES:
                self._link_cache.clear()
            self._link_cache[cache_key] = link
        if link.loss_probability > 0 and self._rng.random() < link.loss_probability:
            self.packets_dropped += 1
            return
        if self._captures:
            for capture in self._captures:
                capture.observe(packet, self.simulator.now)
        # Hot path: post the bound receive method with the packet as a
        # positional argument — no per-packet closure, label or Event object.
        self.simulator.post(link.latency, destination.receive, packet)

    def inject(self, packet: IPv4Packet, mark_spoofed: bool = True) -> None:
        """Off-path injection of a (typically source-spoofed) packet.

        The packet is delivered exactly like normal traffic; ``mark_spoofed``
        tags it so tests and the defragmentation cache can count how often a
        spoofed fragment ends up in a reassembled packet.  The tag models
        ground truth available to the experimenter, not to the victim.
        """
        if mark_spoofed:
            packet.metadata.setdefault("spoofed", True)
        self.transmit(packet)
