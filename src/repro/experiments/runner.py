"""Declarative scenario grids executed serially or across processes.

A sweep is declared as a list of :class:`RunSpec` (scenario name plus keyword
parameters) and handed to :class:`ExperimentRunner`.  Each run builds its own
simulator from its own seed, so runs are independent and can execute in any
order on any worker while remaining bit-for-bit reproducible; the runner
returns outcomes in declaration order regardless of completion order.

Only the spec (a string and a tuple of primitives) crosses the process
boundary — workers resolve the scenario function from the registry in
:mod:`repro.experiments.scenarios` by name.  This keeps the engine robust to
the usual pickling pitfalls (lambdas, locally defined classes, bound
methods).

Resilience: sweeps survive the failures that long population-scale grids
actually hit.  Worker crashes (``BrokenProcessPool``) respawn the pool and
send the in-flight chunks to a *K-way probation tier* — each suspect
re-runs in its own isolated single-worker pool, so a crash identifies its
culprit definitively without serialising the rest of the sweep (the main
pool keeps draining untouched chunks at full width alongside probation).
Per-run timeouts are enforced in both modes: a stalled pool is killed and
its innocent chunks requeued, and serial runs are preempted by a watchdog
thread that raises inside the running scenario.  Failed runs can be
retried with exponential backoff and *deterministic* jitter
(:class:`RetryPolicy` — the jitter is a pure function of the run label and
attempt number, so resumed sweeps pace identically); every failure carries
a typed ``error_kind`` on its :class:`RunOutcome`.  Sweeps can be
*checkpointed* to an append-only JSONL file — or written through the
durable run store of :mod:`repro.experiments.store` (manifests + fsynced
segments) via :meth:`ExperimentRunner.run_stored` — and later
:meth:`resumed <ExperimentRunner.resume>`: finished specs are skipped and
the combined outcome list is identical to an uninterrupted run (scenarios
are pure functions of their spec, so re-executing the unfinished tail
reproduces exactly what the interrupted run would have produced).
Cancellation is graceful: SIGINT or a sweep-wide deadline raises
:class:`SweepCancelled` *after* every finished outcome has been flushed
and fsynced, so a resume continues from the cancellation point.
"""

from __future__ import annotations

import json
import logging
import os
import platform
import random
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.experiments.store import (
    RepairEvent,
    outcome_document,
    repair_segment,
    scan_records,
    spec_document,
)
from repro.measurement.report import format_table
from repro.perf import (
    DISPATCH_STAGES,
    DRIVER_STAGES,
    PIPELINE_STAGES,
    STAGE_STATS_ENV,
    STAGES,
    stage_shares,
)

#: Default file the benchmark harness persists timings to (repo root).
BENCH_JSON_FILENAME = "BENCH_netsim.json"

#: The typed error taxonomy carried by ``RunOutcome.error_kind``:
#:
#: * ``scenario-error`` — the scenario function raised; deterministic for a
#:   deterministic scenario, so not retried by default.
#: * ``timeout`` — the run (or its chunk — see ``run_timeout``) exceeded its
#:   deadline and the worker was killed.
#: * ``worker-crash`` — the worker process died (OOM kill, segfault,
#:   ``BrokenProcessPool``); every chunk in flight at the moment of the
#:   crash is attributed this kind because the pool cannot say which task
#:   took the process down.
ERROR_KINDS = ("scenario-error", "timeout", "worker-crash")


_logger = logging.getLogger(__name__)


class CheckpointError(RuntimeError):
    """A sweep checkpoint could not be written, read, or matched to specs."""


class SweepCancelled(RuntimeError):
    """A sweep stopped early — gracefully — on SIGINT or a sweep deadline.

    Every outcome that finished before the cancellation was already
    flushed (and fsynced) to the checkpoint / run store, so
    :meth:`ExperimentRunner.resume` or
    :meth:`ExperimentRunner.resume_stored` continues exactly from the
    cancellation point.  The finished outcomes ride on the exception as
    ``outcomes`` (``{spec index: RunOutcome}``).
    """

    def __init__(
        self, reason: str, results: dict[int, "RunOutcome"], total: int
    ) -> None:
        self.reason = reason  # "interrupt" or "deadline"
        self.outcomes = {index: results[index] for index in sorted(results)}
        self.completed = len(results)
        self.total = total
        cause = "SIGINT" if reason == "interrupt" else "its sweep deadline"
        super().__init__(
            f"sweep cancelled by {cause} after {self.completed}/{total} runs; "
            "finished outcomes are flushed — resume() continues from them"
        )


class _SweepDeadlineReached(Exception):
    """Internal: the sweep-wide deadline expired (converted to
    :class:`SweepCancelled` by :meth:`ExperimentRunner._run`)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Retry failed runs with exponential backoff and deterministic jitter.

    ``delay(label, attempt)`` is a pure function — the jitter comes from a
    :class:`random.Random` seeded with the run label and attempt number,
    not from global randomness — so a resumed sweep backs off exactly like
    the uninterrupted one would have.  ``retry_on`` selects which
    :data:`ERROR_KINDS` are worth re-executing; the default retries the
    transient kinds (crashes, timeouts) and not deterministic scenario
    errors, which would fail identically every time.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter_fraction: float = 0.1
    retry_on: tuple[str, ...] = ("worker-crash", "timeout")

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff bounds must be >= 0")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}"
            )
        for kind in self.retry_on:
            if kind not in ERROR_KINDS:
                raise ValueError(
                    f"unknown error kind {kind!r}; expected one of {ERROR_KINDS}"
                )

    def should_retry(self, error_kind: Optional[str], attempt: int) -> bool:
        """Whether a failure of ``error_kind`` on ``attempt`` gets another go."""
        return attempt < self.max_attempts and error_kind in self.retry_on

    def delay(self, label: str, attempt: int) -> float:
        """Backoff before re-running ``label`` after failed ``attempt``."""
        backoff = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter_fraction <= 0.0 or backoff <= 0.0:
            return backoff
        unit = random.Random(f"{label}#{attempt}").random()
        return backoff * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))


@dataclass(frozen=True)
class RunSpec:
    """One cell of a scenario grid: a registered scenario plus parameters.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so the
    spec is hashable and its repr is stable — useful as a table row key and
    for deduplication.
    """

    scenario: str
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, scenario: str, **params: Any) -> "RunSpec":
        """Build a spec from keyword parameters."""
        return cls(scenario=scenario, params=tuple(sorted(params.items())))

    def kwargs(self) -> dict[str, Any]:
        """The parameters as a keyword dict (what the scenario receives)."""
        return dict(self.params)

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``table2[client=ntpd, seed=5]``."""
        inner = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.scenario}[{inner}]" if inner else self.scenario


@dataclass
class RunOutcome:
    """The result of executing one :class:`RunSpec`."""

    spec: RunSpec
    result: Any = None
    wall_time: float = 0.0
    error: Optional[str] = None
    #: Per-stage decode/encode wall-time snapshot (see :mod:`repro.perf`);
    #: populated only when stage-stats collection is enabled.
    stage_stats: Optional[dict] = None
    #: One of :data:`ERROR_KINDS` when ``error`` is set, ``None`` otherwise.
    error_kind: Optional[str] = None
    #: Which execution attempt produced this outcome (1 = first try).
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True when the run completed without raising."""
        return self.error is None


def make_grid(scenario: str, **axes: Iterable[Any]) -> list[RunSpec]:
    """Cross-product a set of named axes into a list of specs.

    ``make_grid("table2", client=["ntpd", "chrony"], seed=[1, 2])`` yields
    four specs in deterministic (row-major, insertion-ordered) order.
    """
    names = list(axes)
    combos = product(*(list(axes[name]) for name in names))
    return [
        RunSpec.make(scenario, **dict(zip(names, combo))) for combo in combos
    ]


def _execute_chunk(
    specs: tuple[RunSpec, ...], pack_tenants: int = 0
) -> list[RunOutcome]:
    """Run a contiguous slice of the grid in one worker task.

    Chunked submission amortises the per-task overhead of the process pool
    (pickling, dispatch) and — together with the
    :func:`repro.experiments.warmup.warm_worker_caches` pool initializer —
    means a worker pays the import/intern/memo warm-up once, not once per
    scenario.  Top-level, hence picklable.

    With ``pack_tenants`` > 1, consecutive same-scenario specs (up to that
    many per batch) whose scenario registered a tenant pack (see
    :func:`repro.experiments.scenarios.get_tenant_pack`) execute as one
    multi-tenant batch behind this worker's warmed caches instead of one
    at a time.  Scenarios are pure functions of their specs, so results
    are identical either way; packing only changes per-run wall-time
    attribution (spread evenly over the pack), so it is skipped while
    stage-stats collection is on.
    """
    from repro.experiments.warmup import warm_worker_caches

    warm_worker_caches()
    if pack_tenants > 1 and not os.environ.get(STAGE_STATS_ENV):
        return _execute_packed(specs, pack_tenants)
    return [_execute(spec) for spec in specs]


def _execute_packed(
    specs: tuple[RunSpec, ...], limit: int
) -> list[RunOutcome]:
    """Chunk execution with multi-tenant packing of same-scenario runs.

    Falls back to :func:`_execute` per spec whenever a scenario has no
    registered pack, the pack raises, or it returns the wrong number of
    results — packing is an optimisation, never a semantic change.
    """
    from repro.experiments.scenarios import get_tenant_pack

    outcomes: list[RunOutcome] = []
    index = 0
    while index < len(specs):
        scenario = specs[index].scenario
        group = [specs[index]]
        index += 1
        while (
            index < len(specs)
            and specs[index].scenario == scenario
            and len(group) < limit
        ):
            group.append(specs[index])
            index += 1
        pack = get_tenant_pack(scenario) if len(group) > 1 else None
        if pack is None:
            outcomes.extend(_execute(spec) for spec in group)
            continue
        started = time.perf_counter()
        try:
            results = pack([spec.kwargs() for spec in group])
            if len(results) != len(group):
                raise RuntimeError(
                    f"tenant pack for {scenario!r} returned "
                    f"{len(results)} results for {len(group)} specs"
                )
        except Exception:  # noqa: BLE001 - packs are best-effort
            outcomes.extend(_execute(spec) for spec in group)
            continue
        share = (time.perf_counter() - started) / len(group)
        outcomes.extend(
            RunOutcome(spec=spec, result=result, wall_time=share)
            for spec, result in zip(group, results)
        )
    return outcomes


def _execute(spec: RunSpec) -> RunOutcome:
    """Run one spec (in the current process).  Top-level, hence picklable.

    Stage-stats collection is keyed off the ``REPRO_STAGE_STATS`` environment
    variable (not a parameter) so the same picklable function works in
    worker processes — the runner sets the variable before creating the
    pool and workers inherit it.
    """
    from repro.experiments.scenarios import get_scenario

    collect_stages = bool(os.environ.get(STAGE_STATS_ENV))
    if collect_stages:
        STAGES.reset()
        STAGES.enable()
    started = time.perf_counter()
    try:
        result = get_scenario(spec.scenario)(**spec.kwargs())
    except Exception as exc:  # noqa: BLE001 - reported, not swallowed
        return RunOutcome(
            spec=spec,
            wall_time=time.perf_counter() - started,
            error=f"{type(exc).__name__}: {exc}",
            error_kind="scenario-error",
        )
    finally:
        if collect_stages:
            STAGES.disable()
    wall_time = time.perf_counter() - started
    return RunOutcome(
        spec=spec,
        result=result,
        wall_time=wall_time,
        stage_stats=STAGES.snapshot(wall_time) if collect_stages else None,
    )


# ------------------------------------------------------------ serial watchdog
class _RunTimeoutInterrupt(BaseException):
    """Raised *inside* a thread whose serial run exceeded its deadline.

    Derives from ``BaseException`` so a scenario's own ``except
    Exception`` blocks cannot swallow the preemption.
    """


try:
    import ctypes

    # PYFUNCTYPE keeps the GIL held across the call, which pythonapi needs.
    _raise_async_exc = ctypes.PYFUNCTYPE(
        ctypes.c_int, ctypes.c_ulong, ctypes.py_object
    )(("PyThreadState_SetAsyncExc", ctypes.pythonapi))
    _clear_async_exc = ctypes.PYFUNCTYPE(
        ctypes.c_int, ctypes.c_ulong, ctypes.c_void_p
    )(("PyThreadState_SetAsyncExc", ctypes.pythonapi))
except (ImportError, AttributeError):  # non-CPython: no async-exc injection
    _raise_async_exc = None
    _clear_async_exc = None


class _Watchdog:
    """Heartbeat thread enforcing per-run deadlines on in-process runs.

    Pool mode enforces ``run_timeout`` by killing the worker process;
    serial mode has no process to kill, so the watchdog preempts the run
    by raising :class:`_RunTimeoutInterrupt` inside the executing thread
    (``PyThreadState_SetAsyncExc``).  CPU-bound scenarios — the real
    workload, simulator event loops — are interrupted at the next
    bytecode boundary; a run blocked inside one long C call (e.g. a
    single ``time.sleep`` spanning the whole budget) only observes the
    interrupt when that call returns, the inherent limit of in-process
    preemption.

    Arming, firing and disarming are serialised under one lock, and
    :meth:`disarm` cancels a fired-but-not-yet-materialised interrupt, so
    a run that finishes exactly at its deadline cannot leak the interrupt
    into the next run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._watching = False
        self._armed_tid: Optional[int] = None
        self._deadline = 0.0
        self._generation = 0
        self._fired = False
        self._thread: Optional[threading.Thread] = None

    @staticmethod
    def available() -> bool:
        """Whether this interpreter supports async-exception injection."""
        return _raise_async_exc is not None

    def arm(self, thread_id: int, timeout: float) -> int:
        """Start the deadline clock for ``thread_id``; returns a token."""
        with self._wake:
            self._generation += 1
            self._armed_tid = thread_id
            self._deadline = time.monotonic() + timeout
            self._watching = True
            self._fired = False
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._loop, name="experiment-watchdog", daemon=True
                )
                self._thread.start()
            self._wake.notify_all()
            return self._generation

    def disarm(self, token: int) -> bool:
        """Stop watching; returns True when the deadline fired for ``token``."""
        with self._wake:
            if self._generation != token:
                return False
            fired = self._fired
            tid = self._armed_tid
            self._watching = False
            self._armed_tid = None
            self._fired = False
            self._wake.notify_all()
        if fired and tid is not None:
            # Cancel an injected interrupt that has not materialised yet
            # (the run won the race and completed); a materialised one is
            # already propagating and is caught by the caller.
            _clear_async_exc(tid, None)
        return fired

    def _loop(self) -> None:
        with self._wake:
            while True:
                if not self._watching:
                    self._wake.wait()
                    continue
                remaining = self._deadline - time.monotonic()
                if remaining > 0:
                    self._wake.wait(timeout=remaining)
                    continue
                # Deadline reached: inject while holding the lock so a
                # concurrent disarm() cannot interleave.
                self._fired = True
                self._watching = False
                _raise_async_exc(self._armed_tid, _RunTimeoutInterrupt)


# --------------------------------------------------------------- checkpoints
#: The JSON shape a spec takes inside a checkpoint line / store record
#: (shared with :mod:`repro.experiments.store`).
_spec_document = spec_document


def _json_normalise(value: Any) -> Any:
    """Round-trip through JSON (tuples → lists etc.) for spec comparison."""
    return json.loads(json.dumps(value))


class _CheckpointWriter:
    """Append-only JSONL sink for completed outcomes.

    One line per finished run, flushed and fsynced immediately so a killed
    sweep loses at most the line being written (a torn final line, which
    the loader tolerates).  Lines are written in *completion* order and
    carry the spec index, so declaration order is reconstructed on load.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            self._repair_damage(path)
            self._handle = open(path, "a", encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(f"cannot open checkpoint {path!r}: {exc}") from exc

    @staticmethod
    def _repair_damage(path: str) -> list[RepairEvent]:
        """Rewrite the checkpoint without its damaged lines before appending.

        Generalises the old torn-tail-only truncation: a partial final
        line from a kill mid-write, undecodable records mid-file and
        NUL-padded truncation holes are all dropped (the affected runs
        simply re-execute), via :func:`repro.experiments.store.repair_segment`
        — valid lines survive byte-for-byte.  Appending without the repair
        would concatenate the next entry onto a fragment and corrupt it.
        Every dropped line is reported through a logged warning.
        """
        events = repair_segment(path)
        for event in events:
            _logger.warning("checkpoint %s: dropped damaged line — %s", path, event)
        return events

    def append(self, index: int, outcome: RunOutcome) -> None:
        entry = outcome_document(index, outcome)
        try:
            line = json.dumps(entry)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"outcome of {outcome.spec.label} is not JSON-serialisable "
                f"(checkpointed sweeps need JSON-safe scenario results): {exc}"
            ) from exc
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        self._handle.close()


def load_checkpoint(
    path: str,
    specs: Sequence[RunSpec],
    repairs: Optional[list[RepairEvent]] = None,
) -> dict[int, RunOutcome]:
    """Read a checkpoint back into ``{spec index: RunOutcome}``.

    Validates every record against the sweep it claims to belong to — the
    index must be in range and the recorded spec must equal ``specs[index]``
    (a mismatch means the checkpoint came from a different grid and raises
    :class:`CheckpointError` rather than silently skipping wrong runs).

    Damage is survivable *and reported*, not silently dropped: a torn
    final line (kill mid-write), undecodable records anywhere in the file
    (disk corruption) and NUL-padded truncation holes are each logged as a
    warning and appended to ``repairs`` when a list is passed — the
    affected runs simply re-execute on resume.  JSON floats round-trip
    exactly, so reloaded results compare bit-identical to freshly
    executed ones.
    """
    done: dict[int, RunOutcome] = {}
    if not os.path.exists(path):
        return done
    expected = [_json_normalise(_spec_document(spec)) for spec in specs]
    records, events = scan_records(path)
    for event in events:
        _logger.warning("checkpoint %s: skipped damaged line — %s", path, event)
    if repairs is not None:
        repairs.extend(events)
    for entry in records:
        index = entry.get("index")
        if not isinstance(index, int) or not 0 <= index < len(specs):
            raise CheckpointError(
                f"checkpoint {path!r}: index {index!r} out of range for a "
                f"sweep of {len(specs)} specs"
            )
        if entry.get("spec") != expected[index]:
            raise CheckpointError(
                f"checkpoint {path!r}: recorded spec {entry.get('spec')!r} "
                f"does not match {specs[index].label} — this checkpoint "
                "belongs to a different sweep"
            )
        done[index] = RunOutcome(
            spec=specs[index],
            result=entry.get("result"),
            wall_time=entry.get("wall_time", 0.0),
            error=entry.get("error"),
            stage_stats=entry.get("stage_stats"),
            error_kind=entry.get("error_kind"),
            attempts=entry.get("attempts", 1),
        )
    return done


class _ProgressTracker:
    """Throttled completed/total emission shared by run() and the writer."""

    def __init__(
        self,
        callback: Optional[Callable[[int, int], None]],
        interval: float,
        total: int,
        completed: int,
    ) -> None:
        self.callback = callback
        self.interval = interval
        self.total = total
        self.completed = completed
        self._last_time = time.monotonic()
        self._last_reported = -1

    def advance(self, count: int = 1) -> None:
        self.completed += count
        if self.callback is None:
            return
        now = time.monotonic()
        if (
            self.interval <= 0.0
            or now - self._last_time >= self.interval
            or self.completed >= self.total
        ):
            self._last_time = now
            self._last_reported = self.completed
            self.callback(self.completed, self.total)

    def finish(self) -> None:
        """Guarantee a final emission even when the throttle swallowed it."""
        if self.callback is not None and self._last_reported != self.completed:
            self._last_reported = self.completed
            self.callback(self.completed, self.total)


@dataclass(frozen=True)
class _Chunk:
    """A contiguous slice of the grid scheduled as one pool task."""

    items: tuple[tuple[int, RunSpec], ...]  # (declaration index, spec)
    attempt: int = 1

    @property
    def label(self) -> str:
        first = self.items[0][1].label
        if len(self.items) == 1:
            return first
        return f"{first} (+{len(self.items) - 1} more)"


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers and abandon it (stalled or broken)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 - already-dead workers are fine
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001 - broken executors may refuse shutdown
        pass


class ExperimentRunner:
    """Execute scenario sweeps, optionally fanning out across processes.

    Parameters
    ----------
    max_workers:
        ``1`` forces in-process serial execution (no pickling requirements
        at all).  ``None`` uses ``os.cpu_count()``.  Anything larger than 1
        uses a ``ProcessPoolExecutor``; if the pool cannot be created or a
        submission fails to pickle, the runner falls back to serial
        execution rather than failing the sweep.
    collect_stage_stats:
        When true, each run collects the per-stage decode/encode and
        delivery-pipeline wall-time counters of :mod:`repro.perf` and
        attaches a snapshot to its :class:`RunOutcome` (``stage_stats``),
        at the cost of a few ``perf_counter`` calls per codec operation and
        delivered packet.  Timing never feeds the simulation, so results
        remain bit-identical.
    chunk_size:
        Scenarios per worker task when fanning out across processes.
        ``None`` (the default) picks ``ceil(len(specs) / (4 * workers))``
        — large enough to amortise dispatch, small enough to load-balance
        a heterogeneous grid.  ``1`` reproduces the old task-per-scenario
        submission.  Each chunk runs against that worker's warmed caches
        (see :mod:`repro.experiments.warmup`).
    run_timeout:
        Per-run wall-clock budget in seconds, enforced in *both* modes.
        In process mode a chunk of ``k`` runs gets ``k × run_timeout``,
        and on expiry the pool is killed, the stalled chunk fails (or
        retries) with kind ``"timeout"``, the other in-flight chunks are
        requeued unharmed and a fresh pool takes over; pass
        ``chunk_size=1`` for strict per-run deadlines.  In serial mode a
        watchdog thread preempts the running scenario by raising inside
        it (see :class:`_Watchdog`) — CPU-bound scenarios are interrupted
        at the next bytecode boundary; a run blocked in one long C call
        observes the interrupt when the call returns.
    retry:
        A :class:`RetryPolicy`; ``None`` disables retries.  Failed runs of
        a kind in ``retry_on`` re-execute (scenarios are pure functions of
        their spec, so a retry that succeeds is indistinguishable from a
        first-try success apart from ``RunOutcome.attempts``).
    probation_width:
        How many isolated single-worker pools re-run crash suspects
        concurrently (the K of the K-way probation tier).  Defaults to
        ``min(2, max_workers)``.  Suspects must run isolated for
        definitive culprit attribution, but probation runs *alongside*
        the main pool — a crash no longer serialises the sweep.
    sweep_timeout:
        Wall-clock budget in seconds for the whole sweep.  On expiry the
        sweep cancels gracefully: pools are killed, every finished
        outcome is already flushed, and :class:`SweepCancelled` carries
        the partial results (``resume()`` continues from them).  SIGINT
        (``KeyboardInterrupt``) cancels the same way.
    on_progress:
        ``callback(completed, total)`` invoked as runs finish (also on
        runs replayed from a checkpoint).  Throttled by
        ``progress_interval`` seconds (``0`` emits on every completion); a
        final emission is guaranteed.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        collect_stage_stats: bool = False,
        chunk_size: Optional[int] = None,
        run_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        probation_width: Optional[int] = None,
        sweep_timeout: Optional[float] = None,
        on_progress: Optional[Callable[[int, int], None]] = None,
        progress_interval: float = 0.0,
        tenants_per_worker: Optional[int] = None,
    ) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if tenants_per_worker is not None and tenants_per_worker < 1:
            raise ValueError(
                f"tenants_per_worker must be >= 1, got {tenants_per_worker}"
            )
        if run_timeout is not None and run_timeout <= 0:
            raise ValueError(f"run_timeout must be > 0, got {run_timeout}")
        if probation_width is not None and probation_width < 1:
            raise ValueError(
                f"probation_width must be >= 1, got {probation_width}"
            )
        if sweep_timeout is not None and sweep_timeout <= 0:
            raise ValueError(f"sweep_timeout must be > 0, got {sweep_timeout}")
        if progress_interval < 0:
            raise ValueError(f"progress_interval must be >= 0, got {progress_interval}")
        self.max_workers = max_workers
        self.collect_stage_stats = collect_stage_stats
        self.chunk_size = chunk_size
        self.run_timeout = run_timeout
        self.retry = retry
        self.probation_width = (
            probation_width if probation_width is not None else min(2, max_workers)
        )
        self.sweep_timeout = sweep_timeout
        self.on_progress = on_progress
        self.progress_interval = progress_interval
        #: Multi-tenant worker mode: pack up to this many consecutive
        #: same-scenario runs into one in-worker batch (scenarios that
        #: registered a tenant pack only; see
        #: :func:`repro.experiments.scenarios.tenant_pack`).  ``None`` or
        #: ``1`` disables packing.  Pool mode only — serial runs are
        #: already one process behind warm caches.
        self.tenants_per_worker = tenants_per_worker
        #: "serial" or "processes[N] chunks[M]" — how the last sweep ran.
        self.last_execution_mode: str = "serial"
        #: Crash/timeout/probation counters from the last pool sweep (see
        #: :class:`_PoolEngine`); empty for serial sweeps.
        self.last_recovery: dict[str, Any] = {}
        #: The sweep id of the last run_stored()/resume_stored() sweep.
        self.last_sweep_id: Optional[str] = None
        self._watchdog: Optional[_Watchdog] = None

    # ------------------------------------------------------------- execution
    def run(
        self, specs: Sequence[RunSpec], checkpoint: Optional[str] = None
    ) -> list[RunOutcome]:
        """Execute all specs, returning outcomes in declaration order.

        With ``checkpoint`` set, every completed outcome is appended to
        that JSONL file as it finishes; an existing non-empty checkpoint is
        refused (use :meth:`resume` to continue it, or delete the file to
        start over).
        """
        specs = list(specs)
        if (
            checkpoint is not None
            and os.path.exists(checkpoint)
            and os.path.getsize(checkpoint) > 0
        ):
            raise CheckpointError(
                f"checkpoint {checkpoint!r} already holds outcomes; call "
                "resume() to continue the sweep, or remove the file to restart"
            )
        writer = _CheckpointWriter(checkpoint) if checkpoint is not None else None
        return self._run(specs, writer, {})

    def resume(
        self, specs: Sequence[RunSpec], checkpoint: str
    ) -> list[RunOutcome]:
        """Continue a checkpointed sweep, skipping already-finished specs.

        Outcomes recorded in the checkpoint are loaded back (validated
        against ``specs``); only the unfinished tail executes, appending to
        the same file.  Because scenarios are pure functions of their
        specs, the returned list is identical to what an uninterrupted
        :meth:`run` would have produced.  A missing or empty checkpoint
        degrades to a plain run.
        """
        specs = list(specs)
        done = load_checkpoint(checkpoint, specs)
        return self._run(specs, _CheckpointWriter(checkpoint), done)

    # ------------------------------------------------------ store write-through
    def run_stored(
        self,
        store: Any,
        name: str,
        specs: Sequence[RunSpec],
        *,
        sweep_id: Optional[str] = None,
        seed: Optional[int] = None,
        fault_plan: Optional[Any] = None,
        metadata: Optional[dict[str, Any]] = None,
        finish: bool = True,
    ) -> list[RunOutcome]:
        """Execute a sweep writing through a durable
        :class:`~repro.experiments.store.RunStore`.

        The sweep's manifest (spec list, seed, fault plan, git revision)
        commits atomically before the first run; every finished outcome
        appends to an fsynced segment as it completes.  On success the
        manifest is stamped ``complete``; graceful cancellation stamps
        ``cancelled`` (and :meth:`resume_stored` continues the sweep);
        any other failure stamps ``failed``.  The sweep id lands in
        :attr:`last_sweep_id`.

        ``finish=False`` leaves a successful sweep stamped ``running`` so
        the caller can append derived records (aggregates, summaries)
        before stamping ``complete`` itself — a crash in that window then
        resumes instead of masquerading as a finished sweep.  Cancellation
        and failure stamp their statuses regardless.
        """
        specs = list(specs)
        writer = store.begin_sweep(
            name,
            specs,
            sweep_id=sweep_id,
            seed=seed,
            fault_plan=fault_plan,
            metadata=metadata,
        )
        self.last_sweep_id = writer.sweep_id
        return self._run_through_store(
            store, writer.sweep_id, specs, writer, {}, finish=finish
        )

    def resume_stored(
        self,
        store: Any,
        sweep_id: str,
        specs: Optional[Sequence[RunSpec]] = None,
        *,
        finish: bool = True,
    ) -> list[RunOutcome]:
        """Continue a store-backed sweep from its recorded outcomes.

        ``specs=None`` rebuilds the spec list from the sweep's manifest —
        a crashed sweep resumes from nothing but its store directory.
        Recorded outcomes are validated against the specs (damaged
        records are skipped with a logged warning and simply re-execute),
        and new outcomes append into a fresh segment.  The combined
        result is identical to an uninterrupted :meth:`run_stored`.
        """
        if specs is None:
            specs = store.specs(sweep_id)
        specs = list(specs)
        repairs: list[RepairEvent] = []
        done = store.load_outcomes(sweep_id, specs, repairs=repairs)
        for event in repairs:
            _logger.warning(
                "store sweep %s: skipped damaged record — %s", sweep_id, event
            )
        writer = store.open_sweep(sweep_id)
        self.last_sweep_id = sweep_id
        return self._run_through_store(
            store, sweep_id, specs, writer, done, finish=finish
        )

    def _run_through_store(
        self,
        store: Any,
        sweep_id: str,
        specs: list[RunSpec],
        writer: Any,
        done: dict[int, RunOutcome],
        finish: bool = True,
    ) -> list[RunOutcome]:
        try:
            outcomes = self._run(specs, writer, done)
        except SweepCancelled:
            store.finish_sweep(sweep_id, "cancelled")
            raise
        except BaseException:
            store.finish_sweep(sweep_id, "failed")
            raise
        if finish:
            store.finish_sweep(sweep_id, "complete")
        return outcomes

    def _run(
        self,
        specs: list[RunSpec],
        writer: Optional[Any],
        done: dict[int, RunOutcome],
    ) -> list[RunOutcome]:
        previous_env = os.environ.get(STAGE_STATS_ENV)
        if self.collect_stage_stats:
            # Workers inherit the environment, so this propagates through
            # the process pool as well as the serial path.
            os.environ[STAGE_STATS_ENV] = "1"
        deadline = None
        if self.sweep_timeout is not None:
            deadline = time.monotonic() + self.sweep_timeout
        try:
            results: dict[int, RunOutcome] = dict(done)
            remaining = [
                (index, spec)
                for index, spec in enumerate(specs)
                if index not in results
            ]
            progress = _ProgressTracker(
                self.on_progress, self.progress_interval, len(specs), len(results)
            )
            try:
                if self.max_workers == 1 or len(remaining) <= 1:
                    self.last_execution_mode = "serial"
                    self._run_serial(remaining, results, writer, progress, deadline)
                else:
                    self._run_pool(remaining, results, writer, progress, deadline)
            except KeyboardInterrupt:
                # Graceful cancellation: every finished outcome is already
                # flushed and fsynced; resume() continues from them.
                raise SweepCancelled("interrupt", results, len(specs)) from None
            except _SweepDeadlineReached:
                raise SweepCancelled("deadline", results, len(specs)) from None
            progress.finish()
            return [results[index] for index in range(len(specs))]
        finally:
            if writer is not None:
                writer.close()
            if self.collect_stage_stats:
                if previous_env is None:
                    os.environ.pop(STAGE_STATS_ENV, None)
                else:
                    os.environ[STAGE_STATS_ENV] = previous_env

    def _record(
        self,
        index: int,
        outcome: RunOutcome,
        results: dict[int, RunOutcome],
        writer: Optional[_CheckpointWriter],
        progress: _ProgressTracker,
    ) -> None:
        results[index] = outcome
        if writer is not None:
            writer.append(index, outcome)
        progress.advance()

    def _execute_serial(self, spec: RunSpec) -> RunOutcome:
        """One in-process run, pre-empted by the watchdog at ``run_timeout``.

        The watchdog injects :class:`_RunTimeoutInterrupt` into this thread
        when the deadline passes; because it is a ``BaseException`` the
        scenario's own ``except Exception`` handlers cannot swallow it.  A
        run that completes in the same instant the deadline fires keeps its
        real outcome — the pending interrupt is cleared before it can
        materialise.
        """
        timeout = self.run_timeout
        if timeout is None:
            return _execute(spec)
        if self._watchdog is None:
            self._watchdog = _Watchdog()
        watchdog = self._watchdog
        if not watchdog.available():
            return _execute(spec)
        token = watchdog.arm(threading.get_ident(), timeout)
        try:
            try:
                outcome = _execute(spec)
            finally:
                watchdog.disarm(token)
        except _RunTimeoutInterrupt:
            return RunOutcome(
                spec=spec,
                error=(
                    f"run exceeded its {timeout}s deadline "
                    "(interrupted in-process by the serial watchdog)"
                ),
                error_kind="timeout",
            )
        return outcome

    def _execute_with_retry(self, spec: RunSpec) -> RunOutcome:
        """Serial execution with the retry policy applied in-process."""
        attempt = 1
        while True:
            outcome = self._execute_serial(spec)
            outcome.attempts = attempt
            if (
                outcome.ok
                or self.retry is None
                or not self.retry.should_retry(outcome.error_kind, attempt)
            ):
                return outcome
            time.sleep(self.retry.delay(spec.label, attempt))
            attempt += 1

    def _run_serial(
        self,
        remaining: list[tuple[int, RunSpec]],
        results: dict[int, RunOutcome],
        writer: Optional[_CheckpointWriter],
        progress: _ProgressTracker,
        deadline: Optional[float] = None,
    ) -> None:
        for index, spec in remaining:
            if deadline is not None and time.monotonic() >= deadline:
                raise _SweepDeadlineReached
            self._record(index, self._execute_with_retry(spec), results, writer, progress)

    # ------------------------------------------------------------- pool engine
    def _make_pool(self) -> ProcessPoolExecutor:
        from repro.experiments.warmup import warm_worker_caches

        return ProcessPoolExecutor(
            max_workers=self.max_workers, initializer=warm_worker_caches
        )

    def _make_probation_pool(self) -> ProcessPoolExecutor:
        """An isolated single-worker pool for re-running a crash suspect."""
        from repro.experiments.warmup import warm_worker_caches

        return ProcessPoolExecutor(max_workers=1, initializer=warm_worker_caches)

    def _handle_chunk_failure(
        self,
        chunk: _Chunk,
        kind: str,
        requeue: "deque[_Chunk]",
        results: dict[int, RunOutcome],
        writer: Optional[_CheckpointWriter],
        progress: _ProgressTracker,
    ) -> None:
        """Retry a definitively-failed chunk, or materialise typed outcomes."""
        if self.retry is not None and self.retry.should_retry(kind, chunk.attempt):
            time.sleep(self.retry.delay(chunk.label, chunk.attempt))
            requeue.append(_Chunk(chunk.items, chunk.attempt + 1))
            return
        if kind == "timeout":
            message = (
                f"run exceeded its {self.run_timeout}s deadline "
                "(worker killed, pool respawned)"
            )
        else:
            message = "worker process died (pool respawned)"
        for index, spec in chunk.items:
            self._record(
                index,
                RunOutcome(
                    spec=spec, error=message, error_kind=kind, attempts=chunk.attempt
                ),
                results,
                writer,
                progress,
            )

    def _run_pool(
        self,
        remaining: list[tuple[int, RunSpec]],
        results: dict[int, RunOutcome],
        writer: Optional[_CheckpointWriter],
        progress: _ProgressTracker,
        deadline: Optional[float] = None,
    ) -> None:
        """Drain the sweep through the K-way probation pool engine."""
        _PoolEngine(self, remaining, results, writer, progress, deadline).run()

    def _chunk(self, specs: list) -> list[tuple]:
        """Slice the grid into contiguous worker tasks (see ``chunk_size``)."""
        size = self.chunk_size
        if size is None:
            size = max(1, -(-len(specs) // (4 * self.max_workers)))
            pack = self._pack_limit()
            if pack > 1:
                # Chunks sized in whole packs so each worker batch fills its
                # multi-tenant groups instead of leaving ragged singletons.
                size = -(-size // pack) * pack
        return [
            tuple(specs[start : start + size]) for start in range(0, len(specs), size)
        ]

    def _pack_limit(self) -> int:
        """Tenants per in-worker batch (0/1 = multi-tenant packing off)."""
        if self.tenants_per_worker is None or self.collect_stage_stats:
            return 0
        return self.tenants_per_worker

    def run_grid(self, scenario: str, **axes: Iterable[Any]) -> list[RunOutcome]:
        """Declare and execute a cross-product grid in one call."""
        return self.run(make_grid(scenario, **axes))


class _PoolEngine:
    """Resilient pool drain with a K-way probation tier.

    Three tiers.  The **main pool** (width ``max_workers``) drains
    untouched chunks; when it breaks, every in-flight chunk is a crash
    suspect.  The **probation tier** re-runs suspects, each in its own
    isolated single-worker pool (up to ``probation_width`` at once) so a
    repeat crash has exactly one suspect — the definitive culprit fails
    (or retries) with kind ``"worker-crash"`` — while the respawned main
    pool keeps draining the rest of the sweep at full width.  Innocent
    bystanders complete in probation and their pool is reused for the
    next suspect.  **Serial drain** in the driver is the last resort
    when no pool can start at all.

    Per-run deadlines are enforced in both tiers (a stalled worker holds
    its pool hostage — ``ProcessPoolExecutor`` cannot cancel a running
    task — so the owning pool is killed; for the main pool, innocent
    siblings requeue at the front of ``pending`` at their current
    attempt).  Recovery statistics land in
    :attr:`ExperimentRunner.last_recovery`.
    """

    def __init__(
        self,
        runner: ExperimentRunner,
        remaining: list[tuple[int, RunSpec]],
        results: dict[int, RunOutcome],
        writer: Optional[_CheckpointWriter],
        progress: _ProgressTracker,
        deadline: Optional[float],
    ) -> None:
        self.runner = runner
        self.results = results
        self.writer = writer
        self.progress = progress
        self.deadline = deadline
        self.pending: deque[_Chunk] = deque(
            _Chunk(tuple(slice_)) for slice_ in runner._chunk(remaining)
        )
        self.quarantine: deque[_Chunk] = deque()
        self.main_flight: dict[Any, tuple[_Chunk, Optional[float]]] = {}
        self.probation: dict[
            Any, tuple[_Chunk, ProcessPoolExecutor, Optional[float]]
        ] = {}
        self.idle_probation: list[ProcessPoolExecutor] = []
        self.pool: Optional[ProcessPoolExecutor] = None
        self.probation_unavailable = False
        self.recovery: dict[str, Any] = {
            "worker_crashes": 0,
            "probation_runs": 0,
            "timeouts": 0,
            "max_parallel_after_crash": 0,
        }

    def run(self) -> None:
        runner = self.runner
        runner.last_recovery = self.recovery
        try:
            self.pool = runner._make_pool()
        except Exception:  # pool creation failure: degrade gracefully
            runner.last_execution_mode = "serial (process pool unavailable)"
            leftovers = [item for chunk in self.pending for item in chunk.items]
            self.pending.clear()
            runner._run_serial(
                leftovers, self.results, self.writer, self.progress, self.deadline
            )
            return
        runner.last_execution_mode = (
            f"processes[{runner.max_workers}] chunks[{len(self.pending)}]"
        )
        try:
            self._drain()
        finally:
            if self.pool is not None:
                self.pool.shutdown(wait=False, cancel_futures=True)
            for pool in self.idle_probation:
                pool.shutdown(wait=False, cancel_futures=True)
            for _chunk, pool, _deadline in self.probation.values():
                _kill_pool(pool)

    # --------------------------------------------------------------- drain loop
    def _drain(self) -> None:
        while self.pending or self.quarantine or self.main_flight or self.probation:
            self._check_sweep_deadline()
            self._fill_probation()
            if not self._fill_main():
                if not self._recover_main(innocents_to="quarantine"):
                    return
                continue
            futures = set(self.main_flight) | set(self.probation)
            if not futures:
                continue
            if self.recovery["worker_crashes"]:
                parallel = len(self.main_flight) + len(self.probation)
                if parallel > self.recovery["max_parallel_after_crash"]:
                    self.recovery["max_parallel_after_crash"] = parallel
            completed, _running = wait(
                futures, timeout=self._wait_timeout(), return_when=FIRST_COMPLETED
            )
            if not completed:
                self._check_sweep_deadline()
                if not self._deadline_sweep():
                    return
                continue
            flight_size = len(self.main_flight)
            main_crashed = False
            for future in completed:
                if future in self.main_flight:
                    crashed = self._finish_main(future, flight_size)
                    main_crashed = main_crashed or crashed
                else:
                    self._finish_probation(future)
            if main_crashed:
                # A broken pool takes every in-flight sibling with it; the
                # break counts once, however many futures it failed.
                self.recovery["worker_crashes"] += 1
                if not self._recover_main(innocents_to="quarantine"):
                    return

    # ------------------------------------------------------------- submissions
    def _fill_main(self) -> bool:
        """Feed the main pool from ``pending``; False when it is broken."""
        if self.probation_unavailable and self.quarantine:
            # No isolated pools can start: fall back to running suspects
            # solo through the main pool (one at a time keeps culprit
            # attribution exact), holding fresh work until they settle.
            if not self.main_flight and not self.probation:
                return self._submit_main(self.quarantine.popleft())
            return True
        while self.pending and len(self.main_flight) < self.runner.max_workers:
            if not self._submit_main(self.pending.popleft()):
                return False
        return True

    def _submit_main(self, chunk: _Chunk) -> bool:
        """Submit one chunk; False means the pool is already broken."""
        try:
            future = self.pool.submit(
                _execute_chunk,
                tuple(spec for _, spec in chunk.items),
                self.runner._pack_limit(),
            )
        except BrokenProcessPool:
            self.recovery["worker_crashes"] += 1
            self.quarantine.appendleft(chunk)
            return False
        except Exception:  # unpicklable chunk: run it in the driver
            for index, spec in chunk.items:
                self.runner._record(
                    index,
                    self.runner._execute_with_retry(spec),
                    self.results,
                    self.writer,
                    self.progress,
                )
            return True
        self.main_flight[future] = (chunk, self._chunk_deadline(chunk))
        return True

    def _fill_probation(self) -> None:
        """Start suspects in isolated pools, up to ``probation_width``."""
        runner = self.runner
        if self.probation_unavailable:
            return
        while self.quarantine and len(self.probation) < runner.probation_width:
            chunk = self.quarantine.popleft()
            pool = self._probation_pool()
            if pool is None:
                self.quarantine.appendleft(chunk)
                self.probation_unavailable = True
                return
            payload = tuple(spec for _, spec in chunk.items)
            try:
                future = pool.submit(_execute_chunk, payload)
            except Exception:
                # A reused idle pool had died in the meantime — retire it
                # and retry once on a definitely-fresh pool.
                _kill_pool(pool)
                pool = None
                try:
                    pool = runner._make_probation_pool()
                    future = pool.submit(_execute_chunk, payload)
                except Exception:
                    if pool is not None:
                        _kill_pool(pool)
                    self.quarantine.appendleft(chunk)
                    self.probation_unavailable = True
                    return
            self.recovery["probation_runs"] += 1
            self.probation[future] = (chunk, pool, self._chunk_deadline(chunk))

    def _probation_pool(self) -> Optional[ProcessPoolExecutor]:
        if self.idle_probation:
            return self.idle_probation.pop()
        try:
            return self.runner._make_probation_pool()
        except Exception:
            return None

    def _chunk_deadline(self, chunk: _Chunk) -> Optional[float]:
        if self.runner.run_timeout is None:
            return None
        return time.monotonic() + self.runner.run_timeout * len(chunk.items)

    # --------------------------------------------------------------- completion
    def _finish_main(self, future: Any, flight_size: int) -> bool:
        """Settle one main-pool future; True when the pool broke under it."""
        chunk, _deadline = self.main_flight.pop(future)
        try:
            outcomes = future.result()
        except BrokenProcessPool:
            if flight_size == 1:
                # It had the pool to itself: definitive culprit.
                self._fail(chunk, "worker-crash")
            else:
                self.quarantine.appendleft(chunk)
            return True
        except Exception:  # worker-side dispatch failure
            self._fail(chunk, "worker-crash")
            return True
        for (index, _spec), outcome in zip(chunk.items, outcomes):
            outcome.attempts = chunk.attempt
            self.runner._record(
                index, outcome, self.results, self.writer, self.progress
            )
        return False

    def _finish_probation(self, future: Any) -> None:
        """Settle one probation future — a crash here has one suspect."""
        chunk, pool, _deadline = self.probation.pop(future)
        try:
            outcomes = future.result()
        except BrokenProcessPool:
            # It had the pool to itself: definitive culprit.
            self.recovery["worker_crashes"] += 1
            _kill_pool(pool)
            self._fail(chunk, "worker-crash")
            return
        except Exception:  # worker-side dispatch failure
            _kill_pool(pool)
            self._fail(chunk, "worker-crash")
            return
        for (index, _spec), outcome in zip(chunk.items, outcomes):
            outcome.attempts = chunk.attempt
            self.runner._record(
                index, outcome, self.results, self.writer, self.progress
            )
        self.idle_probation.append(pool)

    def _fail(self, chunk: _Chunk, kind: str) -> None:
        requeue = self.quarantine if kind == "worker-crash" else self.pending
        self.runner._handle_chunk_failure(
            chunk, kind, requeue, self.results, self.writer, self.progress
        )

    # ----------------------------------------------------------------- recovery
    def _recover_main(self, innocents_to: str) -> bool:
        """Kill + respawn the main pool; False when the sweep went serial.

        ``innocents_to`` routes the surviving in-flight chunks: after a
        crash every one is a suspect (``"quarantine"``); after a timeout
        kill they are known innocent and requeue at the front of
        ``pending`` (``"pending"``) at their current attempt.
        """
        _kill_pool(self.pool)
        self.pool = None
        target = self.quarantine if innocents_to == "quarantine" else self.pending
        for _future, (chunk, _deadline) in reversed(list(self.main_flight.items())):
            target.appendleft(chunk)
        self.main_flight.clear()
        try:
            self.pool = self.runner._make_pool()
            return True
        except Exception:  # noqa: BLE001 - degrade, don't lose the sweep
            self._drain_serial()
            return False

    def _deadline_sweep(self) -> bool:
        """Expire overdue runs; False when main recovery went serial."""
        if self.runner.run_timeout is None:
            return True
        now = time.monotonic()
        self._expire_probation(now)
        expired = [
            future
            for future, (_chunk, deadline) in self.main_flight.items()
            if deadline is not None and deadline <= now
        ]
        if not expired:
            return True
        for future in expired:
            chunk, _deadline = self.main_flight.pop(future)
            self.recovery["timeouts"] += 1
            self._fail(chunk, "timeout")
        return self._recover_main(innocents_to="pending")

    def _expire_probation(self, now: float) -> None:
        """Probation pools are independent: kill only the expired ones."""
        expired = [
            future
            for future, (_chunk, _pool, deadline) in self.probation.items()
            if deadline is not None and deadline <= now
        ]
        for future in expired:
            chunk, pool, _deadline = self.probation.pop(future)
            self.recovery["timeouts"] += 1
            _kill_pool(pool)
            self._fail(chunk, "timeout")

    def _drain_serial(self) -> None:
        """Last resort: settle probation, then run the rest in the driver."""
        runner = self.runner
        runner.last_execution_mode = "serial (process pool unavailable)"
        while self.probation:
            self._check_sweep_deadline()
            completed, _running = wait(
                set(self.probation),
                timeout=self._wait_timeout(),
                return_when=FIRST_COMPLETED,
            )
            if not completed:
                self._expire_probation(time.monotonic())
                continue
            for future in completed:
                self._finish_probation(future)
        leftovers = [
            item
            for chunk in list(self.quarantine) + list(self.pending)
            for item in chunk.items
        ]
        self.quarantine.clear()
        self.pending.clear()
        runner._run_serial(
            leftovers, self.results, self.writer, self.progress, self.deadline
        )

    # ---------------------------------------------------------------- deadlines
    def _wait_timeout(self) -> Optional[float]:
        deadlines = [
            deadline
            for _chunk, deadline in self.main_flight.values()
            if deadline is not None
        ]
        deadlines.extend(
            deadline
            for _chunk, _pool, deadline in self.probation.values()
            if deadline is not None
        )
        if self.deadline is not None:
            deadlines.append(self.deadline)
        if not deadlines:
            return None
        return max(0.01, min(deadlines) - time.monotonic())

    def _check_sweep_deadline(self) -> None:
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise _SweepDeadlineReached


# ------------------------------------------------------------------ reporting
def outcomes_table(
    outcomes: Sequence[RunOutcome],
    columns: Sequence[tuple[str, Callable[[RunOutcome], Any]]],
    title: str = "",
) -> str:
    """Render outcomes with :func:`repro.measurement.report.format_table`.

    ``columns`` is a list of ``(header, extractor)`` pairs; extractors
    receive the :class:`RunOutcome`.
    """
    headers = [header for header, _ in columns]
    rows = [[extract(outcome) for _, extract in columns] for outcome in outcomes]
    return format_table(headers, rows, title=title)


def timings_summary(outcomes: Sequence[RunOutcome]) -> dict[str, Any]:
    """Machine-readable wall-clock summary of a sweep (for the bench JSON).

    When the sweep ran with stage-stats collection, the summary also carries
    ``stage_time_shares``: the sweep-wide decode/encode seconds, the named
    delivery-pipeline stages (``defrag``, ``checksum``, ``demux``,
    ``handler``) and their shares of total wall time, with the remainder
    attributed to ``dispatch_other`` (event-loop dispatch, transmit,
    scheduling, scenario logic).  This is the field future PRs read to find
    the next bottleneck.
    """
    summary: dict[str, Any] = {
        "runs": [
            {
                "label": outcome.spec.label,
                "wall_time_seconds": round(outcome.wall_time, 6),
                "ok": outcome.ok,
            }
            for outcome in outcomes
        ],
        "total_wall_time_seconds": round(
            sum(outcome.wall_time for outcome in outcomes), 6
        ),
    }
    staged = [outcome for outcome in outcomes if outcome.stage_stats]
    if staged:
        total_wall = sum(outcome.wall_time for outcome in staged)
        decode = sum(outcome.stage_stats["decode_seconds"] for outcome in staged)
        encode = sum(outcome.stage_stats["encode_seconds"] for outcome in staged)
        stages: dict[str, dict[str, Any]] = {}
        for outcome in staged:
            for name, stats in outcome.stage_stats["stages"].items():
                merged = stages.setdefault(name, {"seconds": 0.0, "calls": 0})
                merged["seconds"] = round(merged["seconds"] + stats["seconds"], 6)
                merged["calls"] += stats["calls"]
        pipeline = {
            name: stages[name]["seconds"]
            for name in PIPELINE_STAGES + DISPATCH_STAGES + DRIVER_STAGES
            if name in stages
        }
        summary["stage_time_shares"] = {
            "stages": stages,
            **stage_shares(decode, encode, total_wall, pipeline),
        }
    return summary


def write_bench_json(
    path: str,
    microbenchmarks: Optional[dict[str, Any]] = None,
    experiments: Optional[dict[str, Any]] = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Write (or update) the machine-readable benchmark timings file.

    The file keeps one top-level document; sections passed as ``None`` are
    preserved from the existing file so microbenchmarks and end-to-end
    sweeps can be refreshed independently.
    """
    document: dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            document = {}
    document["schema"] = "repro-bench/1"
    document["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    document["python"] = platform.python_version()
    document["cpu_count"] = os.cpu_count()
    if microbenchmarks is not None:
        document["microbenchmarks"] = microbenchmarks
    if experiments is not None:
        document["experiments"] = experiments
    if extra:
        document.update(extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return document
