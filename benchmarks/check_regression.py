#!/usr/bin/env python
"""Guard against throughput regressions versus the committed bench JSON.

Compares headline throughput metrics of a fresh benchmark run against the
committed ``BENCH_netsim.json`` baseline and exits non-zero when any metric
regressed by more than the threshold (default 20%).  Metrics present in only
one of the two documents are reported but never fail the check, so adding or
renaming bench fields does not break the gate.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py
        [--baseline PATH] [--threshold 0.2] [--rounds N] [--allow-missing]
        [--history [DIR]] [--history-window N] [--history-min N]

A missing baseline is a typed, actionable error (exit code 2) unless
``--allow-missing`` is passed for fresh checkouts; a baseline whose schema
does not match :data:`EXPECTED_SCHEMA` always is.  Scheduler-noise-prone
microbenchmarks carry individual :data:`NOISE_BANDS` wider than the default
threshold so run-to-run wobble does not read as a regression.

With ``--history`` the gate is **trend-aware**: each metric compares
against the median of a rolling window of prior samples kept in a
:class:`repro.experiments.store.RunStore` under ``.bench_history/``, and
the noise band widens to the window's own observed spread
(``max(static band, 2.5 × pstdev/median)``, capped at 50%) — so one lucky
committed number can neither pin an unreachable bar nor hide a slow
drift.  Metrics with fewer than ``--history-min`` samples fall back to
the single-baseline compare, and a passing gate appends the fresh sample
to the window (``run_benchmarks.py`` does the same after refreshing the
committed JSON).

``run_benchmarks.py`` wires this in automatically: after refreshing the JSON
it diffs the new document against the previously committed one and fails the
benchmark run on regression (``--no-check`` to skip).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Any, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.experiments.store import metric_type, register_metric  # noqa: E402

#: Where the trend gate keeps its rolling metric history (a RunStore).
DEFAULT_HISTORY_DIR = os.path.join(REPO_ROOT, ".bench_history")

#: The store sweep id the history samples live under.
HISTORY_SWEEP = "bench"

#: Default rolling-window length and the minimum samples before a metric
#: switches from single-baseline to trend comparison.
DEFAULT_HISTORY_WINDOW = 10
DEFAULT_HISTORY_MIN = 3

#: Trend band = max(static band, _SPREAD_SIGMA × pstdev/median), capped.
_SPREAD_SIGMA = 2.5
_MAX_TREND_BAND = 0.50

#: Headline gated metrics, as key paths into the bench document.  The
#: comparison *direction* is no longer implied by this tuple: each dotted
#: name resolves through the store's metric-type registry
#: (:func:`repro.experiments.store.metric_type`), whose
#: ``higher_is_better`` flag says which way a regression points.
THROUGHPUT_METRICS: tuple[tuple[str, ...], ...] = (
    ("microbenchmarks", "packets_per_sec"),
    ("microbenchmarks", "pipeline_events_per_sec"),
    ("microbenchmarks", "pipeline_trusted_events_per_sec"),
    ("microbenchmarks", "dns_encode_ops_per_sec"),
    ("microbenchmarks", "dns_decode_ops_per_sec"),
    ("microbenchmarks", "dns_decode_cold_ops_per_sec"),
    ("microbenchmarks", "ntp_encode_ops_per_sec"),
    ("microbenchmarks", "ntp_decode_ops_per_sec"),
    ("microbenchmarks", "event_loop", "delivery", "fast_events_per_sec"),
    ("microbenchmarks", "event_loop", "schedule_drain", "fast_events_per_sec"),
    ("microbenchmarks", "event_loop", "timer_chain", "fast_events_per_sec"),
    ("microbenchmarks", "burst_events_per_sec"),
    ("microbenchmarks", "limiter_burst_ops_per_sec"),
    ("experiments", "table2_ntpd_p1", "result", "events_per_wall_second"),
    ("experiments", "table2_ntpd_p1_trusted", "result", "events_per_wall_second"),
    ("experiments", "population_fleet", "result", "clients_per_sec"),
)

#: Suffix → unit for the gated metric families (first match wins).
_UNIT_SUFFIXES = (
    ("clients_per_sec", "clients/sec"),
    ("packets_per_sec", "packets/sec"),
    ("events_per_wall_second", "events/sec"),
    ("events_per_sec", "events/sec"),
    ("ops_per_sec", "ops/sec"),
)

for _path in THROUGHPUT_METRICS:
    _name = ".".join(_path)
    register_metric(
        _name,
        unit=next(
            (unit for suffix, unit in _UNIT_SUFFIXES if _name.endswith(suffix)), ""
        ),
        higher_is_better=True,
    )
del _path, _name

#: Default tolerated fractional slowdown per metric.
DEFAULT_THRESHOLD = 0.20

#: Per-metric noise bands (dotted metric name → tolerated fractional
#: slowdown), overriding the global threshold.  The sub-millisecond
#: event-loop and rate-limiter microbenches are dominated by OS scheduling
#: jitter and CPU frequency state, so they wobble far more run-to-run than
#: the long pipeline and end-to-end measurements; giving them a wider band
#: keeps the gate sensitive where measurements are stable without turning
#: scheduler noise into false regressions.  ``--threshold`` only moves
#: metrics NOT listed here.
NOISE_BANDS: dict[str, float] = {
    "microbenchmarks.event_loop.delivery.fast_events_per_sec": 0.30,
    "microbenchmarks.event_loop.schedule_drain.fast_events_per_sec": 0.30,
    "microbenchmarks.event_loop.timer_chain.fast_events_per_sec": 0.30,
    "microbenchmarks.limiter_burst_ops_per_sec": 0.30,
    "microbenchmarks.dns_decode_cold_ops_per_sec": 0.30,
    # A sub-second fleet cell: wall time wobbles with worker start-up.
    "experiments.population_fleet.result.clients_per_sec": 0.30,
}

#: The bench document schema this checker understands (see
#: ``repro.experiments.runner.write_bench_json``).
EXPECTED_SCHEMA = "repro-bench/1"


class BaselineError(RuntimeError):
    """The committed benchmark baseline cannot be used for comparison."""


class BaselineMissingError(BaselineError):
    """No baseline file exists at the expected path."""


class BaselineSchemaError(BaselineError):
    """The baseline file exists but is not a bench document we understand."""


def load_baseline(path: str) -> dict[str, Any]:
    """Load and validate the committed baseline, raising typed errors.

    * :class:`BaselineMissingError` when the file does not exist, and
    * :class:`BaselineSchemaError` when it is not JSON, not an object,
      declares a schema other than :data:`EXPECTED_SCHEMA`, or carries
      none of the sections the metric paths point into.
    """
    if not os.path.exists(path):
        raise BaselineMissingError(
            f"no benchmark baseline at {path} — run `make bench-refresh` to "
            "create one, or pass --allow-missing to skip the comparison"
        )
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise BaselineSchemaError(
            f"baseline {path} is not valid JSON ({exc}); regenerate it with "
            "`make bench-refresh`"
        ) from exc
    if not isinstance(document, dict):
        raise BaselineSchemaError(
            f"baseline {path} is {type(document).__name__}, expected a JSON "
            "object; regenerate it with `make bench-refresh`"
        )
    found_schema = document.get("schema")
    if found_schema != EXPECTED_SCHEMA:
        raise BaselineSchemaError(
            f"baseline {path} declares schema {found_schema!r}, this checker "
            f"understands {EXPECTED_SCHEMA!r}; regenerate it with "
            "`make bench-refresh`"
        )
    if "microbenchmarks" not in document and "experiments" not in document:
        raise BaselineSchemaError(
            f"baseline {path} has neither a 'microbenchmarks' nor an "
            "'experiments' section — nothing the metric paths can compare; "
            "regenerate it with `make bench-refresh`"
        )
    return document


def extract(document: dict[str, Any], path: tuple[str, ...]) -> Optional[float]:
    """Walk ``path`` into ``document``; None when any key is missing."""
    node: Any = document
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def goodness_change(name: str, reference: float, new: float) -> float:
    """Signed fractional change where **negative always means worse**.

    Plain ``(new - reference) / reference`` when the metric's registered
    type says higher is better; negated for lower-is-better metrics (a
    latency increase reads as a negative change).  Every comparison site
    then tests ``change < -band`` regardless of direction — the direction
    lives in the store's metric-type registry, not in this file.
    """
    change = (new - reference) / reference
    return change if metric_type(name).higher_is_better else -change


def compare(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[str], list[str]]:
    """Diff the two documents; returns ``(regressions, notes)``.

    A regression is a metric whose fresh value is more than its noise band
    *worse* than the baseline — the direction comes from the metric's
    registered type (:func:`goodness_change`), the band from
    :data:`NOISE_BANDS` for the scheduler-sensitive microbenches and
    ``threshold`` for everything else.  Printed percentages are
    goodness-signed: ``+`` is always an improvement.  Notes cover skipped
    metrics and improvements.
    """
    regressions: list[str] = []
    notes: list[str] = []
    for path in THROUGHPUT_METRICS:
        name = ".".join(path)
        band = NOISE_BANDS.get(name, threshold)
        old = extract(baseline, path)
        new = extract(fresh, path)
        if old is None or new is None or old <= 0:
            notes.append(f"skipped {name} (missing in baseline or fresh run)")
            continue
        change = goodness_change(name, old, new)
        if change < -band:
            regressions.append(
                f"{name}: {old:,.0f} -> {new:,.0f} ({change:+.1%}, "
                f"noise band -{band:.0%})"
            )
        else:
            notes.append(f"{name}: {old:,.0f} -> {new:,.0f} ({change:+.1%})")
    return regressions, notes


# ------------------------------------------------------------ trend-aware gate
def collect_history(
    root: str = DEFAULT_HISTORY_DIR, window: int = DEFAULT_HISTORY_WINDOW
) -> list[dict[str, Any]]:
    """The most recent ``window`` metric samples from the history store."""
    from repro.experiments.store import RunStore

    store = RunStore(root)
    if HISTORY_SWEEP not in store.sweeps():
        return []
    samples = [
        record
        for record in store.records(HISTORY_SWEEP)
        if isinstance(record.get("metrics"), dict)
    ]
    return samples[-window:] if window > 0 else samples


def append_history(
    fresh: dict[str, Any], root: str = DEFAULT_HISTORY_DIR
) -> dict[str, float]:
    """Durably record one bench document's headline metrics in the store."""
    from repro.experiments.store import RunStore, git_revision

    metrics: dict[str, float] = {}
    for path in THROUGHPUT_METRICS:
        value = extract(fresh, path)
        if value is not None:
            metrics[".".join(path)] = value
    store = RunStore(root)
    if HISTORY_SWEEP in store.sweeps():
        writer = store.open_sweep(HISTORY_SWEEP)
    else:
        writer = store.begin_sweep("bench", sweep_id=HISTORY_SWEEP)
    try:
        writer.append_record(
            {
                "kind": "bench-sample",
                "metrics": metrics,
                "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "git_revision": git_revision(),
            }
        )
    finally:
        writer.close()
    return metrics


def _metric_samples(history: list[dict[str, Any]], name: str) -> list[float]:
    values: list[float] = []
    for sample in history:
        value = sample["metrics"].get(name)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            values.append(float(value))
    return values


def trend_compare(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    history: list[dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
    min_samples: int = DEFAULT_HISTORY_MIN,
) -> tuple[list[str], list[str]]:
    """Diff ``fresh`` against the rolling history; ``(regressions, notes)``.

    Each metric compares against the **median** of its history window,
    with a noise band widened to the window's own observed run-to-run
    spread — a metric that wobbles 15% between identical runs gets at
    least a 37.5% band (2.5σ), while a rock-steady one keeps its static
    band.  Metrics with fewer than ``min_samples`` recorded samples fall
    back to the single-baseline rule of :func:`compare`.
    """
    regressions: list[str] = []
    notes: list[str] = []
    for path in THROUGHPUT_METRICS:
        name = ".".join(path)
        static_band = NOISE_BANDS.get(name, threshold)
        new = extract(fresh, path)
        if new is None:
            notes.append(f"skipped {name} (missing in fresh run)")
            continue
        values = _metric_samples(history, name)
        if len(values) < min_samples:
            old = extract(baseline, path)
            if old is None or old <= 0:
                notes.append(
                    f"skipped {name} (missing in baseline, "
                    f"{len(values)} history sample(s))"
                )
                continue
            change = goodness_change(name, old, new)
            if change < -static_band:
                regressions.append(
                    f"{name}: {old:,.0f} -> {new:,.0f} ({change:+.1%}, "
                    f"noise band -{static_band:.0%}, single baseline — only "
                    f"{len(values)} history sample(s))"
                )
            else:
                notes.append(
                    f"{name}: {old:,.0f} -> {new:,.0f} ({change:+.1%}, "
                    "single baseline)"
                )
            continue
        median = statistics.median(values)
        if median <= 0:
            notes.append(f"skipped {name} (non-positive trend median)")
            continue
        spread = statistics.pstdev(values) / median
        band = min(_MAX_TREND_BAND, max(static_band, _SPREAD_SIGMA * spread))
        change = goodness_change(name, median, new)
        line = (
            f"{name}: median[{len(values)}] {median:,.0f} -> {new:,.0f} "
            f"({change:+.1%}, trend band -{band:.0%})"
        )
        if change < -band:
            regressions.append(line)
        else:
            notes.append(line)
    return regressions, notes


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=os.path.join(REPO_ROOT, "BENCH_netsim.json"),
        help="committed benchmark JSON to compare against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="tolerated fractional slowdown per metric (default 0.2)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="best-of rounds for the fresh run"
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="exit 0 when no baseline exists (fresh checkouts / first run)",
    )
    parser.add_argument(
        "--history",
        nargs="?",
        const=DEFAULT_HISTORY_DIR,
        default=None,
        metavar="DIR",
        help=(
            "trend-aware mode: compare against the rolling sample window in "
            "this run store (default .bench_history/) and record the fresh "
            "sample when the gate passes"
        ),
    )
    parser.add_argument(
        "--history-window",
        type=int,
        default=DEFAULT_HISTORY_WINDOW,
        help=f"rolling window length (default {DEFAULT_HISTORY_WINDOW})",
    )
    parser.add_argument(
        "--history-min",
        type=int,
        default=DEFAULT_HISTORY_MIN,
        help=(
            "samples required before a metric trusts its trend instead of "
            f"the single baseline (default {DEFAULT_HISTORY_MIN})"
        ),
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_baseline(args.baseline)
    except BaselineMissingError as exc:
        if args.allow_missing:
            print(f"{exc}; nothing to compare")
            return 0
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BaselineSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from bench_micro_netsim import run_micro_benchmarks
    from run_benchmarks import (
        refine_timing,
        run_end_to_end,
        run_population_fleet,
        run_trusted_fabric,
    )

    print(f"running fresh benchmarks (best of {args.rounds})...", flush=True)
    # End-to-end first, microbenchmarks second — same order as
    # run_benchmarks.py, so fresh and committed numbers are measured under
    # the same in-process conditions.  The end-to-end timings are
    # re-sampled after the micro suite (refine_timing) so one
    # host-scheduling stall cannot read as a false regression.
    end_to_end = run_end_to_end(max_workers=1)
    trusted = run_trusted_fabric(1)
    population = run_population_fleet(1)
    micro = run_micro_benchmarks(rounds=args.rounds)
    refine_timing(end_to_end, "table2_runtime_attack", 1)
    refine_timing(trusted, "table2_trusted_fabric", 1)
    fresh = {
        "experiments": {
            "table2_ntpd_p1": end_to_end,
            "table2_ntpd_p1_trusted": trusted,
            "population_fleet": population,
        },
        "microbenchmarks": micro,
    }
    if args.history is not None:
        history = collect_history(args.history, args.history_window)
        print(
            f"trend gate: {len(history)} history sample(s) in {args.history} "
            f"(window {args.history_window}, min {args.history_min})"
        )
        regressions, notes = trend_compare(
            baseline,
            fresh,
            history,
            threshold=args.threshold,
            min_samples=args.history_min,
        )
    else:
        regressions, notes = compare(baseline, fresh, threshold=args.threshold)
    for note in notes:
        print(f"  ok: {note}")
    for regression in regressions:
        print(f"  REGRESSION: {regression}")
    if regressions:
        print(f"{len(regressions)} metric(s) regressed beyond {args.threshold:.0%}")
        return 1
    if args.history is not None:
        append_history(fresh, args.history)
        print(f"recorded fresh sample into {args.history}")
    print("no throughput regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
