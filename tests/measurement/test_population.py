"""Tests for the synthetic population generators."""

import numpy as np

from repro.measurement.population import (
    PAPER_CACHED_FRACTIONS,
    ResolverPopulationParameters,
    SharedResolverPopulationParameters,
    WebClientPopulationParameters,
    generate_nameservers,
    generate_open_resolvers,
    generate_pool_nameservers,
    generate_shared_resolvers,
    generate_web_clients,
)


class TestOpenResolverPopulation:
    def test_size_and_unique_addresses(self):
        resolvers = generate_open_resolvers(ResolverPopulationParameters(size=500))
        assert len(resolvers) == 500
        assert len({r.address for r in resolvers}) == 500

    def test_reproducible_with_seeded_rng(self):
        a = generate_open_resolvers(ResolverPopulationParameters(size=100), np.random.default_rng(1))
        b = generate_open_resolvers(ResolverPopulationParameters(size=100), np.random.default_rng(1))
        assert [r.cached_records for r in a] == [r.cached_records for r in b]

    def test_cached_ntp_resolver_fraction_near_target(self):
        resolvers = generate_open_resolvers(ResolverPopulationParameters(size=20_000))
        with_pool_a = sum(1 for r in resolvers if "pool.ntp.org/A" in r.cached_records)
        fraction = with_pool_a / len(resolvers)
        assert abs(fraction - PAPER_CACHED_FRACTIONS["pool.ntp.org/A"]) < 0.03

    def test_cached_entries_have_valid_ages(self):
        resolvers = generate_open_resolvers(ResolverPopulationParameters(size=1000))
        for resolver in resolvers:
            for age in resolver.cached_records.values():
                assert 0 <= age <= 150
            ttl = resolver.cached_remaining_ttl("pool.ntp.org/A")
            if ttl is not None:
                assert 0 <= ttl <= 150

    def test_ntp_client_resolver_property(self):
        resolvers = generate_open_resolvers(ResolverPopulationParameters(size=2000))
        assert any(r.is_ntp_client_resolver() for r in resolvers)
        assert any(not r.is_ntp_client_resolver() for r in resolvers)


class TestWebClientPopulation:
    def test_regional_counts_match_parameters(self):
        params = WebClientPopulationParameters()
        clients = generate_web_clients(params)
        for region, count in params.clients_per_region.items():
            assert sum(1 for c in clients if c.region == region) == count

    def test_google_clients_do_not_accept_tiny_fragments(self):
        clients = generate_web_clients()
        for client in clients:
            if client.uses_google_dns:
                assert 68 not in client.accepts_fragment_sizes

    def test_fragment_acceptance_is_monotone_in_size(self):
        clients = generate_web_clients()
        for client in clients:
            if 68 in client.accepts_fragment_sizes:
                assert 296 in client.accepts_fragment_sizes
                assert 1280 in client.accepts_fragment_sizes

    def test_datasets_assigned_by_region(self):
        clients = generate_web_clients()
        assert all(
            (c.dataset == 2) == (c.region == "Northern America") for c in clients
        )


class TestNameserverPopulation:
    def test_ntp_domains_present_with_single_signed_one(self):
        specs = generate_nameservers()
        ntp = [s for s in specs if s.is_ntp_domain]
        assert len(ntp) == 10
        signed = [s.domain for s in ntp if s.supports_dnssec]
        assert signed == ["time.cloudflare.com"]

    def test_fragmenting_unsigned_fraction_near_paper(self):
        specs = generate_nameservers()
        attackable = sum(1 for s in specs if s.honors_pmtud and not s.supports_dnssec)
        assert abs(attackable / len(specs) - 0.0766) < 0.01

    def test_pool_nameservers_generator(self):
        specs = generate_pool_nameservers()
        assert len(specs) == 30
        assert sum(1 for s in specs if s.honors_pmtud) == 16
        assert not any(s.supports_dnssec for s in specs)


class TestSharedResolverPopulation:
    def test_category_fractions_near_paper(self):
        specs = generate_shared_resolvers(SharedResolverPopulationParameters(size=18_668))
        open_fraction = sum(1 for s in specs if s.is_open_resolver) / len(specs)
        smtp_fraction = sum(1 for s in specs if s.smtp_server_in_slash24) / len(specs)
        assert abs(open_fraction - 0.025) < 0.01
        assert abs(smtp_fraction - 0.115) < 0.02
