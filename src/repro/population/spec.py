"""Declarative, layered population specifications.

A :class:`PopulationSpec` describes a client fleet the way
``ihmeuw/pseudo_people`` describes a synthetic dataset: a layered config —
market-share mixes, churn schedules, link/fault regime mixes, a resolver
topology — plus per-attribute noise layers, all frozen and hashable so a
spec can key caches and ride inside picklable
:class:`~repro.experiments.runner.RunSpec` parameters (as canonical JSON).

Specs load from TOML (:func:`load_spec`, via stdlib ``tomllib``) or JSON
and round-trip through :meth:`PopulationSpec.to_json` /
:meth:`PopulationSpec.from_json`.  The default client mix comes from the
paper-reported marginals in :mod:`repro.measurement.population` — the
documented single source of default shares (a cross-check test keeps the
per-class ``pool_usage_share`` attributes in sync with it).

Nothing here touches a simulator: realising a spec into concrete clients
is :mod:`repro.population.generate`'s job.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Union

from repro.measurement.population import default_client_mix

#: Attributes noise layers may perturb (see :mod:`repro.population.generate`).
NOISE_ATTRIBUTES = ("poll_interval", "initial_clock_offset", "join_time")
#: Supported noise distributions.
NOISE_KINDS = ("uniform", "normal", "lognormal")
#: Supported fault-regime kinds (mapped onto :mod:`repro.netsim.faults`).
FAULT_KINDS = (
    "clean",
    "bursty_loss",
    "jitter",
    "duplication",
    "corruption",
    "partition",
    "latency_spike",
)
#: Kinds driven by a scheduled window rather than a per-packet probability.
WINDOWED_FAULT_KINDS = ("partition", "latency_spike")

#: A weighted mix: ``((name, weight), ...)`` in declaration order.
Mix = tuple[tuple[str, float], ...]


class SpecError(ValueError):
    """A population spec is internally inconsistent or unloadable."""


def _as_mix(value: Any, what: str) -> Mix:
    """Coerce a mapping / pair-sequence into a validated ``Mix`` tuple."""
    if isinstance(value, Mapping):
        pairs = list(value.items())
    else:
        try:
            pairs = [(name, weight) for name, weight in value]
        except (TypeError, ValueError) as exc:
            raise SpecError(
                f"{what} must be a mapping or (name, weight) pairs: {value!r}"
            ) from exc
    if not pairs:
        raise SpecError(f"{what} must not be empty")
    mix = []
    seen = set()
    for name, weight in pairs:
        name = str(name)
        weight = float(weight)
        if name in seen:
            raise SpecError(f"{what} lists {name!r} twice")
        if weight < 0:
            raise SpecError(f"{what} weight for {name!r} is negative: {weight}")
        seen.add(name)
        mix.append((name, weight))
    if not any(weight for _, weight in mix):
        raise SpecError(f"{what} weights sum to zero")
    return tuple(mix)


@dataclass(frozen=True)
class NoiseLayer:
    """One seeded perturbation of a generated attribute.

    ``poll_interval`` noise applies multiplicatively (clipped positive);
    ``initial_clock_offset`` and ``join_time`` noise applies additively
    (join times clipped at zero).  Layers stack in declaration order, each
    drawing from its own named stream.
    """

    attribute: str
    kind: str = "uniform"
    scale: float = 0.0

    def __post_init__(self) -> None:
        if self.attribute not in NOISE_ATTRIBUTES:
            raise SpecError(
                f"unknown noise attribute {self.attribute!r}; "
                f"expected one of {NOISE_ATTRIBUTES}"
            )
        if self.kind not in NOISE_KINDS:
            raise SpecError(
                f"unknown noise kind {self.kind!r}; expected one of {NOISE_KINDS}"
            )
        if self.scale < 0:
            raise SpecError(f"noise scale must be >= 0, got {self.scale}")


@dataclass(frozen=True)
class ChurnSpec:
    """Join/leave schedule shape; the all-zero default is a static fleet."""

    #: Fraction of clients that boot after t=0 (uniform over ``join_window``).
    late_join_fraction: float = 0.0
    join_window: float = 600.0
    #: Fraction of clients that stop mid-run.
    leave_fraction: float = 0.0
    #: Leaves happen at ``leave_after + U(0, leave_window)`` (clamped to
    #: strictly after the client's own join).
    leave_after: float = 1800.0
    leave_window: float = 600.0

    def __post_init__(self) -> None:
        for name in ("late_join_fraction", "leave_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SpecError(f"{name} must be in [0, 1], got {value}")
        for name in ("join_window", "leave_after", "leave_window"):
            if getattr(self, name) < 0:
                raise SpecError(f"{name} must be >= 0")

    @property
    def static(self) -> bool:
        return self.late_join_fraction == 0.0 and self.leave_fraction == 0.0


@dataclass(frozen=True)
class LinkProfileSpec:
    """Latency/loss class for a slice of the population's access links."""

    name: str
    latency: float = 0.01
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise SpecError(f"link latency must be >= 0, got {self.latency}")
        if not 0.0 <= self.loss < 1.0:
            raise SpecError(f"link loss must be in [0, 1), got {self.loss}")


#: Built-in link classes; ``default`` means "leave the testbed link alone"
#: (which preserves the compiled fault-free fast paths exactly).
BUILTIN_LINK_PROFILES: dict[str, LinkProfileSpec] = {
    "default": LinkProfileSpec("default"),
    "broadband": LinkProfileSpec("broadband", latency=0.02),
    "mobile": LinkProfileSpec("mobile", latency=0.06, loss=0.01),
    "satellite": LinkProfileSpec("satellite", latency=0.3, loss=0.005),
}


@dataclass(frozen=True)
class FaultRegimeSpec:
    """Named fault environment mapped onto :mod:`repro.netsim.faults`.

    ``clean`` attaches nothing (fault-free fast paths); ``bursty_loss``
    becomes a Gilbert–Elliott channel entering its bad state with
    ``probability`` and dropping with ``magnitude`` (default 0.8);
    ``jitter`` becomes reorder jitter with ``probability`` and max extra
    delay ``magnitude`` (default 0.2 s); ``duplication`` duplicates with
    ``probability``; ``corruption`` flips one payload bit with
    ``probability`` (caught by the real checksum-verify paths).

    The windowed kinds (:data:`WINDOWED_FAULT_KINDS`) are scheduled, not
    probabilistic: ``partition`` blackholes the link for ``[start,
    start + duration)``; ``latency_spike`` adds ``magnitude`` seconds
    (default 0.25) of extra latency over the same window.  In a fleet
    spec the window is on the simulator clock; inside a chaos phase
    (:mod:`repro.population.chaos`) ``start`` is an offset into the phase
    and ``duration == 0`` means "the rest of the phase".
    """

    name: str
    kind: str = "clean"
    probability: float = 0.0
    magnitude: float = 0.0
    start: float = 0.0
    duration: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise SpecError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise SpecError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.magnitude < 0:
            raise SpecError(f"fault magnitude must be >= 0, got {self.magnitude}")
        if self.start < 0 or self.duration < 0:
            raise SpecError(
                f"fault window must be >= 0, got start={self.start} "
                f"duration={self.duration}"
            )


#: Built-in fault regimes usable in ``fault_mix`` without declaring them.
BUILTIN_FAULT_REGIMES: dict[str, FaultRegimeSpec] = {
    "clean": FaultRegimeSpec("clean"),
    "bursty": FaultRegimeSpec("bursty", kind="bursty_loss", probability=0.05),
    "jittery": FaultRegimeSpec("jittery", kind="jitter", probability=0.1),
}


@dataclass(frozen=True)
class ResolverTopology:
    """Resolver-side posture shared by the whole fleet."""

    validates_dnssec: bool = False
    drops_fragments: bool = False


def _default_client_mix() -> Mix:
    return tuple(default_client_mix().items())


@dataclass(frozen=True)
class PopulationSpec:
    """The full layered description of one simulated client population.

    Every field is declarative — a spec never references live simulator
    objects — and the whole structure is frozen/hashable, so specs key
    caches directly and serialise canonically (:meth:`to_json`,
    :meth:`digest`).  Generation (:func:`repro.population.generate.
    generate_fleet`) is a pure function of ``(spec, seed)``.
    """

    size: int = 1
    #: Client-type market shares over :data:`repro.ntp.clients.
    #: CLIENT_REGISTRY` names; defaults to the renormalised paper marginals.
    client_mix: Mix = field(default_factory=_default_client_mix)
    #: Half-width of the uniform per-client poll-interval multiplier
    #: (0 = every client polls at its model's default cadence).
    poll_jitter: float = 0.0
    churn: ChurnSpec = ChurnSpec()
    link_mix: Mix = (("default", 1.0),)
    link_profiles: tuple[LinkProfileSpec, ...] = ()
    fault_mix: Mix = (("clean", 1.0),)
    fault_regimes: tuple[FaultRegimeSpec, ...] = ()
    resolver: ResolverTopology = ResolverTopology()
    noise_layers: tuple[NoiseLayer, ...] = ()
    pool_size: int = 48
    pool_rate_limit_fraction: float = 1.0
    attack: str = "P1"
    warmup_seconds: float = 1500.0
    max_duration_hours: float = 3.0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise SpecError(f"population size must be >= 1, got {self.size}")
        if self.pool_size < 1:
            raise SpecError(f"pool_size must be >= 1, got {self.pool_size}")
        if not 0.0 <= self.pool_rate_limit_fraction <= 1.0:
            raise SpecError(
                "pool_rate_limit_fraction must be in [0, 1], got "
                f"{self.pool_rate_limit_fraction}"
            )
        if self.attack not in ("P1", "P2"):
            raise SpecError(f"attack must be 'P1' or 'P2', got {self.attack!r}")
        if not 0.0 <= self.poll_jitter < 1.0:
            raise SpecError(f"poll_jitter must be in [0, 1), got {self.poll_jitter}")
        if self.warmup_seconds < 0 or self.max_duration_hours <= 0:
            raise SpecError("warmup_seconds must be >= 0 and max_duration_hours > 0")
        object.__setattr__(self, "client_mix", _as_mix(self.client_mix, "client_mix"))
        object.__setattr__(self, "link_mix", _as_mix(self.link_mix, "link_mix"))
        object.__setattr__(self, "fault_mix", _as_mix(self.fault_mix, "fault_mix"))
        object.__setattr__(self, "link_profiles", tuple(self.link_profiles))
        object.__setattr__(self, "fault_regimes", tuple(self.fault_regimes))
        object.__setattr__(self, "noise_layers", tuple(self.noise_layers))
        from repro.ntp.clients import CLIENT_REGISTRY

        for name, _weight in self.client_mix:
            if name not in CLIENT_REGISTRY:
                known = ", ".join(sorted(CLIENT_REGISTRY))
                raise SpecError(
                    f"unknown client type {name!r} in client_mix; known: {known}"
                )
        profiles = self.link_profile_table()
        for name, _weight in self.link_mix:
            if name not in profiles:
                raise SpecError(f"link_mix references undeclared profile {name!r}")
        regimes = self.fault_regime_table()
        for name, _weight in self.fault_mix:
            if name not in regimes:
                raise SpecError(f"fault_mix references undeclared regime {name!r}")

    # --------------------------------------------------------------- lookups
    def effective_client_mix(self) -> dict[str, float]:
        """Client shares renormalised into a probability distribution."""
        total = sum(weight for _, weight in self.client_mix)
        return {name: weight / total for name, weight in self.client_mix}

    def link_profile_table(self) -> dict[str, LinkProfileSpec]:
        """Built-in link profiles overlaid with the spec's own declarations."""
        table = dict(BUILTIN_LINK_PROFILES)
        table.update({profile.name: profile for profile in self.link_profiles})
        return table

    def fault_regime_table(self) -> dict[str, FaultRegimeSpec]:
        """Built-in fault regimes overlaid with the spec's own declarations."""
        table = dict(BUILTIN_FAULT_REGIMES)
        table.update({regime.name: regime for regime in self.fault_regimes})
        return table

    # --------------------------------------------------------- serialisation
    def to_dict(self) -> dict[str, Any]:
        return {
            "size": self.size,
            "client_mix": [[name, weight] for name, weight in self.client_mix],
            "poll_jitter": self.poll_jitter,
            "churn": {
                f.name: getattr(self.churn, f.name) for f in fields(self.churn)
            },
            "link_mix": [[name, weight] for name, weight in self.link_mix],
            "link_profiles": [
                {"name": p.name, "latency": p.latency, "loss": p.loss}
                for p in self.link_profiles
            ],
            "fault_mix": [[name, weight] for name, weight in self.fault_mix],
            "fault_regimes": [
                {
                    "name": r.name,
                    "kind": r.kind,
                    "probability": r.probability,
                    "magnitude": r.magnitude,
                    "start": r.start,
                    "duration": r.duration,
                }
                for r in self.fault_regimes
            ],
            "resolver": {
                "validates_dnssec": self.resolver.validates_dnssec,
                "drops_fragments": self.resolver.drops_fragments,
            },
            "noise_layers": [
                {"attribute": n.attribute, "kind": n.kind, "scale": n.scale}
                for n in self.noise_layers
            ],
            "pool_size": self.pool_size,
            "pool_rate_limit_fraction": self.pool_rate_limit_fraction,
            "attack": self.attack,
            "warmup_seconds": self.warmup_seconds,
            "max_duration_hours": self.max_duration_hours,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "PopulationSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(document) - known
        if unknown:
            raise SpecError(f"unknown population spec fields: {sorted(unknown)}")
        kwargs: dict[str, Any] = dict(document)
        if "churn" in kwargs:
            kwargs["churn"] = ChurnSpec(**dict(kwargs["churn"]))
        if "link_profiles" in kwargs:
            kwargs["link_profiles"] = tuple(
                LinkProfileSpec(**dict(p)) for p in kwargs["link_profiles"]
            )
        if "fault_regimes" in kwargs:
            kwargs["fault_regimes"] = tuple(
                FaultRegimeSpec(**dict(r)) for r in kwargs["fault_regimes"]
            )
        if "resolver" in kwargs:
            kwargs["resolver"] = ResolverTopology(**dict(kwargs["resolver"]))
        if "noise_layers" in kwargs:
            kwargs["noise_layers"] = tuple(
                NoiseLayer(**dict(n)) for n in kwargs["noise_layers"]
            )
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON (sorted keys) — the form carried in run specs."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "PopulationSpec":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"population spec is not valid JSON: {exc}") from exc
        if not isinstance(document, dict):
            raise SpecError("population spec JSON must be an object")
        return cls.from_dict(document)

    def digest(self) -> str:
        """Content hash of the canonical serialisation (stable across runs)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:16]


def load_spec(path: Union[str, os.PathLike]) -> PopulationSpec:
    """Load a spec from a ``.toml`` or JSON file.

    TOML documents may nest everything under a ``[population]`` table (the
    conventional layout) or declare the fields at top level.
    """
    text_path = str(path)
    if text_path.endswith(".toml"):
        import tomllib

        with open(text_path, "rb") as handle:
            document = tomllib.load(handle)
        if "population" in document and isinstance(document["population"], dict):
            document = document["population"]
        return PopulationSpec.from_dict(document)
    with open(text_path, "r", encoding="utf-8") as handle:
        return PopulationSpec.from_json(handle.read())


__all__ = [
    "BUILTIN_FAULT_REGIMES",
    "BUILTIN_LINK_PROFILES",
    "ChurnSpec",
    "FAULT_KINDS",
    "WINDOWED_FAULT_KINDS",
    "FaultRegimeSpec",
    "LinkProfileSpec",
    "Mix",
    "NOISE_ATTRIBUTES",
    "NOISE_KINDS",
    "NoiseLayer",
    "PopulationSpec",
    "ResolverTopology",
    "SpecError",
    "load_spec",
]
