"""The run-time attack (paper section IV-B, Figure 3; evaluated in Table II).

A running NTP client already holds associations to real servers, so a
poisoned DNS cache alone changes nothing.  The attack therefore combines two
ingredients:

1. **Poison the resolver's cache** for the pool domain (either with the
   fragmentation primitive of section III, or — as in the paper's own lab
   evaluation of the clients — with a resolver that is reconfigured/poisoned
   directly, since the poisoning step is evaluated separately).
2. **Remove the victim's existing associations** by keeping its servers
   rate-limiting it (:mod:`repro.core.rate_limit_abuse`).  Once enough
   associations die, the client issues a new DNS lookup, receives the
   attacker's addresses from the poisoned cache, and adopts the attacker's
   time.

Two knowledge scenarios from the paper's probability analysis are supported:

* **P1** — the attacker knows (or enumerates) the victim's upstream servers
  in advance and attacks all of them concurrently.
* **P2** — the attacker discovers the upstream servers one at a time through
  the victim's reference-id leak, so removals happen sequentially and the
  attack takes correspondingly longer (47 vs 17 minutes for ntpd in the
  paper's lab).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.core.attacker import Attacker
from repro.core.rate_limit_abuse import AssociationRemover
from repro.core.server_discovery import discover_via_refid_leak
from repro.dns.records import a_record
from repro.dns.resolver import RecursiveResolver
from repro.netsim.simulator import Simulator
from repro.ntp.clients.base import BaseNTPClient
from repro.perf import STAGES, perf_counter


class RunTimeScenario(Enum):
    """Attacker knowledge about the victim's upstream servers."""

    P1_KNOWN_SERVERS = "P1"
    P2_REFID_DISCOVERY = "P2"


@dataclass
class RunTimeAttackResult:
    """Outcome of one run-time attack experiment."""

    scenario: RunTimeScenario
    client_name: str
    success: bool
    attack_duration: Optional[float]
    target_shift: float
    clock_shift_achieved: float
    associations_removed: int
    runtime_dns_lookups: int
    spoofed_queries_sent: int

    @property
    def attack_duration_minutes(self) -> Optional[float]:
        """Duration in minutes, the unit used by Table II."""
        if self.attack_duration is None:
            return None
        return self.attack_duration / 60.0


@dataclass
class RunTimeAttack:
    """Orchestrates a run-time attack against one victim client."""

    attacker: Attacker
    simulator: Simulator
    resolver: RecursiveResolver
    victim: BaseNTPClient
    scenario: RunTimeScenario = RunTimeScenario.P1_KNOWN_SERVERS
    #: Servers the attacker will keep rate-limiting in scenario P1 (normally
    #: the enumerated pool list or the victim's configured servers).
    known_server_list: list[str] = field(default_factory=list)
    #: TTL of the directly planted records.  It must outlive the association
    #: removal phase (slow clients take over an hour), and a real attacker
    #: would simply re-poison; a day keeps the model simple.
    poisoned_ttl: int = 86400
    refid_probe_interval: float = 32.0
    check_interval: float = 30.0
    max_duration: float = 3600.0 * 3
    query_interval: float = 2.0
    remover: Optional[AssociationRemover] = None
    _started_at: float = 0.0
    _finished: bool = False
    _result: Optional[RunTimeAttackResult] = None
    _stop_refid: Optional[object] = None

    # ------------------------------------------------------------- poisoning
    def poison_resolver_directly(self) -> None:
        """Plant the malicious pool records straight into the resolver cache.

        This mirrors the paper's client evaluation setup (section V-A2): the
        clients were tested against "a DNS resolver reconfigured after the
        clients had done their initial boot-time DNS lookups", because the
        cache-poisoning step itself is evaluated separately.  The end-to-end
        fragmentation path is exercised by :class:`BootTimeAttack` and the
        poisoning benchmarks.
        """
        domains = set(self.victim.config.pool_domains)
        records = []
        for domain in domains:
            for address in self.attacker.redirect_addresses(4):
                records.append(a_record(domain, address, ttl=self.poisoned_ttl))
        self.resolver.cache.store(records, self.simulator.now)

    # ------------------------------------------------------------ execution
    def start(self) -> None:
        """Begin the association-removal phase of the attack."""
        self._started_at = self.simulator.now
        self.remover = AssociationRemover(
            self.attacker,
            self.simulator,
            victim_ip=self.victim.host.ip,
            query_interval=self.query_interval,
        )
        if self.scenario is RunTimeScenario.P1_KNOWN_SERVERS:
            targets = self.known_server_list or list(self.victim.usable_server_ips())
            self.remover.target_many([t for t in targets if not self.attacker.owns(t)])
        else:
            self._stop_refid = discover_via_refid_leak(
                self.attacker,
                self.simulator,
                victim_ip=self.victim.host.ip,
                on_peer=self._on_discovered_peer,
                probe_interval=self.refid_probe_interval,
            )
        self.simulator.schedule(self.check_interval, self._check_progress, label="runtime-check")

    def _on_discovered_peer(self, peer_ip: str) -> None:
        if self.remover is not None and not self.attacker.owns(peer_ip):
            self.remover.target(peer_ip)

    def _check_progress(self) -> None:
        started = perf_counter() if STAGES.enabled else 0.0
        try:
            if self._finished:
                return
            elapsed = self.simulator.now - self._started_at
            shift = self.victim.clock_error()
            target = self.attacker.resources.time_shift
            if abs(shift - target) <= max(1.0, abs(target) * 0.1):
                self._finish(success=True, duration=elapsed)
                return
            if elapsed >= self.max_duration:
                self._finish(success=False, duration=None)
                return
            self.simulator.schedule(
                self.check_interval, self._check_progress, label="runtime-check"
            )
        finally:
            if started:
                STAGES.add("progress_check", perf_counter() - started)

    def _finish(self, success: bool, duration: Optional[float]) -> None:
        self._finished = True
        if self.remover is not None:
            self.remover.stop()
        if callable(self._stop_refid):
            self._stop_refid()
        self._result = RunTimeAttackResult(
            scenario=self.scenario,
            client_name=self.victim.client_name,
            success=success,
            attack_duration=duration,
            target_shift=self.attacker.resources.time_shift,
            clock_shift_achieved=self.victim.clock_error(),
            associations_removed=self.victim.stats.associations_removed,
            runtime_dns_lookups=self.victim.stats.runtime_dns_lookups,
            spoofed_queries_sent=self.remover.stats.spoofed_queries_sent
            if self.remover
            else 0,
        )

    # ------------------------------------------------------------ interface
    def run(self, poison_first: bool = True) -> RunTimeAttackResult:
        """Run the attack to completion (or to ``max_duration``) and report.

        The victim client must already be started and synchronised; callers
        normally run the simulation for a while before invoking this.
        """
        if poison_first:
            self.poison_resolver_directly()
        self.start()
        # Run until the attack resolves (success or timeout).
        self.simulator.run_for(self.max_duration + 2 * self.check_interval)
        if self._result is None:
            self._finish(success=False, duration=None)
        return self._result
