"""IPID sampling and extrapolation (paper section III-2).

The attacker learns the nameserver's IPID behaviour by sending it a few DNS
queries of its own and reading the IPID field of the responses (packets
addressed to the attacker, so no eavesdropping is involved).  From the
observations it estimates the current counter value and the rate at which it
advances, then predicts the value that will be used for the response sent to
the victim resolver shortly afterwards.  When the increment is noisy the
attacker hedges by spraying a window of candidate values, bounded by the
victim's pending-fragment limit (64 on patched Linux, 100 on Windows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dns.message import DNSMessage
from repro.netsim.host import Host
from repro.netsim.packet import IPProtocol, IPv4Packet
from repro.netsim.simulator import Simulator


@dataclass
class IPIDObservation:
    """One observed (time, ipid) sample from the nameserver."""

    time: float
    ipid: int


@dataclass
class IPIDPrediction:
    """The attacker's belief about the nameserver's IPID sequence."""

    predicted_next: int
    rate_per_second: float
    observations: list[IPIDObservation] = field(default_factory=list)
    predictable: bool = True

    def candidates(self, count: int, lookahead: float = 0.0) -> list[int]:
        """A window of candidate IPIDs to spray (centred on the prediction)."""
        base = (self.predicted_next + int(round(self.rate_per_second * lookahead))) & 0xFFFF
        return [(base + offset) & 0xFFFF for offset in range(count)]


class IPIDPredictor:
    """Samples a nameserver's IPIDs by querying it from the attacker's host."""

    def __init__(
        self,
        attacker_host: Host,
        simulator: Simulator,
        nameserver_ip: str,
        probe_name: str = "pool.ntp.org",
    ) -> None:
        self.host = attacker_host
        self.simulator = simulator
        self.nameserver_ip = nameserver_ip
        self.probe_name = probe_name
        self.observations: list[IPIDObservation] = []
        self._rng = simulator.spawn_rng()
        self._previous_tap = attacker_host.packet_tap
        attacker_host.packet_tap = self._tap

    def _tap(self, packet: IPv4Packet) -> None:
        if self._previous_tap is not None:
            self._previous_tap(packet)
        if packet.src != self.nameserver_ip or packet.protocol is not IPProtocol.UDP:
            return
        if packet.is_fragment and not packet.is_first_fragment:
            return
        self.observations.append(IPIDObservation(self.simulator.now, packet.ipid))

    def probe(
        self,
        count: int = 4,
        interval: float = 0.5,
        on_done: Optional[Callable[[IPIDPrediction], None]] = None,
    ) -> None:
        """Send ``count`` probe queries and call ``on_done`` with the prediction."""
        socket = self.host.bind(0)
        socket.on_datagram = lambda payload, ip, port: None

        def send(remaining: int) -> None:
            query = DNSMessage.query(
                self.probe_name, txid=int(self._rng.integers(0, 1 << 16))
            )
            socket.sendto(query.encode(), self.nameserver_ip, 53)
            if remaining > 1:
                self.simulator.schedule(interval, lambda: send(remaining - 1))
            else:
                self.simulator.schedule(interval + 1.0, finish)

        def finish() -> None:
            socket.close()
            if on_done is not None:
                on_done(self.prediction())

        send(count)

    def prediction(self) -> IPIDPrediction:
        """Extrapolate from the collected observations."""
        if not self.observations:
            return IPIDPrediction(predicted_next=0, rate_per_second=0.0, predictable=False)
        observations = sorted(self.observations, key=lambda o: o.time)
        last = observations[-1]
        if len(observations) == 1:
            return IPIDPrediction(
                predicted_next=(last.ipid + 1) & 0xFFFF,
                rate_per_second=1.0,
                observations=observations,
            )
        deltas = []
        for earlier, later in zip(observations, observations[1:]):
            elapsed = max(later.time - earlier.time, 1e-6)
            step = (later.ipid - earlier.ipid) & 0xFFFF
            deltas.append(step / elapsed)
        # A wildly varying or enormous apparent rate indicates per-destination
        # or random IPIDs: the sequence is not usefully predictable.
        rate = sum(deltas) / len(deltas)
        predictable = rate < 5000 and max(deltas) - min(deltas) < 2000
        return IPIDPrediction(
            predicted_next=(last.ipid + 1) & 0xFFFF,
            rate_per_second=rate,
            observations=observations,
            predictable=predictable,
        )
