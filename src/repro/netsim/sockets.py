"""A minimal UDP socket abstraction bound to a simulated host."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.netsim.udp import UDPDatagram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.netsim.host import Host

#: Signature of a datagram handler: (payload, source_ip, source_port).
DatagramHandler = Callable[[bytes, str, int], None]

#: Signature of an opt-in burst handler: (payloads, source_ip, source_port).
#: Installed alongside ``on_datagram``; the delivery-burst engine hands a
#: consecutive run of verified same-source datagrams to it as one call.
DatagramBurstHandler = Callable[[list, str, int], None]


@dataclass
class ReceivedDatagram:
    """A datagram queued on a socket that has no handler installed."""

    payload: bytes
    src_ip: str
    src_port: int
    received_at: float


@dataclass
class UDPSocket:
    """A UDP socket bound to one port of a simulated host.

    Applications either install an ``on_datagram`` handler (the usual mode
    for servers and clients driven by the event loop) or poll the ``inbox``
    (used by simple tests).
    """

    host: "Host"
    port: int
    on_datagram: Optional[DatagramHandler] = None
    #: Opt-in: when set, the burst engine may deliver a consecutive run of
    #: verified same-source datagrams as one ``handler(payloads, src, port)``
    #: call instead of N ``on_datagram`` calls.  Installers promise the two
    #: shapes are observably equivalent (the NTP server keeps that promise
    #: with :meth:`repro.ntp.rate_limit.RateLimiter.consume_burst`).
    on_datagram_burst: Optional[DatagramBurstHandler] = None
    inbox: list[ReceivedDatagram] = field(default_factory=list)
    closed: bool = False

    def sendto(self, payload: bytes, dst_ip: str, dst_port: int) -> None:
        """Send ``payload`` to ``dst_ip:dst_port`` from this socket's port."""
        datagram = UDPDatagram(src_port=self.port, dst_port=dst_port, payload=payload)
        self.host.send_udp(dst_ip, datagram)

    def deliver(self, payload: bytes, src_ip: str, src_port: int, now: float) -> None:
        """Called by the host when a datagram for this port arrives."""
        if self.closed:
            return
        if self.on_datagram is not None:
            self.on_datagram(payload, src_ip, src_port)
        else:
            self.inbox.append(ReceivedDatagram(payload, src_ip, src_port, now))

    def close(self) -> None:
        """Unbind the socket from its host."""
        if not self.closed:
            self.closed = True
            self.host.release_port(self.port)
