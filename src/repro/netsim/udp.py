"""UDP datagrams with real RFC 768 checksums.

The checksum is computed over the IPv4 pseudo-header (source address,
destination address, protocol, UDP length) plus the UDP header and payload.
Because the checksum field travels in the *first* fragment of a fragmented
datagram, an off-path attacker who replaces the second fragment must craft
its payload so the overall ones'-complement sum is unchanged — the core
arithmetic trick of the paper's poisoning primitive.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import lru_cache

from repro.netsim.addresses import ip_to_int
from repro.netsim.errors import PacketError

UDP_HEADER_LEN = 8

#: Precompiled codec for the per-datagram hot path.  (The IPv4 pseudo-header
#: is no longer materialised as bytes: ``udp_checksum`` assembles its word
#: sum arithmetically.)
_UDP_HEADER = struct.Struct("!HHHH")


@dataclass(slots=True)
class UDPDatagram:
    """A UDP datagram (header fields plus application payload)."""

    src_port: int
    dst_port: int
    payload: bytes

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"UDP port out of range: {port}")

    @property
    def length(self) -> int:
        """The UDP length field (header plus payload)."""
        return UDP_HEADER_LEN + len(self.payload)


@lru_cache(maxsize=65536)
def _address_word_sum(address: str) -> int:
    """The sum of an address's two 16-bit words (cached, bounded)."""
    value = ip_to_int(address)
    return (value >> 16) + (value & 0xFFFF)


def udp_checksum(src_ip: str, dst_ip: str, datagram: UDPDatagram) -> int:
    """Compute the UDP checksum for a datagram between two IPv4 addresses.

    Fast path: rather than materialising pseudo-header + header bytes and
    summing the concatenation, the word sum is assembled arithmetically —
    the address word sums are cached, the protocol/length/port words are
    added directly, and only the payload is reduced from bytes.  Because
    ``2**16 ≡ 1 (mod 0xFFFF)``, folding is a single modulo; the total is
    always positive (the nonzero length field contributes twice), so the
    multiple-of-0xFFFF case folds to ``0xFFFF`` exactly as the word loop
    does.  Byte-for-byte equivalence with the seed implementation is pinned
    by the fast-path property tests.

    The result is memoised (bounded LRU): every delivered datagram is
    checksummed twice — once by the sending host filling the field in and
    once by the receiving host verifying it.
    """
    return _udp_checksum_cached(
        src_ip, dst_ip, datagram.src_port, datagram.dst_port, datagram.payload
    )


@lru_cache(maxsize=8192)
def _udp_checksum_cached(
    src_ip: str, dst_ip: str, src_port: int, dst_port: int, payload: bytes
) -> int:
    length = UDP_HEADER_LEN + len(payload)
    return _fold_checksum(
        _address_word_sum(src_ip)
        + _address_word_sum(dst_ip)
        + length
        + length
        + src_port
        + dst_port
        + payload_word_sum(payload)
    )


def _fold_checksum(word_total: int) -> int:
    """Fold a pseudo-header word total (protocol word excluded) to RFC 768.

    The caller's total omits the constant protocol word (17), added here.
    Because ``2**16 ≡ 1 (mod 0xFFFF)``, folding is a single modulo; the
    total is always positive (the nonzero length field contributes twice),
    so the multiple-of-0xFFFF case folds to ``0xFFFF`` exactly as a 16-bit
    word loop does.
    """
    folded = (word_total + 17) % 0xFFFF
    checksum = ~(folded if folded else 0xFFFF) & 0xFFFF
    # RFC 768: a computed checksum of zero is transmitted as all ones.
    return checksum if checksum != 0 else 0xFFFF


def payload_word_sum(payload: bytes) -> int:
    """The folded 16-bit word sum of a payload (odd lengths zero-padded).

    Spoofing loops that send many datagrams with the same payload compute
    this once and combine it with cached address sums via
    :func:`udp_checksum_from_sums`, skipping the per-packet memo lookup.
    """
    if len(payload) & 1:
        payload = payload + b"\x00"
    return int.from_bytes(payload, "big") % 0xFFFF


def udp_checksum_from_sums(
    src_sum: int,
    dst_sum: int,
    src_port: int,
    dst_port: int,
    length: int,
    payload_sum: int,
) -> int:
    """Checksum from precomputed address/payload word sums.

    ``src_sum``/``dst_sum`` come from :func:`_address_word_sum`,
    ``payload_sum`` from :func:`payload_word_sum`, and ``length`` is the
    UDP length field (header + payload bytes).  Bit-identical to
    :func:`udp_checksum` by construction (pinned by property tests).
    """
    return _fold_checksum(
        src_sum + dst_sum + length + length + src_port + dst_port + payload_sum
    )


def udp_checksum_arith(
    src_ip: str, dst_ip: str, src_port: int, dst_port: int, payload: bytes
) -> int:
    """Uncached arithmetic checksum for the delivery pipeline's verify stage.

    Verification sees a fresh payload per packet during spoofing sweeps, so
    the memo in :func:`udp_checksum` would pay hashing and eviction for a
    near-zero hit rate; this variant just computes.
    """
    length = UDP_HEADER_LEN + len(payload)
    return _fold_checksum(
        _address_word_sum(src_ip)
        + _address_word_sum(dst_ip)
        + length
        + length
        + src_port
        + dst_port
        + payload_word_sum(payload)
    )


def encode_udp(src_ip: str, dst_ip: str, datagram: UDPDatagram) -> bytes:
    """Encode a datagram (header + payload) with its checksum filled in."""
    checksum = udp_checksum(src_ip, dst_ip, datagram)
    header = _UDP_HEADER.pack(
        datagram.src_port, datagram.dst_port, datagram.length, checksum
    )
    return header + datagram.payload


def decode_udp(
    src_ip: str, dst_ip: str, data: bytes, verify: bool = True
) -> UDPDatagram:
    """Decode UDP bytes, optionally verifying length and checksum.

    Raises :class:`PacketError` when the datagram is truncated, its length
    field disagrees with the data, or (when ``verify`` is true) the checksum
    does not match.  The checksum rejection path is exactly what defeats a
    naive fragment-replacement attack that does not fix the checksum.
    """
    if len(data) < UDP_HEADER_LEN:
        raise PacketError("truncated UDP header")
    src_port, dst_port, length, checksum = _UDP_HEADER.unpack_from(data)
    if length != len(data):
        raise PacketError(f"UDP length mismatch: field={length}, actual={len(data)}")
    # Construct without __post_init__: 16-bit wire fields are in range by
    # construction, so the port validation cannot fire on this path.
    datagram = UDPDatagram.__new__(UDPDatagram)
    datagram.src_port = src_port
    datagram.dst_port = dst_port
    datagram.payload = data[UDP_HEADER_LEN:]
    if verify and checksum != 0:
        expected = udp_checksum(src_ip, dst_ip, datagram)
        if expected != checksum:
            raise PacketError(
                f"UDP checksum mismatch: expected {expected:#06x}, got {checksum:#06x}"
            )
    return datagram
