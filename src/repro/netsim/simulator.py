"""Discrete-event simulation core.

A single :class:`Simulator` instance drives every experiment: hosts, links,
DNS resolvers, NTP clients, attackers and measurement scanners all schedule
callbacks on the same virtual clock.  Time is a float measured in seconds.

The event loop is deliberately small and tuned for throughput.  The heap
holds plain tuples so that ordering comparisons run at C speed inside
:mod:`heapq` (floats and ints, never ``Event`` objects); two entry shapes
coexist:

* ``(time, sequence, event, _EVENT)`` — cancellable events returned by
  :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at`.  ``Event`` is a
  ``__slots__`` class rather than a dataclass so creating one costs a single
  small allocation.
* ``(time, sequence, callback, arg)`` — anonymous fire-and-forget events
  created by :meth:`Simulator.post`, carrying zero or one callback argument
  (``arg`` is the ``_NO_ARG`` sentinel when there is none).  These skip the
  ``Event`` allocation entirely and exist for the per-packet delivery path,
  which schedules millions of events per experiment and never cancels one.
* ``(time, sequence, burst, _BURST)`` — *burst* entries created by
  :meth:`Simulator.post_burst` (or pushed directly by the network's
  batched transmit path).  One heap entry stands for ``burst.count``
  logical events firing at the same instant: the entry consumes ``count``
  contiguous sequence numbers at creation and counts ``count`` towards
  ``events_processed`` when drained, so an injected burst of N packets
  costs one heap push and one pop instead of N — while remaining
  event-for-event equivalent (ordering, counters, :meth:`pending`) to N
  singular posts.  Bursts are atomic: ``run(max_events=...)`` never splits
  one, and :meth:`step` executes a whole burst as one step.

The fourth element doubles as the discriminator (identity-compared
sentinels), so the dispatch loop needs pointer comparisons, not isinstance
checks, and posted callbacks are invoked with a fixed-arity call instead of
argument-tuple unpacking.  Sequence numbers are unique, so tuple comparison
never reaches the third element.  The monotonically increasing sequence
number makes ordering of same-time events deterministic (first scheduled,
first executed); a burst orders by its *first* sequence number, which is
exactly where its N singular events would have sorted, because the block
is allocated atomically.  All randomness in the simulation flows through
the simulator's seeded ``numpy.random.Generator`` so runs are reproducible
bit-for-bit.

The bounded loops additionally drain contiguous *equal-timestamp* runs
through a coalesced inner loop: once the head event at time ``t`` passed
the ``until`` bound, every further entry at exactly ``t`` is popped and
dispatched without re-checking the bound or re-writing the clock.
Cancelled events popped inside a coalesced run are skipped without
touching ``events_processed`` (their cancellation was already counted by
:meth:`Event.cancel`), so :meth:`Simulator.pending` stays exact.

Cancellation bookkeeping: cancelled events stay in the heap (removing an
arbitrary heap entry is O(n)) and are skipped when popped, but
:meth:`Event.cancel` bumps the simulator's cancelled-event counter at cancel
time, so :meth:`Simulator.pending` (``scheduled - executed - cancelled``)
reports the number of events that will actually fire — not the raw heap
size.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Optional

import numpy as np

from repro.netsim.errors import InvariantViolation, SimulationError
from repro.perf import STAGES, perf_counter

#: Heap-entry discriminator: fourth tuple element of cancellable entries.
_EVENT = object()
#: Sentinel for "posted callback takes no argument".
_NO_ARG = object()
#: Heap-entry discriminator for burst entries (see module docstring).  The
#: network's batched transmit path pushes these directly (friend access,
#: mirroring its inlined ``post``), so the sentinel is shared, not private
#: to the loop.
_BURST = object()


class CallbackBurst:
    """N same-instant calls of one callback, packed into one heap entry.

    The generic burst shape behind :meth:`Simulator.post_burst`: ``run``
    invokes ``callback(arg)`` for every argument in order.  ``count`` is
    the number of logical events the entry stands for — the drain adds it
    to ``events_processed`` and :meth:`Simulator.post_burst` consumed that
    many sequence numbers, which keeps :meth:`Simulator.pending` exact.

    Specialised bursts (the network's vectorised
    :class:`~repro.netsim.burst.DeliveryBurst`, the association remover's
    cohort rounds) implement the same two-member protocol — ``count`` plus
    ``run()`` — with a flat loop body of their own.
    """

    __slots__ = ("callback", "args", "count")

    def __init__(self, callback: Callable[..., None], args) -> None:
        self.callback = callback
        self.args = args
        self.count = len(args)

    def run(self) -> None:
        callback = self.callback
        for arg in self.args:
            callback(arg)


class Event:
    """A scheduled callback.

    Events order by ``(time, sequence)``: chronological, and within the same
    instant, in scheduling order.  ``args`` (when non-empty) are passed to
    the callback positionally, which lets hot paths such as packet delivery
    schedule a bound method plus its argument instead of building a fresh
    closure per packet.
    """

    __slots__ = ("time", "sequence", "callback", "args", "label", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[..., None],
        args: tuple = (),
        label: str = "",
        sim: "Optional[Simulator]" = None,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped.

        Also bumps the owning simulator's cancelled-event counter, so
        :meth:`Simulator.pending` stays accurate without the loop having to
        purge the heap.  Cancelling twice — or cancelling an event that has
        already fired, which callbacks that cancel their own timeout event
        routinely do — is a no-op: the loop severs the event's simulator
        reference at dispatch, so a late cancel cannot distort the count.
        """
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._cancelled += 1
                self._sim = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.sequence} {self.label!r}{state}>"


class Simulator:
    """The discrete-event loop shared by every simulated component.

    Parameters
    ----------
    seed:
        Seed for the simulation-wide random generator.  Components that need
        their own stream should call :meth:`spawn_rng` so their draws do not
        perturb each other when the topology changes.
    strict:
        Opt-in invariant guards for the chaos/fault-injection suites.  The
        run loops verify heap monotonicity per pop and the full
        event/cancellation accounting (:meth:`check_invariants`) on every
        loop exit, raising :class:`~repro.netsim.errors.InvariantViolation`
        on the first broken conservation law.  Strict runs dispatch through
        one generic guarded loop — semantics are identical to the fast
        loops (pinned by the strict-equivalence tests), only slower.
    """

    __slots__ = (
        "_queue",
        "_sequence",
        "_cancelled",
        "_now",
        "_rng",
        "_seed",
        "_spawned",
        "events_processed",
        "bursts_posted",
        "strict",
    )

    def __init__(self, seed: int = 0, strict: bool = False) -> None:
        # Heap of 4-tuples (see module docstring): tuple comparison keeps
        # heap operations in C and never falls through to the third element
        # because sequence numbers are unique.
        self._queue: list[tuple] = []
        self._sequence = 0
        self._cancelled = 0
        self._now = 0.0
        self._rng = np.random.default_rng(seed)
        self._seed = seed
        self._spawned = 0
        self.events_processed = 0
        #: Burst heap entries created so far (post_burst / post_burst_entry
        #: / the network's batched transmit).  ``events_processed`` already
        #: counts burst members individually; this counter exposes how much
        #: coalescing the run actually achieved.
        self.bursts_posted = 0
        self.strict = strict

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def rng(self) -> np.random.Generator:
        """The simulation-wide random number generator."""
        return self._rng

    def spawn_rng(self) -> np.random.Generator:
        """Return an independent random generator derived from the seed.

        Each call returns a new stream; components store their own stream so
        that adding one component does not shift the random draws of another.
        """
        self._spawned += 1
        return np.random.default_rng((self._seed, self._spawned))

    def spawn_named_rng(self, name: str) -> np.random.Generator:
        """An independent generator derived from the seed and a stable name.

        Unlike :meth:`spawn_rng`, this does not consume a slot in the
        spawn sequence: the stream is a pure function of ``(seed, name)``,
        so attaching an optional component (a fault channel, a probe)
        cannot shift the draws of components spawned afterwards — which is
        what lets a zero-fault configuration stay bit-identical to a
        fault-free one.  Distinct names yield independent streams; calling
        twice with one name restarts the same stream.
        """
        return np.random.default_rng((self._seed, *name.encode("utf-8")))

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        label: str = "",
        args: tuple = (),
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled.  Negative delays
        are rejected because they would break causality.  ``args`` are passed
        to the callback positionally when it fires.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        when = self._now + delay
        sequence = self._sequence
        self._sequence = sequence + 1
        # Inline slot assignment instead of Event(...): this is the hottest
        # allocation in the simulator and skipping the __init__ frame is a
        # measurable share of per-event cost.
        event = Event.__new__(Event)
        event.time = when
        event.sequence = sequence
        event.callback = callback
        event.args = args
        event.label = label
        event.cancelled = False
        event._sim = self
        heappush(self._queue, (when, sequence, event, _EVENT))
        return event

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., None],
        label: str = "",
        args: tuple = (),
    ) -> Event:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self._now})"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        event = Event(when, sequence, callback, args, label, self)
        heappush(self._queue, (when, sequence, event, _EVENT))
        return event

    def post(self, delay: float, callback: Callable[..., None], arg=_NO_ARG) -> None:
        """Schedule a fire-and-forget callback ``delay`` seconds from now.

        The anonymous fast path: no :class:`Event` is allocated, so the
        scheduled callback cannot be cancelled or labelled, and at most one
        positional argument is supported (callbacks needing more state bind
        it or use :meth:`schedule`).  This is what the per-packet delivery
        path uses — it accounts for the bulk of all events in an experiment
        and never cancels one.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        sequence = self._sequence
        self._sequence = sequence + 1
        heappush(self._queue, (self._now + delay, sequence, callback, arg))

    def post_burst(self, delay: float, callback: Callable[..., None], args) -> None:
        """Schedule ``callback(arg)`` for every ``arg`` at one future instant.

        Event-for-event equivalent to ``post(delay, callback, arg)`` per
        argument — same contiguous sequence-number block, same execution
        order, same ``events_processed`` / :meth:`pending` accounting — but
        the whole burst costs one heap push and one pop.  Like :meth:`post`,
        burst members cannot be cancelled or labelled.  An empty ``args``
        schedules nothing; a single argument degrades to :meth:`post`
        (identical entry, cheaper dispatch).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        count = len(args)
        if count == 0:
            return
        sequence = self._sequence
        if count == 1:
            self._sequence = sequence + 1
            heappush(self._queue, (self._now + delay, sequence, callback, args[0]))
            return
        self._sequence = sequence + count
        self.bursts_posted += 1
        heappush(
            self._queue,
            (self._now + delay, sequence, CallbackBurst(callback, args), _BURST),
        )

    def post_burst_entry(self, delay: float, burst) -> None:
        """Schedule a pre-built burst object (``count`` + ``run()`` protocol).

        The entry consumes ``burst.count`` sequence numbers and counts that
        many events when drained; ``burst.run()`` must therefore perform
        exactly ``count`` logical events' worth of work.  Used by callers
        that want a flat loop body instead of per-member callbacks (the
        network's delivery bursts, the association remover's rounds).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        count = burst.count
        if count <= 0:
            return
        sequence = self._sequence
        self._sequence = sequence + count
        self.bursts_posted += 1
        heappush(self._queue, (self._now + delay, sequence, burst, _BURST))

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        Cancelled events linger in the heap until popped, but they are
        excluded from this count: every scheduled entry bumps the sequence
        counter exactly once, so the number of events that will still fire is
        ``scheduled - executed - cancelled``, maintained without touching a
        counter on the per-event hot path.  (Before the fast-path rework this
        reported the raw heap size, silently including cancelled events.)
        """
        return self._sequence - self.events_processed - self._cancelled

    def check_invariants(self) -> None:
        """Verify the simulator's conservation laws, raising on violation.

        Walks the heap and checks, in order:

        * **Causality** — no queued entry's time precedes the clock.
        * **Accounting balance** — every sequence number ever allocated is
          either executed, cancelled, or still live in the heap (bursts
          count ``count`` members):
          ``events_processed + cancelled + live == scheduled``.
        * **Pending consistency** — :meth:`pending` equals the live count
          and is non-negative.

        Cheap enough to call per assertion in tests but O(heap), so the
        strict loop runs it on loop exit, not per event.  Raises
        :class:`~repro.netsim.errors.InvariantViolation` with the broken
        law spelled out.
        """
        now = self._now
        live = 0
        for time_, _sequence, target, arg in self._queue:
            if time_ < now:
                raise InvariantViolation(
                    f"causality broken: queued entry at t={time_} behind clock t={now}"
                )
            if arg is _EVENT:
                if not target.cancelled:
                    live += 1
            elif arg is _BURST:
                count = target.count
                if count <= 0:
                    raise InvariantViolation(
                        f"queued burst entry with non-positive count {count}"
                    )
                live += count
            else:
                live += 1
        balance = self.events_processed + self._cancelled + live
        if balance != self._sequence:
            raise InvariantViolation(
                "event accounting does not balance: "
                f"processed={self.events_processed} + cancelled={self._cancelled} "
                f"+ live={live} == {balance} != scheduled={self._sequence}"
            )
        queued = self.pending()
        if queued != live or queued < 0:
            raise InvariantViolation(
                f"pending()={queued} disagrees with live heap count {live}"
            )

    def step(self) -> Optional[Event]:
        """Process the next event, returning it, or None if the queue is empty.

        Anonymous events posted via :meth:`post` are returned as a freshly
        materialised (already-executed) :class:`Event` so callers can still
        inspect time and callback.  Burst entries are atomic: the whole
        burst executes as one step (counting ``burst.count`` events) and is
        returned as a single materialised Event whose callback is the
        burst's ``run``.
        """
        queue = self._queue
        while queue:
            time_, sequence, target, arg = heappop(queue)
            if self.strict and time_ < self._now:
                raise InvariantViolation(
                    f"heap monotonicity broken: popped t={time_} behind clock t={self._now}"
                )
            if arg is _EVENT:
                event = target
                if event.cancelled:
                    continue
                event._sim = None  # executed: a late cancel() must not count
                self._now = time_
                if event.args:
                    event.callback(*event.args)
                else:
                    event.callback()
                self.events_processed += 1
                return event
            self._now = time_
            if arg is _BURST:
                target.run()
                self.events_processed += target.count
                return Event(time_, sequence, target.run, ())
            if arg is _NO_ARG:
                target()
                call_args: tuple = ()
            else:
                target(arg)
                call_args = (arg,)
            self.events_processed += 1
            return Event(time_, sequence, target, call_args)
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this absolute time.  Events at a
            later time remain queued; the clock is advanced to ``until``.
        max_events:
            Safety valve for tests: stop after this many events.

        Returns the number of events processed by this call (burst entries
        count each of their members).
        """
        if self.strict:
            # Strict runs take one generic guarded loop (monotonicity per
            # pop, burst atomicity per entry, full accounting on exit) —
            # semantically identical to the fast loops, just slower.
            return self._run_strict(until, max_events)
        if STAGES.enabled:
            # Attribution runs route through the instrumented twin; the hot
            # loops below stay free of timing code.
            return self._run_timed(until, max_events)
        queue = self._queue
        processed = 0
        if until is None and max_events is None:
            # Hot path used by the experiment drivers: no bound checks inside
            # the loop, just pop-skip-dispatch.  The live/processed counters
            # are accumulated locally and reconciled when the loop exits (a
            # callback reading them mid-run would see the values as of the
            # last run()/step() boundary).
            try:
                while queue:
                    time_, _sequence, target, arg = heappop(queue)
                    if arg is _EVENT:
                        if target.cancelled:
                            continue
                        target._sim = None  # executed: late cancel() is a no-op
                        self._now = time_
                        if target.args:
                            target.callback(*target.args)
                        else:
                            target.callback()
                        processed += 1
                        continue
                    self._now = time_
                    if arg is _NO_ARG:
                        target()
                        processed += 1
                    elif arg is _BURST:
                        target.run()
                        processed += target.count
                    else:
                        target(arg)
                        processed += 1
            finally:
                self.events_processed += processed
            return processed
        # Bounded paths: same pop-skip-dispatch loop with head checks, again
        # reconciling the processed counter on exit.  Dispatch is inlined
        # (rather than delegating to step()) so bounded runs — every
        # ``run_for`` during warmup and attacks — do not materialise an
        # Event object per anonymous entry just to drop it.  The until-only
        # shape (what run_for uses, hundreds of thousands of events per
        # experiment) gets its own loop without the max_events check, and
        # drains contiguous equal-timestamp runs through a coalesced inner
        # loop: entries at the head's exact time already passed the bound,
        # so only the first event of each instant pays the head peek and
        # until comparison.  Cancelled events popped inside the coalesced
        # run are skipped without counting (their cancellation is already
        # in ``_cancelled``), keeping pending() exact.
        try:
            if max_events is None:
                while queue:
                    head = queue[0]
                    if head[3] is _EVENT and head[2].cancelled:
                        heappop(queue)
                        continue
                    if head[0] > until:
                        if until > self._now:
                            self._now = until
                        break
                    time_, _sequence, target, arg = heappop(queue)
                    self._now = time_
                    while True:
                        if arg is _EVENT:
                            if not target.cancelled:
                                target._sim = None  # late cancel() is a no-op
                                if target.args:
                                    target.callback(*target.args)
                                else:
                                    target.callback()
                                processed += 1
                        elif arg is _NO_ARG:
                            target()
                            processed += 1
                        elif arg is _BURST:
                            target.run()
                            processed += target.count
                        else:
                            target(arg)
                            processed += 1
                        if not queue or queue[0][0] != time_:
                            break
                        _time, _sequence, target, arg = heappop(queue)
            else:
                # Bursts are atomic: a burst entry never splits across the
                # max_events bound, so ``processed`` may overshoot it by the
                # tail of the last burst.
                while queue:
                    if processed >= max_events:
                        break
                    head = queue[0]
                    if head[3] is _EVENT and head[2].cancelled:
                        heappop(queue)
                        continue
                    if until is not None and head[0] > until:
                        self._now = max(self._now, until)
                        break
                    time_, _sequence, target, arg = heappop(queue)
                    self._now = time_
                    if arg is _EVENT:
                        target._sim = None  # executed: late cancel() is a no-op
                        if target.args:
                            target.callback(*target.args)
                        else:
                            target.callback()
                        processed += 1
                    elif arg is _NO_ARG:
                        target()
                        processed += 1
                    elif arg is _BURST:
                        target.run()
                        processed += target.count
                    else:
                        target(arg)
                        processed += 1
        finally:
            self.events_processed += processed
        if until is not None and not queue:
            self._now = max(self._now, until)
        return processed

    def _run_timed(
        self, until: Optional[float], max_events: Optional[int]
    ) -> int:
        """The stage-attributing twin of :meth:`run`.

        Only runs while ``repro.perf.STAGES`` collection is enabled.  Times
        every heap pop into the ``heap`` stage (a lower bound on event-loop
        heap work: pushes happen inside callbacks and are not attributed).
        Dispatch semantics are identical to the uninstrumented loops —
        timing never feeds the simulation — so instrumented runs stay
        bit-identical.
        """
        queue = self._queue
        processed = 0
        pops = 0
        t_heap = 0.0
        try:
            while queue:
                if max_events is not None and processed >= max_events:
                    break
                head = queue[0]
                if head[3] is _EVENT and head[2].cancelled:
                    heappop(queue)
                    continue
                if until is not None and head[0] > until:
                    if until > self._now:
                        self._now = until
                    break
                t0 = perf_counter()
                time_, _sequence, target, arg = heappop(queue)
                t_heap += perf_counter() - t0
                pops += 1
                self._now = time_
                if arg is _EVENT:
                    target._sim = None  # executed: late cancel() is a no-op
                    if target.args:
                        target.callback(*target.args)
                    else:
                        target.callback()
                    processed += 1
                elif arg is _NO_ARG:
                    target()
                    processed += 1
                elif arg is _BURST:
                    target.run()
                    processed += target.count
                else:
                    target(arg)
                    processed += 1
        finally:
            self.events_processed += processed
            if pops:
                STAGES.add_many("heap", t_heap, pops)
        if until is not None and not queue:
            self._now = max(self._now, until)
        return processed

    def _run_strict(
        self, until: Optional[float], max_events: Optional[int]
    ) -> int:
        """The invariant-guarded twin of :meth:`run` (``strict=True``).

        One generic bounded loop — dispatch semantics identical to the fast
        loops — that additionally asserts heap monotonicity on every pop
        and burst atomicity on every burst entry, then runs the full
        :meth:`check_invariants` accounting sweep when the loop exits
        cleanly.  Guards raise
        :class:`~repro.netsim.errors.InvariantViolation`.
        """
        queue = self._queue
        processed = 0
        try:
            while queue:
                if max_events is not None and processed >= max_events:
                    break
                head = queue[0]
                if head[3] is _EVENT and head[2].cancelled:
                    heappop(queue)
                    continue
                if until is not None and head[0] > until:
                    if until > self._now:
                        self._now = until
                    break
                time_, _sequence, target, arg = heappop(queue)
                if time_ < self._now:
                    raise InvariantViolation(
                        f"heap monotonicity broken: popped t={time_} "
                        f"behind clock t={self._now}"
                    )
                self._now = time_
                if arg is _EVENT:
                    target._sim = None  # executed: late cancel() is a no-op
                    if target.args:
                        target.callback(*target.args)
                    else:
                        target.callback()
                    processed += 1
                elif arg is _NO_ARG:
                    target()
                    processed += 1
                elif arg is _BURST:
                    count = target.count
                    if count <= 0:
                        raise InvariantViolation(
                            f"burst entry with non-positive count {count}"
                        )
                    target.run()
                    if target.count != count:
                        raise InvariantViolation(
                            "burst atomicity broken: count changed from "
                            f"{count} to {target.count} during run()"
                        )
                    processed += count
                else:
                    target(arg)
                    processed += 1
        finally:
            self.events_processed += processed
        if until is not None and not queue:
            self._now = max(self._now, until)
        self.check_invariants()
        return processed

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Run the loop for ``duration`` simulated seconds from now."""
        return self.run(until=self._now + duration, max_events=max_events)

    def advance(self, duration: float) -> None:
        """Advance the clock without processing events (test helper)."""
        if duration < 0:
            raise SimulationError("cannot advance backwards")
        target = self._now + duration
        self.run(until=target)
        self._now = max(self._now, target)
