"""Tests for the Chronos attack and its analytic bounds (section VI-C)."""

import pytest

from repro.core.chronos_attack import (
    ChronosAttack,
    PAPER_MAX_ADDRESSES_PER_RESPONSE,
    addresses_needed_to_dominate,
    attack_windows,
    max_addresses_in_response,
    max_honest_lookups_tolerated,
)
from repro.ntp.chronos.client import ChronosConfig
from repro.ntp.chronos.pool_generation import PoolGenerationConfig


class TestAnalyticBounds:
    def test_89_addresses_fit_in_one_response(self):
        assert max_addresses_in_response() == PAPER_MAX_ADDRESSES_PER_RESPONSE == 89

    def test_max_honest_lookups_is_11(self):
        """The paper's headline bound: poisoning must land before the 12th lookup."""
        assert max_honest_lookups_tolerated(89) == 11

    def test_attacker_has_12_windows_in_24_hours(self):
        assert attack_windows(89) == 12

    def test_addresses_needed_grows_with_honest_lookups(self):
        assert addresses_needed_to_dominate(0) == 0
        assert addresses_needed_to_dominate(11) == 88
        assert addresses_needed_to_dominate(12) == 96  # > 89: attack impossible

    def test_fewer_injected_addresses_shrink_the_window(self):
        assert max_honest_lookups_tolerated(40) == 5
        assert max_honest_lookups_tolerated(8) == 1

    def test_smaller_mtu_fits_fewer_addresses(self):
        assert max_addresses_in_response(mtu=576) < max_addresses_in_response(mtu=1500)


def fast_chronos_config() -> ChronosConfig:
    return ChronosConfig(
        pool_generation=PoolGenerationConfig(lookup_interval=300.0, total_lookups=24),
        servers_per_round=9,
        poll_interval=120.0,
    )


def chronos_testbed():
    """A testbed with a pool large enough that 24 honest lookups can gather
    the ~96 distinct servers the paper's analysis assumes."""
    from repro.testbed import TestbedConfig, build_testbed

    return build_testbed(TestbedConfig(pool_size=160, seed=61))


def make_attack(testbed, victim) -> ChronosAttack:
    return ChronosAttack(
        attacker=testbed.attacker,
        simulator=testbed.simulator,
        resolver=testbed.resolver,
        victim=victim,
    )


class TestChronosAttackExecution:
    def test_poisoning_before_12th_lookup_shifts_chronos(self):
        testbed = chronos_testbed()
        victim = testbed.add_chronos_client(config=fast_chronos_config())
        attack = make_attack(testbed, victim)
        result = attack.run(poison_after_lookups=5, observe_rounds=4)
        assert result.attacker_controls_pool
        assert result.pool_generation_ended_early
        assert result.success
        assert result.clock_shift_achieved == pytest.approx(-500.0, abs=5.0)

    def test_late_poisoning_cannot_guarantee_control(self):
        """Landing after too many honest lookups leaves the attacker below
        the 2/3 bound, so Chronos' guarantee is no longer surely broken."""
        testbed = chronos_testbed()
        victim = testbed.add_chronos_client(config=fast_chronos_config())
        attack = make_attack(testbed, victim)
        result = attack.run(poison_after_lookups=20, observe_rounds=1)
        assert not result.attacker_controls_pool

    def test_small_injection_kept_below_one_third_is_filtered(self):
        """Chronos' own security property: an attacker below 1/3 of the pool
        cannot shift the clock at all (this is why stuffing the pool with the
        full 89-address response is essential to the attack)."""
        testbed = chronos_testbed()
        victim = testbed.add_chronos_client(config=fast_chronos_config())
        attack = make_attack(testbed, victim)
        attack.injected_addresses = 18
        result = attack.run(poison_after_lookups=16, observe_rounds=4)
        assert result.attacker_fraction < 1 / 3
        assert not result.success
        assert abs(result.clock_shift_achieved) < 1.0

    def test_injected_addresses_all_run_ntp_servers(self):
        testbed = chronos_testbed()
        victim = testbed.add_chronos_client(config=fast_chronos_config())
        attack = make_attack(testbed, victim)
        result = attack.run(poison_after_lookups=3, observe_rounds=2)
        assert result.injected_addresses >= 80
        assert len(testbed.attacker.ntp_servers) >= result.injected_addresses

    def test_attacker_fraction_formula(self):
        testbed = chronos_testbed()
        victim = testbed.add_chronos_client(config=fast_chronos_config())
        attack = make_attack(testbed, victim)
        result = attack.run(poison_after_lookups=4, observe_rounds=2)
        expected_fraction = result.attacker_addresses_in_pool / (
            result.attacker_addresses_in_pool + result.honest_addresses_in_pool
        )
        assert result.attacker_fraction == pytest.approx(expected_fraction)
