"""Tests for the experiment engine: grids, execution, aggregation, persistence."""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    ExperimentRunner,
    RunSpec,
    get_scenario,
    make_grid,
    outcomes_table,
    scenario,
    write_bench_json,
)
from repro.experiments.runner import timings_summary

# Register tiny scenarios for these tests.  Registration is module-global,
# so names are prefixed to avoid clashing with real scenarios.


@scenario("_test_square")
def _square(x: int = 2) -> int:
    return x * x


@scenario("_test_boom")
def _boom() -> None:
    raise RuntimeError("intentional failure")


class TestRunSpec:
    def test_make_sorts_params(self):
        spec = RunSpec.make("s", b=2, a=1)
        assert spec.params == (("a", 1), ("b", 2))
        assert spec.kwargs() == {"a": 1, "b": 2}

    def test_label(self):
        assert RunSpec.make("s", a=1).label == "s[a=1]"
        assert RunSpec.make("s").label == "s"

    def test_hashable(self):
        assert len({RunSpec.make("s", a=1), RunSpec.make("s", a=1)}) == 1


class TestGrid:
    def test_cross_product_row_major(self):
        grid = make_grid("s", a=[1, 2], b=["x", "y"])
        assert [spec.kwargs() for spec in grid] == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_empty_axis_yields_no_specs(self):
        assert make_grid("s", a=[]) == []


class TestRegistry:
    def test_get_known(self):
        assert get_scenario("_test_square")(x=3) == 9

    def test_get_unknown_raises_with_listing(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            scenario("_test_square")(lambda: None)


class TestRunnerSerial:
    def test_runs_in_declaration_order(self):
        runner = ExperimentRunner(max_workers=1)
        outcomes = runner.run(make_grid("_test_square", x=[3, 1, 2]))
        assert [outcome.result for outcome in outcomes] == [9, 1, 4]
        assert all(outcome.ok for outcome in outcomes)
        assert runner.last_execution_mode == "serial"

    def test_errors_are_captured_not_raised(self):
        outcomes = ExperimentRunner(max_workers=1).run(
            [RunSpec.make("_test_boom"), RunSpec.make("_test_square", x=5)]
        )
        assert not outcomes[0].ok
        assert "RuntimeError: intentional failure" in outcomes[0].error
        assert outcomes[1].ok and outcomes[1].result == 25

    def test_wall_time_recorded(self):
        outcome = ExperimentRunner(max_workers=1).run([RunSpec.make("_test_square")])[0]
        assert outcome.wall_time > 0

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(max_workers=0)


class TestRunnerParallel:
    def test_process_pool_matches_serial(self):
        # Uses a scenario registered in repro.experiments.scenarios (worker
        # processes re-import the registry; test-local scenarios don't exist
        # there).
        specs = [
            RunSpec.make("table3_probabilities", trials=20_000, m_max=3),
            RunSpec.make("table3_probabilities", trials=20_000, m_max=5),
        ]
        serial = ExperimentRunner(max_workers=1).run(specs)
        parallel = ExperimentRunner(max_workers=2).run(specs)
        assert [o.result for o in serial] == [o.result for o in parallel]


class TestChunkedSubmission:
    def test_auto_chunking_covers_grid_in_order(self):
        runner = ExperimentRunner(max_workers=4)
        specs = make_grid("_test_square", x=list(range(33)))
        chunks = runner._chunk(specs)
        # ceil(33 / 16) = 3 per chunk; contiguous, order-preserving cover.
        assert all(len(chunk) <= 3 for chunk in chunks)
        assert [s for chunk in chunks for s in chunk] == specs

    def test_explicit_chunk_size(self):
        runner = ExperimentRunner(max_workers=4, chunk_size=5)
        specs = make_grid("_test_square", x=list(range(12)))
        chunks = runner._chunk(specs)
        assert [len(chunk) for chunk in chunks] == [5, 5, 2]

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(chunk_size=0)

    def test_chunked_parallel_matches_serial_in_order(self):
        specs = [
            RunSpec.make("table3_probabilities", trials=20_000, m_max=m)
            for m in (2, 3, 4, 5)
        ]
        serial = ExperimentRunner(max_workers=1).run(specs)
        chunked = ExperimentRunner(max_workers=2, chunk_size=2).run(specs)
        assert [o.result for o in serial] == [o.result for o in chunked]
        assert [o.spec for o in chunked] == specs

    def test_execution_mode_reports_chunks(self):
        runner = ExperimentRunner(max_workers=2, chunk_size=1)
        specs = [
            RunSpec.make("table3_probabilities", trials=10_000, m_max=2),
            RunSpec.make("table3_probabilities", trials=10_000, m_max=3),
        ]
        runner.run(specs)
        assert runner.last_execution_mode in (
            "processes[2] chunks[2]",
            # Pool creation can fail in constrained sandboxes; the runner
            # must degrade to serial rather than fail the sweep.
            "serial (process pool unavailable)",
        )

    def test_warm_worker_caches_is_idempotent(self):
        from repro.experiments.warmup import warm_worker_caches

        warm_worker_caches()
        warm_worker_caches()  # second call must be a cheap no-op


class TestReporting:
    def test_outcomes_table_renders(self):
        outcomes = ExperimentRunner(max_workers=1).run(make_grid("_test_square", x=[2, 3]))
        table = outcomes_table(
            outcomes,
            [("x", lambda o: o.spec.kwargs()["x"]), ("x^2", lambda o: o.result)],
            title="squares",
        )
        assert "squares" in table
        assert "x^2" in table
        assert "9" in table

    def test_timings_summary_shape(self):
        outcomes = ExperimentRunner(max_workers=1).run([RunSpec.make("_test_square")])
        summary = timings_summary(outcomes)
        assert summary["runs"][0]["ok"] is True
        assert summary["total_wall_time_seconds"] >= 0


class TestBenchJson:
    def test_write_creates_document(self, tmp_path):
        path = tmp_path / "BENCH_netsim.json"
        document = write_bench_json(
            str(path), microbenchmarks={"events_per_sec": 1000}
        )
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == "repro-bench/1"
        assert on_disk["microbenchmarks"] == {"events_per_sec": 1000}
        assert document == on_disk

    def test_sections_update_independently(self, tmp_path):
        path = str(tmp_path / "bench.json")
        write_bench_json(path, microbenchmarks={"a": 1})
        write_bench_json(path, experiments={"b": 2})
        on_disk = json.loads(open(path).read())
        # The microbenchmarks section written first must survive the second
        # call, which only refreshed the experiments section.
        assert on_disk["microbenchmarks"] == {"a": 1}
        assert on_disk["experiments"] == {"b": 2}

    def test_corrupt_existing_file_is_replaced(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json")
        write_bench_json(str(path), microbenchmarks={"a": 1})
        assert json.loads(path.read_text())["microbenchmarks"] == {"a": 1}
