"""ChaosPlan parsing, validation, serialisation, and timeline helpers."""

from __future__ import annotations

import json

import pytest

from repro.population.chaos import (
    CampaignHorizon,
    ChaosError,
    ChaosPhase,
    ChaosPlan,
    CorrelationGroup,
    load_chaos_plan,
    plan_from_json,
    smoke_plan,
)
from repro.population.spec import FaultRegimeSpec


def storm_plan() -> ChaosPlan:
    return ChaosPlan(
        groups=(CorrelationGroup("east", 0.5), CorrelationGroup("west", 0.5)),
        regimes=(FaultRegimeSpec("blackout", kind="partition"),),
        phases=(
            ChaosPhase("calm", 900.0),
            ChaosPhase("storm", 600.0, regimes=(("east", "blackout"),)),
        ),
        horizon=CampaignHorizon(duration=1800.0, checkpoint_every=500.0),
    )


class TestValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ChaosError):
            ChaosPlan(groups=(CorrelationGroup("a"), CorrelationGroup("a")))
        with pytest.raises(ChaosError):
            ChaosPlan(
                regimes=(
                    FaultRegimeSpec("r", kind="jitter", probability=0.1),
                    FaultRegimeSpec("r", kind="corruption", probability=0.1),
                )
            )
        with pytest.raises(ChaosError):
            ChaosPlan(phases=(ChaosPhase("p", 1.0), ChaosPhase("p", 2.0)))

    def test_phase_references_must_be_declared(self):
        with pytest.raises(ChaosError, match="undeclared group"):
            ChaosPlan(
                phases=(ChaosPhase("p", 1.0, regimes=(("ghost", "clean"),)),)
            )
        with pytest.raises(ChaosError, match="undeclared regime"):
            ChaosPlan(
                groups=(CorrelationGroup("g"),),
                phases=(ChaosPhase("p", 1.0, regimes=(("g", "ghost"),)),),
            )

    def test_builtin_regimes_usable_without_declaration(self):
        plan = ChaosPlan(
            groups=(CorrelationGroup("g"),),
            phases=(ChaosPhase("p", 10.0, regimes=(("g", "bursty"),)),),
        )
        assert plan.regime_table()["bursty"].kind == "bursty_loss"

    def test_horizon_must_cover_phases(self):
        with pytest.raises(ChaosError, match="shorter"):
            ChaosPlan(
                phases=(ChaosPhase("p", 100.0),),
                horizon=CampaignHorizon(duration=50.0),
            )

    def test_group_and_phase_bounds(self):
        with pytest.raises(ChaosError):
            CorrelationGroup("g", weight=0.0)
        with pytest.raises(ChaosError):
            ChaosPhase("p", 0.0)
        with pytest.raises(ChaosError):
            ChaosPhase("p", 1.0, regimes=(("g", "a"), ("g", "b")))
        with pytest.raises(ChaosError):
            CampaignHorizon(duration=-1.0)


class TestTimeline:
    def test_total_duration_defaults_to_phase_sum(self):
        plan = ChaosPlan(phases=(ChaosPhase("a", 10.0), ChaosPhase("b", 5.0)))
        assert plan.total_duration() == 15.0
        assert ChaosPlan().total_duration() == 0.0

    def test_phase_starts_and_phase_at(self):
        plan = storm_plan()
        assert plan.phase_starts() == (0.0, 900.0)
        assert plan.phase_at(0.0) == "calm"
        assert plan.phase_at(899.9) == "calm"
        assert plan.phase_at(900.0) == "storm"
        assert plan.phase_at(1499.9) == "storm"
        assert plan.phase_at(1500.0) == ""  # horizon tail runs healed

    def test_checkpoints_union_boundaries_cadence_horizon(self):
        plan = storm_plan()
        # phase boundaries {900, 1500} ∪ cadence {500, 1000, 1500} ∪ {1800}
        assert plan.checkpoints() == (500.0, 900.0, 1000.0, 1500.0, 1800.0)
        assert ChaosPlan().checkpoints() == ()

    def test_boundary_checkpoints_only_without_cadence(self):
        plan = ChaosPlan(phases=(ChaosPhase("a", 10.0), ChaosPhase("b", 5.0)))
        assert plan.checkpoints() == (10.0, 15.0)


class TestSerialisation:
    def test_json_round_trip_preserves_digest(self):
        plan = storm_plan()
        clone = ChaosPlan.from_json(plan.to_json())
        assert clone == plan
        assert clone.digest() == plan.digest()

    def test_canonical_json_is_stable(self):
        assert storm_plan().to_json() == storm_plan().to_json()
        assert storm_plan().digest() != smoke_plan().digest()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ChaosError, match="unknown chaos plan fields"):
            ChaosPlan.from_dict({"blast_radius": 1.0})
        with pytest.raises(ChaosError):
            ChaosPlan.from_json("[1, 2]")
        with pytest.raises(ChaosError):
            ChaosPlan.from_json("{not json")

    def test_plan_from_json_memoises(self):
        text = storm_plan().to_json()
        assert plan_from_json(text) is plan_from_json(text)

    def test_load_from_toml_chaos_table(self, tmp_path):
        path = tmp_path / "plan.toml"
        path.write_text(
            """
[chaos]
groups = [["east", 0.5], ["west", 0.5]]

[[chaos.regimes]]
name = "blackout"
kind = "partition"

[[chaos.phases]]
name = "calm"
duration = 900.0

[[chaos.phases]]
name = "storm"
duration = 600.0
regimes = [["east", "blackout"]]

[chaos.horizon]
duration = 1800.0
checkpoint_every = 500.0
"""
        )
        assert load_chaos_plan(path) == storm_plan()

    def test_load_from_json_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(storm_plan().to_json())
        assert load_chaos_plan(path) == storm_plan()

    def test_to_dict_is_json_safe(self):
        json.dumps(storm_plan().to_dict())
