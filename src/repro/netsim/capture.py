"""Packet capture hooks for tests and for on-path (MitM) attacker models.

Captures attach to the :class:`~repro.netsim.network.Network`.  An *off-path*
attacker — the threat model of the paper — must never be given a capture;
tests assert this by checking that the attack code succeeds without reading
any captured victim traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.netsim.packet import IPv4Packet

#: Predicate deciding whether a packet is recorded.
CaptureFilter = Callable[[IPv4Packet], bool]


@dataclass
class CapturedPacket:
    """One packet observed on the wire, with its delivery timestamp."""

    time: float
    packet: IPv4Packet


@dataclass
class PacketCapture:
    """Records packets traversing the network, optionally filtered."""

    name: str = "capture"
    capture_filter: Optional[CaptureFilter] = None
    packets: list[CapturedPacket] = field(default_factory=list)

    def observe(self, packet: IPv4Packet, time: float) -> None:
        """Record one packet if it passes the filter."""
        if self.capture_filter is None or self.capture_filter(packet):
            self.packets.append(CapturedPacket(time, packet))

    def between(self, src: str, dst: str) -> list[CapturedPacket]:
        """Return captured packets from ``src`` to ``dst``."""
        return [c for c in self.packets if c.packet.src == src and c.packet.dst == dst]

    def clear(self) -> None:
        """Drop all recorded packets."""
        self.packets.clear()

    def __len__(self) -> int:
        return len(self.packets)
