"""Landscape sweeps: axis application, the stored grid, and its report."""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.experiments.store import RunStore
from repro.measurement.report import landscape_report
from repro.population.landscape import (
    SCALAR_AXES,
    apply_axis,
    landscape_specs,
    smoke_spec,
    sweep_landscape,
)
from repro.population.spec import PopulationSpec, SpecError


def _base_spec() -> PopulationSpec:
    return PopulationSpec(
        size=2,
        client_mix={"ntpd": 0.6, "chrony": 0.4},
        pool_size=8,
        warmup_seconds=60.0,
        max_duration_hours=0.02,
    )


class TestApplyAxis:
    def test_scalar_axis_replaces_field(self):
        spec = apply_axis(_base_spec(), "pool_rate_limit_fraction", 0.25)
        assert spec.pool_rate_limit_fraction == 0.25
        assert apply_axis(_base_spec(), "size", 5.0).size == 5

    def test_share_axis_renormalises_others(self):
        spec = apply_axis(_base_spec(), "share:ntpd", 0.2)
        mix = dict(spec.client_mix)
        assert mix["ntpd"] == pytest.approx(0.2)
        assert mix["chrony"] == pytest.approx(0.8)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_full_share_collapses_mix(self):
        spec = apply_axis(_base_spec(), "share:ntpd", 1.0)
        assert spec.client_mix == (("ntpd", 1.0),)

    def test_share_axis_validation(self):
        with pytest.raises(SpecError):
            apply_axis(_base_spec(), "share:ntpdate", 0.5)
        with pytest.raises(SpecError):
            apply_axis(_base_spec(), "share:ntpd", 1.5)

    def test_unknown_axis_rejected(self):
        with pytest.raises(SpecError, match="unknown landscape axis"):
            apply_axis(_base_spec(), "favourite_colour", 1.0)
        assert "pool_rate_limit_fraction" in SCALAR_AXES

    def test_axis_application_is_pure(self):
        base = _base_spec()
        apply_axis(base, "share:ntpd", 0.9)
        assert base == _base_spec()


class TestLandscapeSpecs:
    def test_row_major_grid(self):
        specs = landscape_specs(
            _base_spec(), "share:ntpd", (0.2, 0.8), "pool_size", (8, 16), seed=3
        )
        assert len(specs) == 4
        coords = [(s.kwargs()["x"], s.kwargs()["y"]) for s in specs]
        assert coords == [(0.2, 8.0), (0.8, 8.0), (0.2, 16.0), (0.8, 16.0)]
        assert all(s.scenario == "population_landscape" for s in specs)


class TestSweepLandscape:
    def test_three_by_three_grid_through_run_stored(self, tmp_path):
        store = RunStore(str(tmp_path / "store"))
        grid = sweep_landscape(
            store,
            "test-landscape",
            _base_spec(),
            "share:ntpd",
            (0.2, 0.5, 0.8),
            "pool_rate_limit_fraction",
            (0.0, 0.5, 1.0),
            seed=1,
            runner=ExperimentRunner(max_workers=1, tenants_per_worker=3),
        )
        assert grid["kind"] == "landscape-grid"
        assert len(grid["cells"]) == 9
        assert all("aggregate" not in cell for cell in grid["cells"])
        for cell in grid["cells"]:
            assert cell["size"] == 2
            assert isinstance(cell["success_rate"], float)

        # Durable side: the sweep carries per-cell aggregates, the grid
        # summary, and a complete stamp.
        sweep_id = grid["sweep_id"]
        assert store.manifest(sweep_id)["status"] == "complete"
        records = store.records(sweep_id)
        aggregates = [
            r for r in records if r.get("kind") == "population-aggregate"
        ]
        assert len(aggregates) == 9
        assert all(r["aggregate"]["total"] == 2 for r in aggregates)
        grids = [r for r in records if r.get("kind") == "landscape-grid"]
        assert len(grids) == 1
        assert grids[0]["cells"] == grid["cells"]

        # And the pure reporting layer renders it.
        report = landscape_report(grid)
        assert "landscape test-landscape" in report
        assert "share:ntpd" in report
        assert report.count("\n") >= 4  # title + header + rule + 3 rows

    def test_smoke_spec_is_a_small_heterogeneous_fleet(self):
        spec = smoke_spec()
        assert spec.size <= 16
        assert len(spec.client_mix) >= 2
