"""Fleet generation: deterministic, stream-independent, draw-free defaults."""

from __future__ import annotations

import pytest

from repro.population.generate import MIN_LIFETIME, generate_fleet
from repro.population.spec import ChurnSpec, NoiseLayer, PopulationSpec


def _hetero_spec(**overrides) -> PopulationSpec:
    kwargs = dict(
        size=400,
        client_mix={"ntpd": 0.5, "chrony": 0.3, "ntpdate": 0.2},
        poll_jitter=0.2,
        link_mix={"default": 0.6, "mobile": 0.4},
        fault_mix={"clean": 0.7, "bursty": 0.3},
    )
    kwargs.update(overrides)
    return PopulationSpec(**kwargs)


class TestDeterminism:
    def test_same_spec_same_seed_is_identical(self):
        spec = _hetero_spec(
            churn=ChurnSpec(late_join_fraction=0.3, leave_fraction=0.2),
            noise_layers=(NoiseLayer("poll_interval", scale=0.1),),
        )
        assert generate_fleet(spec, 3) == generate_fleet(spec, 3)

    def test_different_seeds_differ(self):
        spec = _hetero_spec()
        a = generate_fleet(spec, 1)
        b = generate_fleet(spec, 2)
        assert [c.client_type for c in a.clients] != [
            c.client_type for c in b.clients
        ]

    def test_manifest_records_spec_digest(self):
        spec = _hetero_spec()
        fleet = generate_fleet(spec, 0)
        assert fleet.spec_digest == spec.digest()
        assert fleet.size == spec.size == len(fleet.clients)

    def test_named_streams_are_attribute_independent(self):
        # Turning poll jitter on must not reshuffle the client-type or
        # link draws: each attribute reads its own named stream.
        jittered = generate_fleet(_hetero_spec(), 7)
        unjittered = generate_fleet(_hetero_spec(poll_jitter=0.0), 7)
        assert [c.client_type for c in jittered.clients] == [
            c.client_type for c in unjittered.clients
        ]
        assert [c.link_profile for c in jittered.clients] == [
            c.link_profile for c in unjittered.clients
        ]

    def test_noise_layers_do_not_shift_other_attributes(self):
        noisy = generate_fleet(
            _hetero_spec(
                noise_layers=(NoiseLayer("initial_clock_offset", scale=5.0),)
            ),
            7,
        )
        plain = generate_fleet(_hetero_spec(), 7)
        assert [c.poll_multiplier for c in noisy.clients] == [
            c.poll_multiplier for c in plain.clients
        ]
        assert any(c.initial_clock_offset != 0.0 for c in noisy.clients)


class TestDegenerateSpecs:
    def test_degenerate_spec_draws_nothing(self):
        spec = PopulationSpec(size=5, client_mix={"ntpd": 1.0})
        fleet = generate_fleet(spec, 9)
        for client in fleet.clients:
            assert client.client_type == "ntpd"
            assert client.poll_multiplier == 1.0
            assert client.initial_clock_offset == 0.0
            assert client.join_time == 0.0
            assert client.leave_time is None
            assert client.link_profile == "default"
            assert client.fault_regime == "clean"


class TestMixesAndChurn:
    def test_type_counts_track_mix_proportions(self):
        fleet = generate_fleet(_hetero_spec(size=4000), 11)
        counts = fleet.type_counts()
        assert counts["ntpd"] / 4000 == pytest.approx(0.5, abs=0.05)
        assert counts["chrony"] / 4000 == pytest.approx(0.3, abs=0.05)
        assert counts["ntpdate"] / 4000 == pytest.approx(0.2, abs=0.05)

    def test_poll_jitter_bounds(self):
        fleet = generate_fleet(_hetero_spec(poll_jitter=0.2, size=500), 1)
        multipliers = [c.poll_multiplier for c in fleet.clients]
        assert all(0.8 <= m <= 1.2 for m in multipliers)
        assert len(set(multipliers)) > 1

    def test_churn_schedule_shape(self):
        spec = _hetero_spec(
            size=1000,
            churn=ChurnSpec(
                late_join_fraction=0.4,
                join_window=600.0,
                leave_fraction=0.25,
                leave_after=1800.0,
                leave_window=300.0,
            ),
        )
        fleet = generate_fleet(spec, 4)
        late = [c for c in fleet.clients if c.join_time > 0.0]
        leavers = [c for c in fleet.clients if c.leave_time is not None]
        assert len(late) / 1000 == pytest.approx(0.4, abs=0.06)
        assert len(leavers) / 1000 == pytest.approx(0.25, abs=0.06)
        for client in late:
            assert 0.0 < client.join_time <= 600.0
        for client in leavers:
            assert client.leave_time >= client.join_time + MIN_LIFETIME
            assert client.leave_time <= 1800.0 + 300.0 + client.join_time

    def test_join_noise_clips_at_zero(self):
        spec = _hetero_spec(
            size=300,
            churn=ChurnSpec(late_join_fraction=0.5, join_window=100.0),
            noise_layers=(NoiseLayer("join_time", kind="normal", scale=200.0),),
        )
        fleet = generate_fleet(spec, 2)
        assert all(c.join_time >= 0.0 for c in fleet.clients)

    def test_poll_noise_clips_positive(self):
        spec = _hetero_spec(
            size=300,
            noise_layers=(
                NoiseLayer("poll_interval", kind="normal", scale=3.0),
            ),
        )
        fleet = generate_fleet(spec, 2)
        assert all(c.poll_multiplier >= 0.05 for c in fleet.clients)
