"""Tests for the Chronos sample-selection algorithm."""

import pytest

from repro.ntp.chronos.selection import (
    chronos_select,
    minimum_attacker_fraction_to_shift,
    panic_select,
)


class TestTrimming:
    def test_agreeing_samples_accepted_and_averaged(self):
        samples = [0.001, 0.002, -0.001, 0.0, 0.003, -0.002, 0.001, 0.0, 0.002]
        result = chronos_select(samples)
        assert result.accepted
        assert result.offset == pytest.approx(0.001, abs=0.002)

    def test_outliers_trimmed_from_both_ends(self):
        samples = [-30.0, 0.0, 0.001, 0.002, 0.001, 0.0, 0.001, 0.002, 40.0]
        result = chronos_select(samples)
        assert result.accepted
        assert abs(result.offset) < 0.01
        assert result.discarded_low == 3 and result.discarded_high == 3

    def test_minority_attacker_filtered_out(self):
        """An attacker controlling < 1/3 of the samples cannot shift the result."""
        honest = [0.001 * i for i in range(-5, 5)]
        attacker = [-500.0] * 4  # 4 of 14 samples
        result = chronos_select(honest + attacker)
        assert result.accepted
        assert abs(result.offset) < 0.01

    def test_empty_samples_rejected(self):
        result = chronos_select([])
        assert not result.accepted and result.reason == "no samples"

    def test_small_sample_sets_survive_without_trimming(self):
        result = chronos_select([0.001, 0.002])
        assert result.accepted
        assert result.sample_count == 2


class TestRejection:
    def test_disagreeing_survivors_rejected(self):
        samples = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
        result = chronos_select(samples, agreement_bound=0.025)
        assert not result.accepted
        assert "disagree" in result.reason

    def test_divergence_from_local_clock_rejected(self):
        samples = [10.0, 10.001, 10.002, 10.0, 10.001, 10.002]
        result = chronos_select(samples, local_offset_estimate=0.0, drift_bound=0.125)
        assert not result.accepted
        assert "diverge" in result.reason

    def test_majority_attacker_forces_rejection_or_shift(self):
        """With > 2/3 attacker control the surviving set is attacker data."""
        honest = [0.001, 0.0, -0.001]
        attacker = [-500.0] * 12
        result = chronos_select(honest + attacker)
        # The survivors are all attacker samples; they agree with each other
        # but diverge from the local clock, so the round is rejected (the
        # client will eventually panic and then accept them).
        assert not result.accepted
        assert result.offset == pytest.approx(-500.0, abs=1.0)


class TestPanicMode:
    def test_panic_averages_middle_third(self):
        samples = [-100.0, 0.0, 0.001, 0.002, 100.0, 0.001]
        assert abs(panic_select(samples)) < 0.01

    def test_panic_with_attacker_majority_yields_attacker_time(self):
        samples = [0.0] * 5 + [-500.0] * 14
        assert panic_select(samples) == pytest.approx(-500.0, abs=1.0)

    def test_panic_empty(self):
        assert panic_select([]) == 0.0

    def test_security_bound_is_two_thirds(self):
        assert minimum_attacker_fraction_to_shift() == pytest.approx(2 / 3)
