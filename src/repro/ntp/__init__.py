"""NTP substrate: packets, clocks, servers, the pool, client models and Chronos.

The package models the pieces of the NTP ecosystem the paper attacks:

* the wire protocol (48-byte mode 3/4 packets, Kiss-o'-Death responses),
* system clocks that can be slewed or stepped, so a successful attack shows
  up as a measurable offset from true (simulated) time,
* NTP servers with the reference rate-limiting behaviour that the run-time
  attack abuses (spoofed client queries make the server stop answering the
  real client),
* a synthetic ``pool.ntp.org`` population whose rate-limiting prevalence is
  a parameter (the paper measured 38 %),
* behavioural models of the popular client implementations in Table I
  (ntpd, chrony, openntpd, ntpdate, systemd-timesyncd, Android SNTP,
  ntpclient), differing in how many associations they keep and when they
  issue DNS queries, and
* a Chronos-enhanced client with the hourly pool-generation procedure and
  the Byzantine-tolerant sample-selection algorithm from the proposal.
"""

from repro.ntp.timestamps import NTPTimestamp, NTP_UNIX_EPOCH_DELTA
from repro.ntp.packet import NTPPacket, NTPMode, KissCode, NTP_PORT
from repro.ntp.clock import SystemClock
from repro.ntp.rate_limit import RateLimiter, RateLimitDecision
from repro.ntp.association import Association, AssociationState
from repro.ntp.server import NTPServer, NTPServerConfig
from repro.ntp.pool import PoolPopulation, PoolServerSpec, build_pool_population
from repro.ntp.clients import (
    BaseNTPClient,
    NTPClientConfig,
    NtpdClient,
    ChronyClient,
    OpenNTPDClient,
    NtpdateClient,
    SystemdTimesyncdClient,
    AndroidSNTPClient,
    NtpclientClient,
    CLIENT_REGISTRY,
)
from repro.ntp.chronos import (
    ChronosClient,
    ChronosConfig,
    ChronosPoolGenerator,
    chronos_select,
    ChronosSelectionResult,
)

__all__ = [
    "NTPTimestamp",
    "NTP_UNIX_EPOCH_DELTA",
    "NTPPacket",
    "NTPMode",
    "KissCode",
    "NTP_PORT",
    "SystemClock",
    "RateLimiter",
    "RateLimitDecision",
    "Association",
    "AssociationState",
    "NTPServer",
    "NTPServerConfig",
    "PoolPopulation",
    "PoolServerSpec",
    "build_pool_population",
    "BaseNTPClient",
    "NTPClientConfig",
    "NtpdClient",
    "ChronyClient",
    "OpenNTPDClient",
    "NtpdateClient",
    "SystemdTimesyncdClient",
    "AndroidSNTPClient",
    "NtpclientClient",
    "CLIENT_REGISTRY",
    "ChronosClient",
    "ChronosConfig",
    "ChronosPoolGenerator",
    "chronos_select",
    "ChronosSelectionResult",
]
