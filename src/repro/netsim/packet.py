"""IPv4 packet model with byte-accurate header encoding.

Fragment-replacement cache poisoning depends on the exact on-the-wire layout
of IPv4 fragments: the fragment offset is measured in 8-byte units, the
"more fragments" (MF) flag distinguishes first and last fragments, and the
16-bit IPID ties fragments of the same original packet together.  This module
models the subset of the IPv4 header the attack needs and can encode and
decode it to real bytes so tests can verify the wire layout.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from enum import IntEnum

from repro.netsim.addresses import int_to_ip, ip_to_bytes
from repro.netsim.checksum import internet_checksum
from repro.netsim.errors import PacketError

IPV4_HEADER_LEN = 20
IPV4_MAX_PACKET = 65535

#: Precompiled header codec — struct.Struct avoids re-parsing the format
#: string on every encode/decode, which the per-packet hot path hits hard.
_IPV4_HEADER = struct.Struct("!BBHHHBBH4s4s")


class IPProtocol(IntEnum):
    """IP protocol numbers used by the simulator."""

    ICMP = 1
    TCP = 6
    UDP = 17


@dataclass(slots=True)
class IPv4Packet:
    """A (possibly fragmented) IPv4 packet.

    ``payload`` holds the bytes after the IP header.  For the first fragment
    of a UDP packet this begins with the 8-byte UDP header; for subsequent
    fragments it is a slice of the original UDP payload, which is exactly what
    lets the off-path attacker replace the tail of a DNS response without
    touching the UDP checksum field.
    """

    src: str
    dst: str
    protocol: IPProtocol
    payload: bytes
    ipid: int = 0
    ttl: int = 64
    dont_fragment: bool = False
    more_fragments: bool = False
    fragment_offset: int = 0  # in 8-byte units, like the wire format
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.ipid <= 0xFFFF:
            raise PacketError(f"IPID out of range: {self.ipid}")
        if not 0 <= self.fragment_offset <= 0x1FFF:
            raise PacketError(f"fragment offset out of range: {self.fragment_offset}")
        if len(self.payload) + IPV4_HEADER_LEN > IPV4_MAX_PACKET:
            raise PacketError("payload too large for an IPv4 packet")

    @classmethod
    def udp(cls, src: str, dst: str, payload: bytes, ipid: int) -> "IPv4Packet":
        """Fast constructor for the per-datagram hot path.

        Direct slot assignment skips the 10-field ``__init__`` and the
        validation in ``__post_init__`` — callers pass an already-masked
        16-bit IPID and a payload below the IPv4 maximum (UDP payloads are
        bounded well under it by the senders).
        """
        packet = cls.__new__(cls)
        packet.src = src
        packet.dst = dst
        packet.protocol = IPProtocol.UDP
        packet.payload = payload
        packet.ipid = ipid
        packet.ttl = 64
        packet.dont_fragment = False
        packet.more_fragments = False
        packet.fragment_offset = 0
        packet.metadata = {}
        return packet

    @property
    def total_length(self) -> int:
        """Total packet length including the 20-byte header."""
        return IPV4_HEADER_LEN + len(self.payload)

    @property
    def is_fragment(self) -> bool:
        """True when this packet is one fragment of a larger packet."""
        return self.more_fragments or self.fragment_offset > 0

    @property
    def is_first_fragment(self) -> bool:
        """True for the fragment carrying the transport header (offset 0)."""
        return self.is_fragment and self.fragment_offset == 0

    @property
    def is_last_fragment(self) -> bool:
        """True for the final fragment (MF flag clear, non-zero offset)."""
        return self.is_fragment and not self.more_fragments

    @property
    def fragment_key(self) -> tuple[str, str, int, int]:
        """The reassembly key: (src, dst, protocol, IPID).

        Fragments sharing this key are reassembled together, which is why an
        off-path attacker who can predict the IPID can have its spoofed
        fragment reassembled with the genuine first fragment.
        """
        return (self.src, self.dst, int(self.protocol), self.ipid)

    def copy(self, **changes) -> "IPv4Packet":
        """Return a copy with the given fields replaced."""
        return replace(self, metadata=dict(self.metadata), **changes)

    def encode(self) -> bytes:
        """Encode to wire bytes (20-byte header, no options, + payload)."""
        version_ihl = (4 << 4) | 5
        flags = 0
        if self.dont_fragment:
            flags |= 0x2
        if self.more_fragments:
            flags |= 0x1
        flags_fragoff = (flags << 13) | self.fragment_offset
        src_bytes = ip_to_bytes(self.src)
        dst_bytes = ip_to_bytes(self.dst)
        header_wo_checksum = _IPV4_HEADER.pack(
            version_ihl,
            0,
            IPV4_HEADER_LEN + len(self.payload),
            self.ipid,
            flags_fragoff,
            self.ttl,
            int(self.protocol),
            0,
            src_bytes,
            dst_bytes,
        )
        checksum = internet_checksum(header_wo_checksum)
        header = _IPV4_HEADER.pack(
            version_ihl,
            0,
            IPV4_HEADER_LEN + len(self.payload),
            self.ipid,
            flags_fragoff,
            self.ttl,
            int(self.protocol),
            checksum,
            src_bytes,
            dst_bytes,
        )
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "IPv4Packet":
        """Decode wire bytes produced by :meth:`encode`."""
        if len(data) < IPV4_HEADER_LEN:
            raise PacketError("truncated IPv4 header")
        (
            version_ihl,
            _tos,
            total_length,
            ipid,
            flags_fragoff,
            ttl,
            protocol,
            _checksum,
            src_bytes,
            dst_bytes,
        ) = _IPV4_HEADER.unpack(data[:IPV4_HEADER_LEN])
        if version_ihl >> 4 != 4:
            raise PacketError("not an IPv4 packet")
        if total_length != len(data):
            raise PacketError(
                f"length mismatch: header says {total_length}, got {len(data)}"
            )
        flags = flags_fragoff >> 13
        return cls(
            src=int_to_ip(int.from_bytes(src_bytes, "big")),
            dst=int_to_ip(int.from_bytes(dst_bytes, "big")),
            protocol=IPProtocol(protocol),
            payload=data[IPV4_HEADER_LEN:],
            ipid=ipid,
            ttl=ttl,
            dont_fragment=bool(flags & 0x2),
            more_fragments=bool(flags & 0x1),
            fragment_offset=flags_fragoff & 0x1FFF,
        )
