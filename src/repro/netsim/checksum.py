"""Ones'-complement arithmetic used by IPv4, UDP and ICMP checksums.

The UDP checksum is the central obstacle the off-path attacker must clear in
the fragment-replacement attack of the paper (section III-3): the checksum
value lives in the *first* fragment, which the attacker cannot modify, so the
attacker must craft a second fragment whose ones'-complement sum equals the
sum of the original second fragment.  These helpers implement the arithmetic
exactly as RFC 1071 specifies so that the "checksum fixing" code in
:mod:`repro.core.checksum_fix` operates on real numbers rather than a mock.
"""

from __future__ import annotations


def ones_complement_sum(data: bytes) -> int:
    """Return the 16-bit ones'-complement sum of ``data``.

    Odd-length inputs are padded with a zero byte, as RFC 1071 requires.
    The result is folded so that it fits in 16 bits.

    Implementation note (fast path): instead of looping over 16-bit words in
    Python, the whole buffer is read as one big integer.  Because
    ``2**16 ≡ 1 (mod 0xFFFF)``, that integer is congruent to the sum of its
    16-bit words modulo ``0xFFFF``, so ``total % 0xFFFF`` equals the folded
    word sum — with the one ambiguity that a positive sum which is a multiple
    of ``0xFFFF`` folds to ``0xFFFF``, never to zero.  This reproduces the
    word-loop result bit-for-bit (covered by property tests against the
    reference loop).
    """
    if len(data) % 2 == 1:
        data = data + b"\x00"
    total = int.from_bytes(data, "big")
    if total == 0:
        return 0
    folded = total % 0xFFFF
    return folded if folded else 0xFFFF


def fold_carries(total: int) -> int:
    """Fold carries above 16 bits back into the low 16 bits."""
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """Return the Internet checksum (RFC 1071) of ``data``.

    This is the ones'-complement of the ones'-complement sum.  A checksum of
    zero is transmitted as ``0xFFFF`` by UDP (zero means "no checksum"); that
    substitution is handled by the UDP layer, not here.
    """
    return (~ones_complement_sum(data)) & 0xFFFF


def add_ones_complement(left: int, right: int) -> int:
    """Add two 16-bit values using ones'-complement addition."""
    return fold_carries((left & 0xFFFF) + (right & 0xFFFF))


def sub_ones_complement(left: int, right: int) -> int:
    """Subtract ``right`` from ``left`` using ones'-complement arithmetic.

    Subtraction is addition of the ones'-complement (bit inverse) of the
    subtrahend.  This is the operation the attacker uses to compute the
    correction that must be applied to the sacrificial bytes of the spoofed
    second fragment.
    """
    return add_ones_complement(left, (~right) & 0xFFFF)


def verify_checksum(data: bytes) -> bool:
    """Return True when ``data`` (which embeds its checksum field) verifies.

    For a packet whose checksum field already contains the transmitted
    checksum, the ones'-complement sum over the whole packet must be
    ``0xFFFF``.
    """
    return ones_complement_sum(data) == 0xFFFF
