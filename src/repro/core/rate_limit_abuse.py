"""Removing NTP associations by abusing server-side rate limiting (section IV-B2).

NTP servers identify clients by source IP address only, so an off-path
attacker can impersonate the victim client towards any server simply by
spoofing the source address of mode 3 queries.  Sending such queries faster
than the server's rate-limit budget pushes the *victim* into the limited
state: the server stops answering the victim's own (slow, legitimate) polls,
the victim's reachability register for that server drains, and the client
eventually declares the association dead and goes back to DNS for a
replacement — straight into the poisoned cache.

Compared to a denial-of-service attack on the server this needs a trickle of
packets (one spoofed query every couple of seconds per server) and harms
nobody else: the server keeps serving all other clients.

The send loop is a simulator hot path — tens of thousands of spoofed
queries per campaign — so the packets are crafted without the generic
UDP-encode tower: the mode 3 wire payload and its checksum word sum are
memoised per burst instant (every active campaign fires at the same
simulated time), and the per-server checksum is assembled arithmetically
from cached address word sums.  The crafted bytes are pinned
byte-identical to ``encode_udp`` by property tests.

Two scheduling shapes are supported, both riding the burst engine:

* **per-campaign cohorts** (default): campaigns started by one
  ``target()`` / ``target_many()`` call form a *cohort* that keeps its own
  cadence — every ``query_interval`` the whole cohort fires as one burst
  heap entry (:meth:`repro.netsim.simulator.Simulator.post_burst_entry`)
  whose flat loop crafts one spoofed query per active member and hands
  the spray to :meth:`~repro.netsim.network.Network.transmit_burst`.
  This is *event-for-event equivalent* to the original per-campaign
  self-rescheduling loop — the cohort entry consumes one sequence number
  and counts one processed event per member, members fire in start
  order, and cohorts started at different instants never merge — so the
  golden fixed-seed results (event counts included) stay bit-identical
  while a 46-server round costs two heap entries instead of 92.
* **batched rounds** (``batched=True``): one shared round grid for all
  campaigns; a campaign started *mid-interval* is folded onto the grid,
  so its first gap is shorter than ``query_interval`` — faster than
  per-campaign mode, never slower, but not query-for-query identical,
  which is why batching stays opt-in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.attacker import Attacker
from repro.netsim.packet import IPProtocol, IPv4Packet
from repro.netsim.simulator import Simulator
from repro.perf import STAGES, perf_counter
from repro.netsim.udp import (
    UDP_HEADER_LEN,
    _UDP_HEADER,
    _address_word_sum,
    payload_word_sum,
)
from repro.ntp.packet import NTPPacket, NTP_PORT

#: UDP length field of a spoofed mode 3 query (8-byte header + 48-byte NTP).
_QUERY_UDP_LENGTH = UDP_HEADER_LEN + 48
_PACK_UDP_HEADER = _UDP_HEADER.pack
_UDP_PROTOCOL = IPProtocol.UDP


@dataclass(slots=True)
class RemovalCampaign:
    """State of the spoofing campaign against one (victim, server) pair."""

    server_ip: str
    victim_ip: str
    started_at: float
    queries_sent: int = 0
    active: bool = True
    #: The constant part of the crafted query's checksum word sum — victim
    #: and server address sums, protocol word, UDP length (twice) and both
    #: ports.  Derived from the addresses at construction; only the
    #: per-burst payload sum is added per crafted query.
    base_sum: int = field(init=False)

    def __post_init__(self) -> None:
        self.base_sum = (
            _address_word_sum(self.victim_ip)
            + _address_word_sum(self.server_ip)
            + 17
            + _QUERY_UDP_LENGTH
            + _QUERY_UDP_LENGTH
            + NTP_PORT
            + NTP_PORT
        )


@dataclass(slots=True)
class RemoverStats:
    """Aggregate counters for the association-removal activity."""

    campaigns_started: int = 0
    campaigns_stopped: int = 0
    spoofed_queries_sent: int = 0


class _CohortRound:
    """One scheduled round of a campaign cohort (a simulator burst entry).

    ``count`` equals the cohort size at scheduling time, so the entry
    consumes one sequence number and counts one processed event per member
    — exactly what the old one-event-per-campaign rescheduling produced.
    Members that went inactive since the round was scheduled still count
    (their singular event would have fired as a no-op) but are dropped
    from the next round, again matching the singular shape.
    """

    __slots__ = ("remover", "campaigns", "count")

    def __init__(self, remover: "AssociationRemover", campaigns: list) -> None:
        self.remover = remover
        self.campaigns = campaigns
        self.count = len(campaigns)

    def run(self) -> None:
        self.remover._fire_cohort(self.campaigns)


class AssociationRemover:
    """Keeps chosen NTP servers rate-limiting the victim client.

    Parameters
    ----------
    query_interval:
        Interval between spoofed queries per server.  It must stay below the
        server's average-interval budget (8 s for the reference
        implementation) so the victim remains limited; the default of 2 s
        keeps the overall attack volume at a fraction of a packet per second
        per server.
    batched:
        Opt into batched rounds: one simulator event per interval sends the
        whole burst of spoofed queries (one per active campaign) through
        :meth:`~repro.netsim.network.Network.transmit_batch`.  Identical
        server-side effect for campaigns started together; staggered
        starts are folded onto the shared round grid (see module doc).
    """

    def __init__(
        self,
        attacker: Attacker,
        simulator: Simulator,
        victim_ip: str,
        query_interval: float = 2.0,
        batched: bool = False,
    ) -> None:
        if query_interval < 0:
            # Validated here because the send loop schedules with an inlined
            # Simulator.post, skipping post()'s own causality check.
            raise ValueError(f"query_interval must be >= 0, got {query_interval}")
        self.attacker = attacker
        self.simulator = simulator
        self.victim_ip = victim_ip
        self.query_interval = query_interval
        self.batched = batched
        self.stats = RemoverStats()
        self.campaigns: dict[str, RemovalCampaign] = {}
        #: Hot-loop handles resolved once (the send loop runs per query).
        self._network = attacker.network
        self._attacker_stats = attacker.stats
        #: Burst-instant memo: every active campaign fires at the same
        #: simulated time, so the mode 3 payload (which embeds the transmit
        #: timestamp) and its checksum word sum are computed once per burst.
        self._wire_time: Optional[float] = None
        self._wire: bytes = b""
        self._wire_sum = 0
        self._round_scheduled = False

    # -------------------------------------------------------------- control
    def target(self, server_ip: str) -> RemovalCampaign:
        """Start (or return the existing) campaign against one server."""
        if server_ip in self.campaigns and self.campaigns[server_ip].active:
            return self.campaigns[server_ip]
        campaign = self._new_campaign(server_ip)
        if self.batched:
            self._send_round_for([campaign])
            if not self._round_scheduled:
                self._round_scheduled = True
                self.simulator.post(self.query_interval, self._send_round)
        else:
            cohort = [campaign]
            self._send_cohort(cohort)
            self._schedule_cohort(cohort)
        return campaign

    def target_many(self, server_ips: list[str]) -> list[RemovalCampaign]:
        """Start campaigns against a whole list of servers (scenario P1).

        Campaigns started here form one *cohort*: every round is a single
        burst heap entry and one batched spray instead of one event and
        one transmit per server (see the module docstring for the
        equivalence argument).
        """
        if self.batched:
            return [self.target(ip) for ip in server_ips]
        campaigns: list[RemovalCampaign] = []
        cohort: list[RemovalCampaign] = []
        for server_ip in server_ips:
            existing = self.campaigns.get(server_ip)
            if existing is not None and existing.active:
                campaigns.append(existing)
                continue
            campaign = self._new_campaign(server_ip)
            campaigns.append(campaign)
            cohort.append(campaign)
        if cohort:
            self._send_cohort(cohort)
            self._schedule_cohort(cohort)
        return campaigns

    def _new_campaign(self, server_ip: str) -> RemovalCampaign:
        campaign = RemovalCampaign(
            server_ip=server_ip,
            victim_ip=self.victim_ip,
            started_at=self.simulator.now,
        )
        self.campaigns[server_ip] = campaign
        self.stats.campaigns_started += 1
        return campaign

    def stop(self, server_ip: Optional[str] = None) -> None:
        """Stop one campaign, or all campaigns."""
        targets = [server_ip] if server_ip else list(self.campaigns)
        for ip in targets:
            campaign = self.campaigns.get(ip)
            if campaign is not None and campaign.active:
                campaign.active = False
                self.stats.campaigns_stopped += 1

    def active_targets(self) -> list[str]:
        """Servers currently being kept in the rate-limited state."""
        return [ip for ip, campaign in self.campaigns.items() if campaign.active]

    # ------------------------------------------------------------- spoofing
    def _query_payload(self, now: float) -> None:
        """Refresh the per-burst mode 3 wire payload memo for time ``now``."""
        wire = NTPPacket.client_query_wire(now)
        self._wire = wire
        self._wire_sum = payload_word_sum(wire)
        self._wire_time = now

    def _craft_query(self, campaign: RemovalCampaign) -> IPv4Packet:
        """One spoofed query packet, byte-identical to the encode_udp path.

        The checksum is assembled from the per-burst payload sum and the
        campaign's precomputed constant word sum (``base_sum``); the fold
        deliberately inlines
        :func:`repro.netsim.udp.udp_checksum_from_sums` (the call frame is
        measurable over tens of thousands of queries).  Drift between this
        copy and the helper is caught by
        ``test_prop_batch_delivery.test_spoofed_query_crafting_matches_encode_udp``,
        which pins this method's output byte-identical to the generic
        ``encode_udp`` tower.
        """
        folded = (campaign.base_sum + self._wire_sum) % 0xFFFF
        checksum = ~(folded if folded else 0xFFFF) & 0xFFFF
        payload = (
            _PACK_UDP_HEADER(
                NTP_PORT, NTP_PORT, _QUERY_UDP_LENGTH, checksum if checksum else 0xFFFF
            )
            + self._wire
        )
        return IPv4Packet.udp(
            self.victim_ip, campaign.server_ip, payload, campaign.queries_sent & 0xFFFF
        )

    def _fire_cohort(self, campaigns: list) -> None:
        """One cohort round: spray the still-active members, reschedule them.

        The burst-entry callback for default-mode cohorts.  Inactive
        members are dropped here — their singular events would have fired
        as no-ops and not rescheduled, and the cohort entry already
        counted them — so a cohort shrinks exactly as the per-campaign
        chains would have.
        """
        active = [campaign for campaign in campaigns if campaign.active]
        if not active:
            return
        self._send_cohort(active)
        self._schedule_cohort(active)

    def _schedule_cohort(self, campaigns: list) -> None:
        """Queue the cohort's next round as one fire-and-forget heap entry."""
        if len(campaigns) == 1:
            # A one-member cohort degrades to the anonymous post the old
            # per-campaign loop pushed: same entry count, cheaper dispatch.
            self.simulator.post(self.query_interval, self._fire_cohort, campaigns)
        else:
            self.simulator.post_burst_entry(
                self.query_interval, _CohortRound(self, campaigns)
            )

    def _send_cohort(self, campaigns: list) -> None:
        """Craft and inject one spoofed query per campaign as one spray.

        The flat loop the burst engine buys: the wire memo is refreshed
        once, the counters bumped once, and the whole spray goes through
        :meth:`~repro.netsim.network.Network.transmit_burst` — one heap
        entry, one vectorised checksum verify on delivery.  Craft order is
        campaign order, so delivery order, loss draws and IPID usage match
        the old query-at-a-time loop exactly.
        """
        started = perf_counter() if STAGES.enabled else 0.0
        now = self.simulator._now  # slot read; fires tens of thousands of times
        if now != self._wire_time:
            self._query_payload(now)
        # Inlined _craft_query (which stays the reference implementation,
        # pinned byte-identical to encode_udp by the crafting property
        # test; a drifting copy here fails the golden determinism test the
        # moment a checksum stops verifying): one method frame per query is
        # measurable over tens of thousands of crafts.
        wire = self._wire
        wire_sum = self._wire_sum
        victim_ip = self.victim_ip
        pack = _PACK_UDP_HEADER
        new_packet = IPv4Packet.__new__
        packet_cls = IPv4Packet
        packets = []
        append = packets.append
        for campaign in campaigns:
            folded = (campaign.base_sum + wire_sum) % 0xFFFF
            checksum = ~(folded if folded else 0xFFFF) & 0xFFFF
            payload = (
                pack(
                    NTP_PORT,
                    NTP_PORT,
                    _QUERY_UDP_LENGTH,
                    checksum if checksum else 0xFFFF,
                )
                + wire
            )
            # Inlined IPv4Packet.udp (slot-for-slot): even the fast
            # constructor's call frame shows up over a whole campaign.
            packet = new_packet(packet_cls)
            packet.src = victim_ip
            packet.dst = campaign.server_ip
            packet.protocol = _UDP_PROTOCOL
            packet.payload = payload
            packet.ipid = campaign.queries_sent & 0xFFFF
            packet.ttl = 64
            packet.dont_fragment = False
            packet.more_fragments = False
            packet.fragment_offset = 0
            # The spoofed tag rides the fresh metadata dict directly,
            # replacing Network.inject's setdefault.
            packet.metadata = {"spoofed": True}
            campaign.queries_sent += 1
            append(packet)
        count = len(packets)
        self.stats.spoofed_queries_sent += count
        stats = self._attacker_stats
        stats.spoofed_ntp_queries_sent += count
        stats.packets_injected += count
        self._network.transmit_burst(packets)
        if started:
            # Driver-side attribution (see repro.perf.DRIVER_STAGES): the
            # whole craft-and-spray window is codec-free, so the bucket is
            # disjoint from decode/encode and the delivery pipeline (which
            # runs later, at heap-drain time).
            STAGES.add("campaign_send", perf_counter() - started)

    # ------------------------------------------------------- batched rounds
    def _send_round(self) -> None:
        """One batched round: a burst of queries for every active campaign."""
        active = [c for c in self.campaigns.values() if c.active]
        if not active:
            self._round_scheduled = False
            return
        self._send_round_for(active)
        self.simulator.post(self.query_interval, self._send_round)

    def _send_round_for(self, campaigns: list[RemovalCampaign]) -> None:
        started = perf_counter() if STAGES.enabled else 0.0
        now = self.simulator.now
        if now != self._wire_time:
            self._query_payload(now)
        packets = []
        for campaign in campaigns:
            packets.append(self._craft_query(campaign))
            campaign.queries_sent += 1
        count = len(packets)
        self.stats.spoofed_queries_sent += count
        self.attacker.stats.spoofed_ntp_queries_sent += count
        self.attacker.inject_burst(packets)
        if started:
            STAGES.add("campaign_send", perf_counter() - started)
