#!/usr/bin/env python
"""Benchmark entry point: microbenchmarks + one end-to-end scenario → JSON.

Runs the netsim microbenchmark suite (event-loop seed-vs-fast comparison,
packets/sec, DNS codec ops/sec) plus one end-to-end Table II scenario through
the experiment engine, then writes/updates ``BENCH_netsim.json`` at the
repository root so future PRs have a performance trajectory to compare
against.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py [--output PATH]
        [--rounds N] [--workers N] [--quick]

``--quick`` trims the round count for smoke runs (CI that only needs the
file refreshed, not tight numbers).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.experiments import ExperimentRunner, RunSpec, write_bench_json  # noqa: E402
from repro.experiments.runner import timings_summary  # noqa: E402

from bench_micro_netsim import run_micro_benchmarks  # noqa: E402
from check_regression import compare  # noqa: E402


def _best_timing_outcome(scenario: str, max_workers: int | None, rounds: int):
    """Run ``rounds`` uninstrumented timing runs of one fixed-seed cell.

    Returns ``(best_ok_outcome_or_fallback, rounds_run)`` — the shared
    best-of machinery behind the end-to-end summaries and the late
    re-sampling pass.
    """
    spec = RunSpec.make(scenario, client="ntpd", attack="P1", seed=5)
    runner = ExperimentRunner(max_workers=max_workers)
    outcomes = [runner.run([spec])[0] for _ in range(max(1, rounds))]
    best = min(
        (outcome for outcome in outcomes if outcome.ok),
        key=lambda o: o.wall_time,
        default=outcomes[0],
    )
    return best, len(outcomes)


def run_end_to_end(max_workers: int | None, timing_rounds: int = 5) -> dict:
    """One fixed-seed Table II cell (ntpd / P1) through the engine.

    Two phases, reported in one summary:

    * **timing** — ``timing_rounds`` uninstrumented runs; the headline
      ``events_per_wall_second`` is the best observed rate (noise-robust
      maximum, like the microbenchmarks), free of observer overhead.
    * **attribution** — one run with per-stage counters enabled, so the
      persisted summary carries ``stage_time_shares`` with the named
      delivery-pipeline stages (defrag / checksum / demux / handler) future
      PRs use to find the next bottleneck.

    Both phases run the identical fixed-seed scenario; stage collection
    never changes results, only adds wall time — which is exactly why the
    headline rate is taken from the uninstrumented runs.
    """
    best, rounds_run = _best_timing_outcome(
        "table2_runtime_attack", max_workers, timing_rounds
    )

    spec = RunSpec.make("table2_runtime_attack", client="ntpd", attack="P1", seed=5)
    stage_runner = ExperimentRunner(max_workers=max_workers, collect_stage_stats=True)
    staged = stage_runner.run([spec])
    summary = timings_summary(staged)
    summary["execution_mode"] = stage_runner.last_execution_mode
    summary["timing_rounds"] = rounds_run
    outcome = staged[0]
    if outcome.ok and best.ok:
        # ``total_wall_time_seconds`` (from timings_summary) is the
        # *instrumented* attribution run's wall clock; the headline rate
        # and ``best_timing_wall_seconds`` come from the uninstrumented
        # timing rounds, so the two wall times intentionally differ.
        summary["best_timing_wall_seconds"] = round(best.wall_time, 6)
        summary["result"] = {
            "success": best.result["success"],
            "minutes": best.result["minutes"],
            "shift": best.result["shift"],
            "events_processed": best.result["events_processed"],
            "events_per_wall_second": round(
                best.result["events_processed"] / best.wall_time
            ),
        }
    else:
        summary["error"] = outcome.error or best.error
    return summary


def run_trusted_fabric(max_workers: int | None, timing_rounds: int = 5) -> dict:
    """The lab-internal fabric Table II variant (trusted victim↔upstream links).

    Timing-only (best of ``timing_rounds`` uninstrumented runs, like the
    default cell's headline number).  ``trusted_speedup`` — the end-to-end
    wall-clock ratio against the default cell, i.e. what link trust
    actually buys on a full Table II run (the microbench ratio only covers
    dispatch) — is attached by :func:`attach_trusted_speedup` after both
    cells' timings are final.
    """
    best, rounds_run = _best_timing_outcome(
        "table2_trusted_fabric", max_workers, timing_rounds
    )
    if not best.ok:
        return {"error": best.error}
    return {
        "timing_rounds": rounds_run,
        "best_timing_wall_seconds": round(best.wall_time, 6),
        "result": {
            "success": best.result["success"],
            "minutes": best.result["minutes"],
            "shift": best.result["shift"],
            "events_processed": best.result["events_processed"],
            "events_per_wall_second": round(
                best.result["events_processed"] / best.wall_time
            ),
        },
    }


def run_population_fleet(
    max_workers: int | None = None, timing_rounds: int = 3
) -> dict:
    """Population-engine throughput cell: one fixed heterogeneous mini-fleet.

    Best-of ``timing_rounds`` runs of a 64-client fleet (paper-share client
    mix, mild poll jitter) through the ``population_fleet`` scenario.  The
    headline ``clients_per_sec`` — fleet size over the best wall time — is
    the regression-gate metric for the multi-victim population path, which
    exercises scheduling, delivery and attack machinery in a shape none of
    the single-victim cells do.
    """
    from repro.population.spec import PopulationSpec

    population = PopulationSpec(
        size=64,
        poll_jitter=0.05,
        pool_size=16,
        warmup_seconds=300.0,
        # Long enough for the fast client models to actually land their
        # shifts (~16 simulated minutes for ntpd), so the cell measures
        # attack traffic, not just idle polling.
        max_duration_hours=0.35,
    )
    spec = RunSpec.make("population_fleet", spec_json=population.to_json(), seed=7)
    runner = ExperimentRunner(max_workers=max_workers)
    outcomes = [runner.run([spec])[0] for _ in range(max(1, timing_rounds))]
    best = min(
        (outcome for outcome in outcomes if outcome.ok),
        key=lambda o: o.wall_time,
        default=outcomes[0],
    )
    if not best.ok:
        return {"error": best.error}
    result = best.result
    return {
        "timing_rounds": len(outcomes),
        "best_timing_wall_seconds": round(best.wall_time, 6),
        "result": {
            "size": result["size"],
            "successes": result["successes"],
            "success_rate": result["success_rate"],
            "events_processed": result["events_processed"],
            "clients_per_sec": round(result["size"] / best.wall_time, 3),
            "events_per_wall_second": round(
                result["events_processed"] / best.wall_time
            ),
        },
    }


def attach_trusted_speedup(trusted: dict, default_summary: dict) -> None:
    """Record the trusted cell's end-to-end ratio against the default cell."""
    default_rate = default_summary.get("result", {}).get("events_per_wall_second")
    if default_rate and trusted.get("result"):
        trusted["trusted_speedup"] = round(
            trusted["result"]["events_per_wall_second"] / default_rate, 3
        )


def refine_timing(
    summary: dict, scenario: str, max_workers: int | None, rounds: int = 3
) -> None:
    """Re-sample a scenario's wall time late in the session, keep the best.

    The end-to-end cells take well under a second per round, so a single
    host-scheduling stall (routine on 1-vCPU CI boxes) can cover every
    round of one timing batch and pin the committed rate far below the
    machine's real capability.  Spreading extra rounds across the session
    — this runs *after* the minutes-long microbenchmark suite — makes the
    committed number a best-of over temporally separated windows.
    """
    result = summary.get("result")
    if not result:
        return
    best, rounds_run = _best_timing_outcome(scenario, max_workers, rounds)
    if best.ok:
        rate = round(best.result["events_processed"] / best.wall_time)
        if rate > result["events_per_wall_second"]:
            result["events_per_wall_second"] = rate
            summary["best_timing_wall_seconds"] = round(best.wall_time, 6)
    summary["timing_rounds"] = summary.get("timing_rounds", 0) + rounds_run


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_netsim.json"),
        help="where to write the benchmark JSON (default: repo root)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5, help="best-of rounds per microbenchmark"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="experiment engine worker count"
    )
    parser.add_argument(
        "--quick", action="store_true", help="single round per microbenchmark"
    )
    parser.add_argument(
        "--no-check",
        action="store_true",
        help="skip the regression diff against the previously committed JSON",
    )
    parser.add_argument(
        "--check-threshold",
        type=float,
        default=0.2,
        help="tolerated fractional slowdown per metric (default 0.2)",
    )
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    rounds = 1 if args.quick else args.rounds

    baseline = None
    if not args.no_check and os.path.exists(args.output):
        try:
            with open(args.output, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError):
            baseline = None

    # End-to-end first: its headline events/wall-sec is the acceptance
    # metric, and measuring it before the microbenchmark load keeps the
    # process (allocator, caches, CPU thermal state) comparable across
    # refreshes.
    print("running end-to-end scenario (Table II, ntpd/P1, seed 5)...", flush=True)
    end_to_end = run_end_to_end(args.workers)
    print(json.dumps(end_to_end, indent=2))

    print("running trusted-fabric variant (lab-internal links)...", flush=True)
    trusted = run_trusted_fabric(args.workers)
    print(json.dumps(trusted, indent=2))

    print("running population fleet cell (64 clients, seed 7)...", flush=True)
    population = run_population_fleet(args.workers)
    print(json.dumps(population, indent=2))

    print(f"running microbenchmarks (best of {rounds})...", flush=True)
    micro = run_micro_benchmarks(rounds=rounds)
    print(json.dumps(micro, indent=2))

    # Late re-sampling: a second, temporally separated batch of end-to-end
    # timing rounds, so one host-scheduling stall cannot pin the committed
    # rates low (see refine_timing).
    print("re-sampling end-to-end timings...", flush=True)
    refine_timing(end_to_end, "table2_runtime_attack", args.workers)
    refine_timing(trusted, "table2_trusted_fabric", args.workers)
    attach_trusted_speedup(trusted, end_to_end)
    print(
        json.dumps(
            {
                "table2_ntpd_p1": end_to_end.get("result"),
                "table2_ntpd_p1_trusted": trusted.get("result"),
            },
            indent=2,
        )
    )

    # Gate BEFORE overwriting: a failing run must leave the committed
    # baseline intact, otherwise an immediate rerun would compare the fresh
    # numbers against the regressed ones and silently pass.
    if baseline is not None:
        fresh = {
            "microbenchmarks": micro,
            "experiments": {
                "table2_ntpd_p1": end_to_end,
                "table2_ntpd_p1_trusted": trusted,
                "population_fleet": population,
            },
        }
        regressions, _notes = compare(baseline, fresh, threshold=args.check_threshold)
        for regression in regressions:
            print(f"REGRESSION: {regression}")
        if regressions:
            print(
                f"{len(regressions)} metric(s) regressed beyond "
                f"{args.check_threshold:.0%} of the committed baseline; "
                f"{args.output} left unchanged"
            )
            return 1
        print("regression check: ok (vs previously committed JSON)")

    document = write_bench_json(
        args.output,
        microbenchmarks=micro,
        experiments={
            "table2_ntpd_p1": end_to_end,
            "table2_ntpd_p1_trusted": trusted,
            "population_fleet": population,
        },
    )
    print(f"wrote {args.output}")
    try:
        # Feed the trend gate's rolling window (best-effort: a read-only
        # checkout must not fail the benchmark run over bookkeeping).
        from check_regression import DEFAULT_HISTORY_DIR, append_history

        append_history(document, DEFAULT_HISTORY_DIR)
        print(f"recorded sample into {DEFAULT_HISTORY_DIR}")
    except Exception as exc:  # noqa: BLE001 - history is advisory
        print(f"note: could not record bench history ({exc})")
    speedup = document["microbenchmarks"]["event_loop"]["delivery"]["speedup"]
    print(f"event-loop delivery speedup vs seed: {speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
