"""The degenerate fleet reproduces the single-victim golden run bit-for-bit.

A zero-noise, zero-churn, single-``ntpd`` spec with the Table II defaults
must issue exactly the same simulator/RNG call sequence as the
``table2_runtime_attack`` scenario — same events, same packets, same
achieved shift to the last bit.  This is the contract that makes the
population engine an *extension* of the validated single-victim path
rather than a parallel implementation that can silently drift.
"""

from __future__ import annotations

from repro.experiments.scenarios import get_scenario
from repro.population.fleet import run_fleet
from repro.population.spec import PopulationSpec

#: The pinned golden numbers for (ntpd, P1, seed 5, pool 48, warmup 1500 s)
#: — the same cell every benchmark and the trusted-fabric suite pin.
GOLDEN = {
    "success": True,
    "minutes": 15.5,
    "shift": -500.00999995431766,
    "events_processed": 48106,
    "packets_transmitted": 24730,
}

DEGENERATE = PopulationSpec(size=1, client_mix={"ntpd": 1.0})


class TestGoldenBitIdentity:
    def test_degenerate_fleet_matches_golden_constants(self):
        document = run_fleet(DEGENERATE, seed=5)
        assert document["size"] == 1
        assert document["successes"] == 1
        client = document["clients"][0]
        assert client["success"] is GOLDEN["success"]
        assert client["minutes"] == GOLDEN["minutes"]
        assert client["shift"] == GOLDEN["shift"]
        assert document["events_processed"] == GOLDEN["events_processed"]
        assert document["packets_transmitted"] == GOLDEN["packets_transmitted"]

    def test_degenerate_fleet_matches_live_scenario(self):
        # Not just the pinned constants: the fleet must track whatever the
        # single-victim scenario computes today, field for field.
        scenario = get_scenario("table2_runtime_attack")
        single = scenario(client="ntpd", attack="P1", seed=5)
        document = run_fleet(DEGENERATE, seed=5)
        client = document["clients"][0]
        assert client["success"] == single["success"]
        assert client["minutes"] == single["minutes"]
        assert client["shift"] == single["shift"]
        assert document["events_processed"] == single["events_processed"]
        assert document["packets_transmitted"] == single["packets_transmitted"]
