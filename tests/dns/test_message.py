"""Tests for DNS message wire encoding and decoding."""

import pytest

from repro.dns.errors import MessageError
from repro.dns.message import (
    DNSHeaderFlags,
    DNSMessage,
    ResponseCode,
    max_a_records_in_udp_response,
    record_offsets,
)
from repro.dns.records import RRType, a_record, ns_record, txt_record


class TestHeaderFlags:
    def test_round_trip(self):
        flags = DNSHeaderFlags(qr=True, aa=True, rd=True, ra=True, ad=True, rcode=ResponseCode.NXDOMAIN)
        assert DNSHeaderFlags.decode(flags.encode()) == flags

    def test_defaults(self):
        flags = DNSHeaderFlags()
        assert not flags.qr and flags.rd and flags.rcode is ResponseCode.NOERROR


class TestQueriesAndResponses:
    def test_query_factory(self):
        query = DNSMessage.query("pool.ntp.org", RRType.A, txid=0x1234)
        assert query.txid == 0x1234
        assert not query.is_response
        assert query.question.key == ("pool.ntp.org", RRType.A)

    def test_rd_zero_query(self):
        query = DNSMessage.query("pool.ntp.org", rd=False)
        assert not query.flags.rd

    def test_response_echoes_txid_and_question(self):
        query = DNSMessage.query("pool.ntp.org", txid=77)
        response = query.make_response(answers=[a_record("pool.ntp.org", "1.2.3.4")])
        assert response.txid == 77
        assert response.is_response
        assert response.question.name == "pool.ntp.org"
        assert len(response.answers) == 1

    def test_question_required(self):
        with pytest.raises(MessageError):
            DNSMessage().question

    def test_invalid_txid_rejected(self):
        with pytest.raises(MessageError):
            DNSMessage(txid=1 << 16)


class TestWireFormat:
    def build_response(self):
        query = DNSMessage.query("pool.ntp.org", txid=0xBEEF)
        response = query.make_response(
            answers=[a_record("pool.ntp.org", f"203.0.113.{i}", ttl=150) for i in range(1, 5)]
        )
        response.authority.append(ns_record("pool.ntp.org", "ns1.pool.ntp.org"))
        response.additional.append(a_record("ns1.pool.ntp.org", "198.51.100.1"))
        return response

    def test_round_trip(self):
        response = self.build_response()
        decoded = DNSMessage.decode(response.encode())
        assert decoded.txid == 0xBEEF
        assert [str(r.data) for r in decoded.answers] == [f"203.0.113.{i}" for i in range(1, 5)]
        assert decoded.authority[0].rtype is RRType.NS
        assert decoded.additional[0].name == "ns1.pool.ntp.org"

    def test_compression_reduces_size(self):
        response = self.build_response()
        encoded = response.encode()
        # Rough upper bound: an uncompressed encoding would repeat the
        # 14-byte owner name for each of the 6 records.
        assert len(encoded) < 12 + 18 + 6 * (16 + 14) + 40

    def test_truncated_header_rejected(self):
        with pytest.raises(MessageError):
            DNSMessage.decode(b"\x00\x01\x02")

    def test_truncated_record_rejected(self):
        encoded = self.build_response().encode()
        with pytest.raises(MessageError):
            DNSMessage.decode(encoded[:-3])

    def test_query_encoding_size(self):
        # header (12) + qname pool.ntp.org (14) + qtype/qclass (4)
        assert len(DNSMessage.query("pool.ntp.org").encode()) == 30

    def test_records_listing(self):
        response = self.build_response()
        assert len(response.records()) == 6


class TestRecordOffsets:
    def test_offsets_locate_a_record_addresses(self):
        response = TestWireFormat().build_response()
        encoded = response.encode()
        offsets = record_offsets(encoded)
        a_offsets = [o for o in offsets if o.rtype is RRType.A and o.section == "answer"]
        assert len(a_offsets) == 4
        first = a_offsets[0]
        assert encoded[first.rdata_offset : first.rdata_offset + 4] == bytes([203, 0, 113, 1])
        assert first.rdlength == 4
        assert first.ttl_low_offset == first.ttl_offset + 2

    def test_sections_labelled(self):
        encoded = TestWireFormat().build_response().encode()
        sections = [o.section for o in record_offsets(encoded)]
        assert sections == ["answer"] * 4 + ["authority", "additional"]

    def test_end_offsets_are_monotonic(self):
        encoded = TestWireFormat().build_response().encode()
        offsets = record_offsets(encoded)
        ends = [o.end_offset for o in offsets]
        assert ends == sorted(ends)
        assert ends[-1] == len(encoded)


class TestResponseCapacity:
    def test_paper_bound_of_89_addresses(self):
        # With a 1500-byte MTU and an EDNS0 OPT record, 89 A records fit.
        from repro.core.chronos_attack import max_addresses_in_response

        assert max_addresses_in_response() == 89

    def test_classic_512_byte_limit(self):
        assert max_a_records_in_udp_response(payload_limit=512) == 30

    def test_capacity_monotone_in_payload_limit(self):
        small = max_a_records_in_udp_response(payload_limit=512)
        large = max_a_records_in_udp_response(payload_limit=1472)
        assert large > small

    def test_large_response_round_trips(self):
        query = DNSMessage.query("pool.ntp.org", txid=1)
        answers = [a_record("pool.ntp.org", f"66.6.{i // 250}.{i % 250}", ttl=90000) for i in range(89)]
        response = query.make_response(answers=answers)
        encoded = response.encode()
        assert len(encoded) <= 1472
        assert len(DNSMessage.decode(encoded).answers) == 89

    def test_padding_txt_increases_size(self):
        query = DNSMessage.query("pool.ntp.org", txid=1)
        small = query.make_response(answers=[a_record("pool.ntp.org", "1.1.1.1")])
        padded = query.make_response(answers=[a_record("pool.ntp.org", "1.1.1.1")])
        padded.additional.append(txt_record("info.pool.ntp.org", "x" * 200))
        assert len(padded.encode()) > len(small.encode()) + 200


class TestRecordOffsetsTruncation:
    """record_offsets must reject truncated input with MessageError.

    The seed implementation read ``data[cursor:cursor+10]`` without a bounds
    check, so truncated messages escaped as ``struct.error`` instead of the
    documented :class:`MessageError`.
    """

    def _wire(self):
        query = DNSMessage.query("pool.ntp.org", txid=7)
        response = query.make_response(
            answers=[a_record("pool.ntp.org", "203.0.113.1", ttl=150)]
        )
        response.authority.append(ns_record("pool.ntp.org", "ns1.pool.ntp.org"))
        return response.encode()

    def test_full_message_is_accepted(self):
        assert len(record_offsets(self._wire())) == 2

    def test_every_truncation_raises_dns_error(self):
        # Any cut point must surface as the documented DNSError hierarchy
        # (MessageError for structure, NameError_ inside a name) — never as
        # a bare struct.error.
        from repro.dns.errors import DNSError

        wire = self._wire()
        for cut in range(len(wire)):
            with pytest.raises(DNSError):
                record_offsets(wire[:cut])

    def test_truncated_fixed_fields_raise_message_error(self):
        wire = self._wire()
        offsets = record_offsets(wire)
        # Cut inside the 10-byte (type, class, ttl, rdlength) block of the
        # first record: exactly the read the seed performed unguarded.
        cut = offsets[0].type_offset + 5
        with pytest.raises(MessageError):
            record_offsets(wire[:cut])

    def test_truncated_rdata_raises_message_error(self):
        wire = self._wire()
        offsets = record_offsets(wire)
        cut = offsets[0].rdata_offset + offsets[0].rdlength - 1
        with pytest.raises(MessageError):
            record_offsets(wire[:cut])
