"""Numpy-absent operation: the guarded fast paths must degrade, not die.

``repro.netsim.burst`` and ``repro.ntp.rate_limit`` import numpy behind a
guard and carry pure-python twins (the flat big-int checksum fold, the
running-max ``consume_times`` loop).  These tests run a subprocess whose
``sys.meta_path`` blocks numpy outright and assert the twins import, run,
and — for ``consume_times`` — produce results bit-identical to the
vectorised backend computed in the parent process (same IEEE op order).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.ntp.rate_limit import RateLimiter

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

BLOCKER_PRELUDE = """
import importlib.abc
import os
import sys
import types

class _NumpyBlocker(importlib.abc.MetaPathFinder):
    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError(f"numpy blocked for this test ({name})")
        return None

sys.meta_path.insert(0, _NumpyBlocker())
assert "numpy" not in sys.modules

# The package __init__ modules pull in the simulator, whose seeded RNG
# legitimately requires numpy.  The degradation contract belongs to the
# leaf modules (burst, rate_limit) and their numpy-free transitive deps,
# so import those directly under stub parent packages that skip __init__.
_SRC = os.environ["PYTHONPATH"]
for _name in ("repro", "repro.netsim", "repro.ntp"):
    _pkg = types.ModuleType(_name)
    _pkg.__path__ = [os.path.join(_SRC, *_name.split("."))]
    _pkg.__package__ = _name
    sys.modules[_name] = _pkg
"""


def run_blocked(script: str, payload: dict | None = None) -> dict:
    """Run ``script`` in a numpy-blocked subprocess; return its JSON stdout."""
    env = dict(os.environ, PYTHONPATH=os.path.abspath(REPO_SRC))
    process = subprocess.run(
        [sys.executable, "-c", BLOCKER_PRELUDE + script],
        input=json.dumps(payload or {}),
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert process.returncode == 0, process.stderr
    return json.loads(process.stdout)


class TestGuardedImports:
    def test_modules_import_without_numpy(self):
        result = run_blocked(
            """
import json
from repro.netsim import burst
from repro.ntp import rate_limit
print(json.dumps({
    "burst_np": burst.np is None,
    "rate_limit_np": rate_limit.np is None,
}))
"""
        )
        assert result == {"burst_np": True, "rate_limit_np": True}


class TestBurstChecksumWithoutNumpy:
    def test_vector_verify_accepts_and_rejects_correctly(self):
        # Bursts both below and far above NUMPY_VERIFY_MIN: without numpy
        # the stacked pass must never be attempted and the flat big-int
        # fold must verify every eligible packet at any size.
        result = run_blocked(
            """
import json
import sys
from types import SimpleNamespace

from repro.netsim.burst import DeliveryBurst, NUMPY_VERIFY_MIN
from repro.netsim.packet import IPv4Packet
from repro.netsim.udp import UDPDatagram, _address_word_sum, encode_udp

SRC, DST = "10.0.0.1", "10.0.0.2"
pipeline = SimpleNamespace(
    burst_parse=True,
    vector_verify=True,
    addr_sum=_address_word_sum(SRC) + _address_word_sum(DST),
)

def make(index, corrupt=False):
    payload = encode_udp(SRC, DST, UDPDatagram(4000, 53, b"q%05d" % index))
    if corrupt:
        flipped = bytearray(payload)
        flipped[-1] ^= 0x04
        payload = bytes(flipped)
    return (pipeline, IPv4Packet.udp(SRC, DST, payload, index & 0xFFFF))

report = {}
for label, n in (("small", 6), ("large", NUMPY_VERIFY_MIN + 16)):
    items = [make(i, corrupt=(i % 3 == 0)) for i in range(n)]
    parsed = DeliveryBurst._vector_verify(items)
    report[label] = {
        "n": n,
        "accepted": sum(1 for entry in parsed if entry is not None),
        "rejected_are_corrupted": all(
            (entry is None) == (i % 3 == 0) for i, entry in enumerate(parsed)
        ),
        "ports": sorted({entry for entry in parsed if entry is not None}),
    }
print(json.dumps(report))
"""
        )
        for label in ("small", "large"):
            block = result[label]
            expected_accepted = block["n"] - (block["n"] + 2) // 3
            assert block["accepted"] == expected_accepted
            assert block["rejected_are_corrupted"] is True
            assert block["ports"] == [[4000, 53]]


SCHEDULE = [0.0, 0.0, 0.5, 1.0, 1.0, 3.25, 3.25, 3.25, 10.0, 64.0, 64.5, 65.0]
LIMITER_PARAMS = dict(average_interval=7.77, burst_tolerance=10.0)

CONSUME_TIMES_SCRIPT = """
import json
import sys

from repro.ntp.rate_limit import RateLimiter

payload = json.loads(sys.stdin.read())
limiter = RateLimiter(**payload["params"])
decisions = limiter.consume_times("10.9.9.9", payload["times"])
state = limiter.sources["10.9.9.9"]
print(json.dumps({
    "decisions": [d.value for d in decisions],
    "score": state.score,
    "last_seen": state.last_seen,
    "drops": state.drops,
    "kod_sent": state.kod_sent,
    "queries_seen": limiter.queries_seen,
    "queries_dropped": limiter.queries_dropped,
    "kods_sent": limiter.kods_sent,
}))
"""


class TestConsumeTimesWithoutNumpy:
    def test_pure_python_twin_is_bit_identical(self):
        # Vectorised backend, in this process (numpy available).
        limiter = RateLimiter(**LIMITER_PARAMS)
        decisions = limiter.consume_times("10.9.9.9", SCHEDULE)
        state = limiter.sources["10.9.9.9"]

        blocked = run_blocked(
            CONSUME_TIMES_SCRIPT,
            {"params": LIMITER_PARAMS, "times": SCHEDULE},
        )
        assert blocked["decisions"] == [d.value for d in decisions]
        # Bit-identical float state: JSON round-trips doubles exactly.
        assert blocked["score"] == state.score
        assert blocked["last_seen"] == state.last_seen
        assert blocked["drops"] == state.drops
        assert blocked["kod_sent"] == state.kod_sent
        assert blocked["queries_seen"] == limiter.queries_seen
        assert blocked["queries_dropped"] == limiter.queries_dropped
        assert blocked["kods_sent"] == limiter.kods_sent

    def test_validation_still_enforced_without_numpy(self):
        result = run_blocked(
            """
import json
from repro.ntp.rate_limit import RateLimiter

limiter = RateLimiter()
try:
    limiter.consume_times("10.0.0.1", [2.0, 1.0])
except ValueError:
    ordered = True
else:
    ordered = False
try:
    RateLimiter(average_interval=-1.0).consume_times("10.0.0.1", [0.0])
except ValueError:
    negative = True
else:
    negative = False
print(json.dumps({
    "ordered": ordered,
    "negative": negative,
    "empty": RateLimiter().consume_times("10.0.0.1", []) == [],
}))
"""
        )
        assert result == {"ordered": True, "negative": True, "empty": True}
