"""NTP servers (honest, rate-limiting, and attacker controlled).

A server binds UDP port 123 on a simulated host and answers mode 3 queries
with mode 4 responses timestamped by its own clock.  Three behaviours matter
to the paper and are configurable:

* **rate limiting** (with or without Kiss-o'-Death) — abused by the run-time
  attack and surveyed in section VII-A (38 % of pool servers rate limit,
  33 % send KoD),
* **the reference-id leak** — a server synchronised to an upstream exposes
  that upstream's IPv4 address in its responses, which is how attack
  scenario P2 discovers a victim client's associations, and
* **the remote configuration interface** (ntpd mode 6/7) — 5.3 % of pool
  servers still answer it; it leaks all configured upstream servers at once.

An *attacker* server is simply a server whose clock carries the desired time
shift (e.g. -500 s): a victim that synchronises to it inherits the shift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.netsim.host import Host
from repro.netsim.simulator import Simulator
from repro.ntp.clock import SystemClock
from repro.ntp.packet import KissCode, NTPPacket, NTP_PACKET_LEN, NTP_PORT
from repro.ntp.rate_limit import RateLimitDecision, RateLimiter

#: Hoisted enum members: the drop path compares these once per received
#: query, and the two attribute loads per compare are measurable there.
_DROP = RateLimitDecision.DROP
_KOD = RateLimitDecision.KOD


@dataclass
class NTPServerConfig:
    """Behavioural knobs for one NTP server."""

    stratum: int = 2
    rate_limiting: bool = False
    send_kod: bool = True
    average_interval: float = 8.0
    burst_tolerance: float = 100.0
    open_config_interface: bool = False
    upstream_server: str = ""
    respond_probability: float = 1.0


@dataclass(slots=True)
class NTPServerStats:
    """Counters for tests and the measurement scans (slotted: bumped per query)."""

    queries_received: int = 0
    responses_sent: int = 0
    kods_sent: int = 0
    queries_dropped: int = 0
    config_queries_answered: int = 0


class NTPServer:
    """An NTP server instance bound to a simulated host."""

    def __init__(
        self,
        host: Host,
        simulator: Simulator,
        clock: Optional[SystemClock] = None,
        config: Optional[NTPServerConfig] = None,
        name: str = "",
    ) -> None:
        self.host = host
        self.simulator = simulator
        self.clock = clock or SystemClock(created_at=simulator.now)
        self.config = config or NTPServerConfig()
        self.name = name or host.name
        self.stats = NTPServerStats()
        self.rate_limiter = RateLimiter(
            average_interval=self.config.average_interval,
            burst_tolerance=self.config.burst_tolerance,
            send_kod=self.config.send_kod,
            enabled=self.config.rate_limiting,
        )
        self._rng = simulator.spawn_rng()
        #: The per-query handler, compiled once as a closure over the hot
        #: handles (stats block, simulator, limiter): a rate-limited
        #: spoofing flood runs it tens of thousands of times per campaign,
        #: and the ``self`` attribute chases are measurable there.  Both
        #: delivery shapes (per-query and burst) use the same compiled
        #: limiter view; a caller that swaps ``rate_limiter`` afterwards
        #: must call :meth:`recompile`.
        self._limiter = self.rate_limiter
        self._handler = self._compile_handler()
        self.socket = host.bind(NTP_PORT, self._handler)
        # Burst arrivals (N same-source queries at one instant, the shape a
        # spoofed flood produces) are absorbed through the rate limiter's
        # closed-form bulk accounting instead of N handler calls.
        self.socket.on_datagram_burst = self._on_packet_burst

    def recompile(self) -> None:
        """Re-bind the compiled handler's hot handles (after swapping
        ``rate_limiter``), keeping the per-query and burst paths on one
        limiter.  Mirrors :meth:`repro.netsim.datapath.HostDatapath.recompile`.
        """
        self._limiter = self.rate_limiter
        self._handler = self._compile_handler()
        self.socket.on_datagram = self._handler

    @property
    def ip(self) -> str:
        """The server's address."""
        return self.host.ip

    @classmethod
    def attacker_server(
        cls,
        host: Host,
        simulator: Simulator,
        time_shift: float,
        name: str = "attacker-ntp",
    ) -> "NTPServer":
        """Create a malicious server whose clock is shifted by ``time_shift``.

        The paper's lab evaluation uses a shift of -500 seconds; any victim
        client that adopts this server as its (majority) time source will
        converge to that shift.
        """
        clock = SystemClock(offset=time_shift, created_at=simulator.now)
        config = NTPServerConfig(stratum=2, rate_limiting=False)
        return cls(host, simulator, clock=clock, config=config, name=name)

    # -------------------------------------------------------------- serving
    def _compile_handler(self):
        """Build the per-query handler with the hot handles pre-bound.

        Routes on the mode bits alone; the full decode is deferred until a
        response is actually built.  A rate-limited spoofing flood — tens
        of thousands of dropped queries per campaign — never pays for
        parsing fields the drop path does not read.  The two guard tests
        reject exactly the payloads NTPPacket.decode() raises on
        (truncation, invalid mode 0), so the accounting that follows sees
        the same packets it always did and the deferred decode cannot
        fail.
        """
        stats = self.stats
        simulator = self.simulator
        check = self._limiter.check
        answer = self._answer_query
        config_query = self._handle_config_query

        def on_packet(payload: bytes, src_ip: str, src_port: int) -> None:
            if len(payload) < NTP_PACKET_LEN:
                return
            mode_bits = payload[0] & 0x7
            if mode_bits != 3:  # NTPMode.CLIENT
                if mode_bits == 6 or mode_bits == 7:  # CONTROL / PRIVATE
                    config_query(src_ip, src_port)
                return
            stats.queries_received += 1
            now = simulator._now  # slot read; the property costs a frame here
            decision = check(src_ip, now)
            if decision is _DROP:
                stats.queries_dropped += 1
                return
            answer(payload, src_ip, src_port, decision, now)

        return on_packet

    def _on_packet(self, payload: bytes, src_ip: str, src_port: int) -> None:
        """Sequential per-query entry (the burst fallback shares it too)."""
        self._handler(payload, src_ip, src_port)

    def _answer_query(
        self, payload: bytes, src_ip: str, src_port: int, decision, now: float
    ) -> None:
        """The non-drop tail of query handling: decode, KoD or respond."""
        stats = self.stats
        query = NTPPacket.decode(payload)
        if decision is _KOD:
            stats.kods_sent += 1
            kod = NTPPacket.kiss_of_death(query, KissCode.RATE)
            self.socket.sendto(kod.encode(), src_ip, src_port)
            return
        if self.config.respond_probability < 1.0 and self._rng.random() > self.config.respond_probability:
            stats.queries_dropped += 1
            return
        response = NTPPacket.server_response(
            query,
            server_time=self.clock.time(now),
            stratum=self.config.stratum,
            reference_id=self.config.upstream_server,
        )
        stats.responses_sent += 1
        self.socket.sendto(response.encode(), src_ip, src_port)

    def _on_packet_burst(self, payloads: list, src_ip: str, src_port: int) -> None:
        """Burst twin of :meth:`_on_packet` for N same-source arrivals.

        Observably equivalent to calling :meth:`_on_packet` once per
        payload in order (pinned by the server burst tests): the rate
        limiter advances through one
        :meth:`~repro.ntp.rate_limit.RateLimiter.consume_burst` call — its
        decisions for a same-instant burst are always RESPOND × n, then at
        most one KoD, then drops — and only the queries that actually get
        an answer are decoded.  Heterogeneous bursts (anything that is not
        a well-formed mode 3 query) and probabilistic responders (whose
        per-response RNG draws must happen in per-query order) fall back
        to the sequential loop.
        """
        if self.config.respond_probability < 1.0:
            on_packet = self._on_packet
            for payload in payloads:
                on_packet(payload, src_ip, src_port)
            return
        for payload in payloads:
            if len(payload) < NTP_PACKET_LEN or (payload[0] & 0x7) != 3:
                on_packet = self._on_packet
                for item in payloads:
                    on_packet(item, src_ip, src_port)
                return
        n = len(payloads)
        stats = self.stats
        stats.queries_received += n
        now = self.simulator._now  # slot read, as in _on_packet
        outcome = self._limiter.consume_burst(src_ip, n, now)
        responds = outcome.responds
        sendto = self.socket.sendto
        if responds:
            stratum = self.config.stratum
            reference_id = self.config.upstream_server
            clock_time = self.clock.time
            for index in range(responds):
                query = NTPPacket.decode(payloads[index])
                response = NTPPacket.server_response(
                    query,
                    server_time=clock_time(now),
                    stratum=stratum,
                    reference_id=reference_id,
                )
                stats.responses_sent += 1
                sendto(response.encode(), src_ip, src_port)
        if outcome.kod:
            query = NTPPacket.decode(payloads[responds])
            stats.kods_sent += 1
            kod = NTPPacket.kiss_of_death(query, KissCode.RATE)
            sendto(kod.encode(), src_ip, src_port)
        stats.queries_dropped += outcome.drops

    def _handle_config_query(self, src_ip: str, src_port: int) -> None:
        """Answer a mode 6/7 configuration query when the interface is open.

        The response payload is a simple ASCII rendering of the configured
        upstream servers, mirroring the information content of ``ntpq -c
        peers`` / mode 7 ``reslist``.
        """
        if not self.config.open_config_interface:
            return
        self.stats.config_queries_answered += 1
        upstream = self.config.upstream_server or ""
        payload = f"peers={upstream}".encode("ascii").ljust(48, b"\x00")
        self.socket.sendto(payload, src_ip, src_port)

    # ----------------------------------------------------------- inspection
    def is_rate_limiting(self, client_ip: str) -> bool:
        """Whether ``client_ip`` is currently denied service."""
        return self.rate_limiter.is_limited(client_ip, self.simulator.now)
