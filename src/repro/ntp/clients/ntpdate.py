"""Model of the one-shot ``ntpdate`` utility.

``ntpdate`` resolves the given hostname, samples the servers a handful of
times, steps the clock once and exits.  There is no run-time behaviour to
attack, but because administrators commonly run it from cron, every
invocation repeats the boot-time attack surface (paper section V-A2).
"""

from __future__ import annotations

from repro.ntp.clients.base import BaseNTPClient, NTPClientConfig


class NtpdateClient(BaseNTPClient):
    """The ntpdate behavioural model (one-shot SNTP)."""

    client_name = "ntpdate"
    pool_usage_share = 0.200
    supports_boot_time_attack = True
    supports_runtime_attack = False

    #: How long after start the utility stops polling (seconds).
    run_duration = 16.0

    @classmethod
    def default_config(cls) -> NTPClientConfig:
        return NTPClientConfig(
            pool_domains=["pool.ntp.org"],
            desired_associations=1,
            min_associations=1,
            max_associations=4,
            poll_interval=2.0,
            unreachable_after=4,
            runtime_dns=False,
            sntp=True,
            step_threshold=0.0,
            step_delay=0.0,
            min_step_samples=1,
            boot_step_immediately=True,
            act_as_server=False,
        )

    def start(self) -> None:
        super().start()
        self.simulator.schedule(self.run_duration, self.stop, label=f"{self.name} exit")
