"""Tests for the run-time attack orchestration (section IV-B, Table II)."""

import pytest

from repro.core.run_time import RunTimeAttack, RunTimeScenario
from repro.ntp.clients import NtpdClient, OpenNTPDClient, SystemdTimesyncdClient
from repro.ntp.clients.base import NTPClientConfig


def fast_ntpd_config() -> NTPClientConfig:
    """A compressed-time ntpd model so run-time attacks finish quickly."""
    config = NtpdClient.default_config()
    config.pool_domains = ["pool.ntp.org"]
    config.desired_associations = 4
    config.min_associations = 3
    config.poll_interval = 16.0
    config.unreachable_after = 4
    config.step_delay = 60.0
    config.min_step_samples = 2
    return config


def synchronised_victim(testbed, client_class=NtpdClient, config=None):
    client = testbed.add_client(client_class, config=config or fast_ntpd_config())
    client.start()
    testbed.run_for(300)
    assert abs(client.clock_error()) < 1.0
    return client


class TestDirectPoisoning:
    def test_poison_resolver_directly_covers_all_client_domains(self, small_testbed):
        victim = synchronised_victim(small_testbed)
        attack = RunTimeAttack(small_testbed.attacker, small_testbed.simulator, small_testbed.resolver, victim)
        attack.poison_resolver_directly()
        for domain in victim.config.pool_domains:
            assert small_testbed.resolver.is_poisoned(
                domain, small_testbed.attacker.controlled_addresses
            )


class TestScenarioP1:
    def test_ntpd_shifted_via_known_server_list(self, small_testbed):
        victim = synchronised_victim(small_testbed)
        attack = RunTimeAttack(
            small_testbed.attacker,
            small_testbed.simulator,
            small_testbed.resolver,
            victim,
            scenario=RunTimeScenario.P1_KNOWN_SERVERS,
            known_server_list=small_testbed.pool.addresses,
            check_interval=15.0,
            max_duration=3600.0,
        )
        result = attack.run()
        assert result.success
        assert result.clock_shift_achieved == pytest.approx(-500.0, abs=5.0)
        assert result.attack_duration_minutes is not None
        assert result.associations_removed >= 2
        assert result.runtime_dns_lookups >= 1

    def test_systemd_timesyncd_shifted(self, small_testbed):
        config = SystemdTimesyncdClient.default_config()
        config.poll_interval = 16.0
        config.unreachable_after = 4
        victim = synchronised_victim(small_testbed, SystemdTimesyncdClient, config)
        attack = RunTimeAttack(
            small_testbed.attacker,
            small_testbed.simulator,
            small_testbed.resolver,
            victim,
            scenario=RunTimeScenario.P1_KNOWN_SERVERS,
            known_server_list=small_testbed.pool.addresses,
            check_interval=15.0,
            max_duration=3600.0,
        )
        result = attack.run()
        assert result.success

    def test_openntpd_cannot_be_redirected_at_runtime(self, small_testbed):
        """Table I: openntpd does no run-time DNS, so the attack only
        disables synchronisation."""
        config = OpenNTPDClient.default_config()
        config.poll_interval = 16.0
        config.unreachable_after = 4
        victim = synchronised_victim(small_testbed, OpenNTPDClient, config)
        attack = RunTimeAttack(
            small_testbed.attacker,
            small_testbed.simulator,
            small_testbed.resolver,
            victim,
            scenario=RunTimeScenario.P1_KNOWN_SERVERS,
            known_server_list=small_testbed.pool.addresses,
            check_interval=30.0,
            max_duration=1800.0,
        )
        result = attack.run()
        assert not result.success
        assert abs(result.clock_shift_achieved) < 1.0
        assert result.runtime_dns_lookups == 0


class TestScenarioP2:
    def test_ntpd_shifted_via_refid_discovery(self, small_testbed):
        victim = synchronised_victim(small_testbed)
        attack = RunTimeAttack(
            small_testbed.attacker,
            small_testbed.simulator,
            small_testbed.resolver,
            victim,
            scenario=RunTimeScenario.P2_REFID_DISCOVERY,
            refid_probe_interval=8.0,
            check_interval=15.0,
            max_duration=3600.0 * 2,
        )
        result = attack.run()
        assert result.success
        assert result.scenario is RunTimeScenario.P2_REFID_DISCOVERY

    def test_p2_takes_longer_than_p1(self):
        """Table II shape: sequential discovery (P2) is slower than knowing
        the server list up front (P1)."""
        from repro.testbed import TestbedConfig, build_testbed

        durations = {}
        for scenario in (RunTimeScenario.P1_KNOWN_SERVERS, RunTimeScenario.P2_REFID_DISCOVERY):
            testbed = build_testbed(TestbedConfig(pool_size=24, seed=55))
            victim = synchronised_victim(testbed)
            attack = RunTimeAttack(
                testbed.attacker,
                testbed.simulator,
                testbed.resolver,
                victim,
                scenario=scenario,
                known_server_list=testbed.pool.addresses,
                refid_probe_interval=8.0,
                check_interval=15.0,
                max_duration=3600.0 * 2,
            )
            result = attack.run()
            assert result.success
            durations[scenario] = result.attack_duration
        assert durations[RunTimeScenario.P2_REFID_DISCOVERY] > durations[RunTimeScenario.P1_KNOWN_SERVERS]
