"""Tests for the discrete-event simulator."""

import pytest

from repro.netsim.errors import SimulationError
from repro.netsim.simulator import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_same_time_events_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for label in ("first", "second", "third"):
            sim.schedule(1.0, lambda l=label: order.append(l))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(3.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [3.5]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancelled_event_not_executed(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(True))
        event.cancel()
        sim.run()
        assert fired == []


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]

    def test_run_for_is_relative(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_for(2.0)
        assert sim.now == 2.0
        sim.run_for(2.0)
        assert sim.now == 4.0

    def test_max_events_limit(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        processed = sim.run(max_events=3)
        assert processed == 3
        assert sim.pending() == 7

    def test_events_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 5:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(1.0, lambda: chain(1))
        sim.run()
        assert fired == [1, 2, 3, 4, 5]
        assert sim.now == 5.0


class TestRandomness:
    def test_same_seed_same_draws(self):
        first = Simulator(seed=3).rng.integers(0, 1000, size=5).tolist()
        second = Simulator(seed=3).rng.integers(0, 1000, size=5).tolist()
        assert first == second

    def test_spawned_streams_are_independent(self):
        sim = Simulator(seed=3)
        a = sim.spawn_rng().integers(0, 1 << 30)
        b = sim.spawn_rng().integers(0, 1 << 30)
        assert a != b

    def test_spawned_streams_reproducible_across_instances(self):
        a = Simulator(seed=9).spawn_rng().integers(0, 1 << 30)
        b = Simulator(seed=9).spawn_rng().integers(0, 1 << 30)
        assert a == b


class TestLiveEventAccounting:
    """pending() counts events that will actually fire, not heap entries."""

    def test_cancel_decrements_pending_immediately(self):
        sim = Simulator()
        events = [sim.schedule(1.0, lambda: None) for _ in range(5)]
        assert sim.pending() == 5
        events[2].cancel()
        assert sim.pending() == 4

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        other = sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending() == 1
        other.cancel()
        assert sim.pending() == 0

    def test_pending_reaches_zero_after_run(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None).cancel()
        sim.run()
        assert sim.pending() == 0
        assert sim.events_processed == 4

    def test_cancelled_events_still_skipped_when_popped(self):
        sim = Simulator()
        fired = []
        keep = sim.schedule(2.0, lambda: fired.append("keep"))
        sim.schedule(1.0, lambda: fired.append("dropped")).cancel()
        assert sim.pending() == 1
        sim.run()
        assert fired == ["keep"]
        assert keep.time == 2.0


class TestPost:
    """The anonymous fire-and-forget fast path."""

    def test_post_runs_in_time_order_with_scheduled_events(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("scheduled"))
        sim.post(1.0, order.append, "posted-early")
        sim.post(3.0, order.append, "posted-late")
        sim.run()
        assert order == ["posted-early", "scheduled", "posted-late"]

    def test_same_time_post_and_schedule_run_in_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.post(1.0, order.append, "first")
        sim.schedule(1.0, lambda: order.append("second"))
        sim.post(1.0, order.append, "third")
        sim.run()
        assert order == ["first", "second", "third"]

    def test_post_without_argument(self):
        sim = Simulator()
        fired = []
        sim.post(0.5, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_post_counts_as_pending_and_processed(self):
        sim = Simulator()
        sim.post(1.0, lambda: None)
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0
        assert sim.events_processed == 1

    def test_post_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.post(-0.1, lambda: None)

    def test_step_materialises_event_for_posted_callback(self):
        sim = Simulator()
        fired = []
        sim.post(1.5, fired.append, "x")
        event = sim.step()
        assert fired == ["x"]
        assert event is not None and event.time == 1.5

    def test_run_until_respects_posted_events(self):
        sim = Simulator()
        fired = []
        sim.post(1.0, fired.append, 1)
        sim.post(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        sim.run()
        assert fired == [1, 10]


class TestCancelAfterExecution:
    """Cancelling an event that already fired must not distort pending().

    Production callbacks do exactly this: the resolver cancels its timeout
    event from inside that event's own callback.
    """

    def test_cancel_after_run_is_a_no_op(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending() == 0
        event.cancel()
        assert sim.pending() == 0

    def test_cancel_own_event_from_inside_callback(self):
        sim = Simulator()
        events = []

        def fire():
            events[0].cancel()  # what resolver timeout handling does

        events.append(sim.schedule(1.0, fire))
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.pending() == 0
        assert sim.events_processed == 2

    def test_cancel_after_step_is_a_no_op(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert sim.step() is event
        event.cancel()
        assert sim.pending() == 0
