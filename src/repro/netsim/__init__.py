"""Discrete-event network simulator used as the substrate for all experiments.

The simulator provides byte-accurate IPv4, UDP and ICMP layers including:

* IPv4 packet encoding/decoding and fragmentation at 8-byte boundaries,
* per-host IP defragmentation caches with configurable (per operating
  system) reassembly timeouts and fragment-count limits,
* IPID assignment policies (globally incrementing, per-destination,
  random) as observed on real nameserver operating systems,
* real ones'-complement UDP checksums computed over the IPv4 pseudo
  header, which is what makes the fragment-replacement attack of the
  paper non-trivial,
* ICMP Destination Unreachable / Fragmentation Needed handling with a
  per-destination path-MTU cache (PMTUD), and
* an off-path attacker interface which can inject arbitrary, possibly
  spoofed, packets into any link but cannot observe traffic.

The public surface mirrors a tiny sockets API: hosts open
:class:`~repro.netsim.sockets.UDPSocket` objects bound to ports and
exchange datagrams through a :class:`~repro.netsim.network.Network`.
"""

from repro.netsim.addresses import IPv4Address, ip_to_int, int_to_ip
from repro.netsim.checksum import ones_complement_sum, internet_checksum
from repro.netsim.simulator import Simulator, Event
from repro.netsim.packet import IPv4Packet, IPProtocol
from repro.netsim.fragmentation import fragment_packet, reassemble_fragments
from repro.netsim.defrag import DefragmentationCache, ReassemblyPolicy
from repro.netsim.ipid import (
    IPIDAllocator,
    GlobalCounterIPID,
    PerDestinationIPID,
    RandomIPID,
)
from repro.netsim.udp import UDPDatagram, encode_udp, decode_udp, udp_checksum
from repro.netsim.icmp import ICMPMessage, ICMPType, frag_needed
from repro.netsim.datapath import DeliveryPipeline, HostDatapath, LinkProfile
from repro.netsim.faults import (
    Corruption,
    Duplication,
    FaultChannel,
    FaultPlan,
    FaultSchedule,
    FaultStats,
    GilbertElliott,
    LatencySpike,
    Partition,
    ReorderJitter,
)
from repro.netsim.host import Host, OSProfile
from repro.netsim.sockets import UDPSocket
from repro.netsim.network import Network, Link
from repro.netsim.capture import PacketCapture

__all__ = [
    "IPv4Address",
    "ip_to_int",
    "int_to_ip",
    "ones_complement_sum",
    "internet_checksum",
    "Simulator",
    "Event",
    "IPv4Packet",
    "IPProtocol",
    "fragment_packet",
    "reassemble_fragments",
    "DefragmentationCache",
    "ReassemblyPolicy",
    "IPIDAllocator",
    "GlobalCounterIPID",
    "PerDestinationIPID",
    "RandomIPID",
    "UDPDatagram",
    "encode_udp",
    "decode_udp",
    "udp_checksum",
    "ICMPMessage",
    "ICMPType",
    "frag_needed",
    "DeliveryPipeline",
    "HostDatapath",
    "LinkProfile",
    "Corruption",
    "Duplication",
    "FaultChannel",
    "FaultPlan",
    "FaultSchedule",
    "FaultStats",
    "GilbertElliott",
    "LatencySpike",
    "Partition",
    "ReorderJitter",
    "Host",
    "OSProfile",
    "UDPSocket",
    "Network",
    "Link",
    "PacketCapture",
]
