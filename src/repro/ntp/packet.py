"""NTP packet format (RFC 5905), including Kiss-o'-Death responses.

The reproduction uses client (mode 3) and server (mode 4) packets plus the
``RATE`` Kiss-o'-Death code that rate-limiting servers send just before they
stop answering a client.  The ``reference_id`` of a mode 4 packet from a
stratum-2+ server carries the IPv4 address of its current upstream server,
which is the information leak the run-time attack's scenario P2 uses to
discover a victim's associations one at a time (paper section IV-B2b).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum

from repro.netsim.addresses import int_to_ip, ip_to_int
from repro.ntp.timestamps import NTPTimestamp

#: Well-known NTP UDP port.
NTP_PORT = 123
#: Size of a plain (unauthenticated) NTP packet.
NTP_PACKET_LEN = 48


class NTPMode(IntEnum):
    """NTP association modes used here."""

    SYMMETRIC_ACTIVE = 1
    SYMMETRIC_PASSIVE = 2
    CLIENT = 3
    SERVER = 4
    BROADCAST = 5
    CONTROL = 6
    PRIVATE = 7


class KissCode:
    """Kiss-o'-Death reference identifiers (RFC 5905 section 7.4)."""

    RATE = "RATE"
    DENY = "DENY"
    RSTR = "RSTR"


@dataclass
class NTPPacket:
    """A 48-byte NTP packet."""

    mode: NTPMode
    leap: int = 0
    version: int = 4
    stratum: int = 2
    poll: int = 6
    precision: int = -20
    root_delay: float = 0.0
    root_dispersion: float = 0.0
    reference_id: str = ""
    reference_timestamp: NTPTimestamp = field(default_factory=NTPTimestamp.zero)
    origin_timestamp: NTPTimestamp = field(default_factory=NTPTimestamp.zero)
    receive_timestamp: NTPTimestamp = field(default_factory=NTPTimestamp.zero)
    transmit_timestamp: NTPTimestamp = field(default_factory=NTPTimestamp.zero)

    # ------------------------------------------------------------ properties
    @property
    def is_kiss_of_death(self) -> bool:
        """True for stratum-0 server packets carrying a kiss code."""
        return self.mode is NTPMode.SERVER and self.stratum == 0

    @property
    def kiss_code(self) -> str:
        """The kiss code, for Kiss-o'-Death packets."""
        return self.reference_id if self.is_kiss_of_death else ""

    @property
    def refid_as_address(self) -> str:
        """Interpret the reference id as an IPv4 address (stratum >= 2).

        For stratum 2 and above the reference id identifies the server's
        current synchronisation source — the leak exploited by attack
        scenario P2.
        """
        if self.stratum >= 2 and len(self.reference_id) == 4 and not self.reference_id.isalpha():
            return self.reference_id
        return self.reference_id

    # -------------------------------------------------------------- encoding
    def _encode_refid(self) -> bytes:
        # Stratum 0 (kiss codes) and stratum 1 (reference clock names) carry
        # ASCII identifiers; higher strata carry the IPv4 address of the
        # server's synchronisation source.
        if not self.reference_id:
            return b"\x00" * 4
        if self.stratum <= 1:
            return self.reference_id.encode("ascii")[:4].ljust(4, b"\x00")
        return ip_to_int(self.reference_id).to_bytes(4, "big")

    def encode(self) -> bytes:
        """Encode the packet to its 48 wire bytes."""
        li_vn_mode = ((self.leap & 0x3) << 6) | ((self.version & 0x7) << 3) | int(self.mode)
        return struct.pack(
            "!BBbb II 4s 8s 8s 8s 8s",
            li_vn_mode,
            self.stratum,
            self.poll,
            self.precision,
            int(self.root_delay * (1 << 16)) & 0xFFFFFFFF,
            int(self.root_dispersion * (1 << 16)) & 0xFFFFFFFF,
            self._encode_refid(),
            self.reference_timestamp.to_bytes(),
            self.origin_timestamp.to_bytes(),
            self.receive_timestamp.to_bytes(),
            self.transmit_timestamp.to_bytes(),
        )

    @classmethod
    def decode(cls, data: bytes) -> "NTPPacket":
        """Decode 48 wire bytes into a packet."""
        if len(data) < NTP_PACKET_LEN:
            raise ValueError(f"NTP packet too short: {len(data)} bytes")
        (
            li_vn_mode,
            stratum,
            poll,
            precision,
            root_delay_raw,
            root_dispersion_raw,
            refid_bytes,
            ref_ts,
            orig_ts,
            recv_ts,
            xmit_ts,
        ) = struct.unpack("!BBbb II 4s 8s 8s 8s 8s", data[:NTP_PACKET_LEN])
        mode = NTPMode(li_vn_mode & 0x7)
        if stratum <= 1:
            reference_id = refid_bytes.rstrip(b"\x00").decode("ascii", errors="replace")
        elif refid_bytes == b"\x00" * 4:
            reference_id = ""
        else:
            reference_id = int_to_ip(int.from_bytes(refid_bytes, "big"))
        return cls(
            mode=mode,
            leap=(li_vn_mode >> 6) & 0x3,
            version=(li_vn_mode >> 3) & 0x7,
            stratum=stratum,
            poll=poll,
            precision=precision,
            root_delay=root_delay_raw / (1 << 16),
            root_dispersion=root_dispersion_raw / (1 << 16),
            reference_id=reference_id,
            reference_timestamp=NTPTimestamp.from_bytes(ref_ts),
            origin_timestamp=NTPTimestamp.from_bytes(orig_ts),
            receive_timestamp=NTPTimestamp.from_bytes(recv_ts),
            transmit_timestamp=NTPTimestamp.from_bytes(xmit_ts),
        )

    # ------------------------------------------------------------ factories
    @classmethod
    def client_query(cls, transmit_time: float) -> "NTPPacket":
        """Build a mode 3 query with the client's transmit timestamp."""
        return cls(
            mode=NTPMode.CLIENT,
            stratum=0,
            transmit_timestamp=NTPTimestamp.from_unix(transmit_time),
        )

    @classmethod
    def server_response(
        cls,
        query: "NTPPacket",
        server_time: float,
        stratum: int = 2,
        reference_id: str = "",
    ) -> "NTPPacket":
        """Build the mode 4 response to ``query`` at the server's clock time."""
        now = NTPTimestamp.from_unix(server_time)
        return cls(
            mode=NTPMode.SERVER,
            stratum=stratum,
            poll=query.poll,
            reference_id=reference_id,
            reference_timestamp=now,
            origin_timestamp=query.transmit_timestamp,
            receive_timestamp=now,
            transmit_timestamp=now,
        )

    @classmethod
    def kiss_of_death(cls, query: "NTPPacket", code: str = KissCode.RATE) -> "NTPPacket":
        """Build a Kiss-o'-Death response with the given code."""
        return cls(
            mode=NTPMode.SERVER,
            stratum=0,
            poll=max(query.poll, 10),
            reference_id=code,
            origin_timestamp=query.transmit_timestamp,
        )
